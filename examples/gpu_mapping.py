#!/usr/bin/env python3
"""Anatomy of the GPU mapping (Fig. 2a/b): groups, warps and bank conflicts.

The paper's CUDA kernel decomposes the SPN into dependence groups, runs every
group across the threads of a block and separates groups with
``__syncthreads()``; shared-memory banks are assigned with a graph-coloring
pass to reduce conflicts.  This example makes all of those quantities visible
for one benchmark SPN, and shows why the resulting execution is memory- and
synchronization-bound — the observation that motivates the custom processor.
"""

from repro.analysis import format_bar_chart, format_table
from repro.baselines import (
    GpuConfig,
    count_warp_conflicts,
    execute_gpu_kernel,
    graph_coloring_allocation,
    interleaved_allocation,
    simulate_gpu,
)
from repro.platforms import available_platforms, get_engine
from repro.suite import benchmark_operation_list, build_benchmark
from repro.spn import evaluate

BENCHMARK = "MSNBC"
THREADS = 256


def main() -> None:
    spn = build_benchmark(BENCHMARK)
    ops = benchmark_operation_list(BENCHMARK)
    groups = ops.groups()

    # --- group decomposition (Fig. 2a) -------------------------------------- #
    sizes = [len(g) for g in groups]
    print(f"{BENCHMARK}: {ops.n_operations} operations in {len(groups)} dependence groups")
    print(f"  group size: min={min(sizes)}, mean={sum(sizes)/len(sizes):.1f}, max={max(sizes)}")
    print(f"  with a {THREADS}-thread block, "
          f"{sum(1 for s in sizes if s < THREADS)} of {len(groups)} groups underfill the block")

    # --- bank allocation ------------------------------------------------------ #
    colored = graph_coloring_allocation(ops, THREADS, 32)
    interleaved = interleaved_allocation(ops, 32)
    rows = []
    for label, allocation in (("graph coloring", colored), ("interleaved", interleaved)):
        transactions, accesses = count_warp_conflicts(ops, allocation, THREADS, 32)
        rows.append((label, accesses, transactions, transactions / accesses))
    print()
    print(format_table(
        ["bank allocation", "warp accesses", "transactions", "transactions/access"],
        rows, title="Shared-memory bank conflicts",
    ))

    # --- functional check ------------------------------------------------------ #
    evidence = {v: v % 2 for v in spn.variables()}
    kernel_value = execute_gpu_kernel(ops, ops.input_vector(evidence), GpuConfig(n_threads=THREADS))
    assert abs(kernel_value - evaluate(spn, evidence)) < 1e-9
    print("\nfunctional emulation of the CUDA kernel matches the reference evaluator")

    # --- where the cycles go ---------------------------------------------------- #
    result = simulate_gpu(ops, GpuConfig(n_threads=THREADS))
    sync = len(groups) * GpuConfig().sync_cost
    print(f"\ntiming model at {THREADS} threads: {result.cycles} cycles "
          f"({result.ops_per_cycle:.3f} ops/cycle)")
    print(format_bar_chart(
        {
            "barrier (sync) cycles": sync,
            "everything else": max(result.cycles - sync, 0),
        },
        title="cycle breakdown (approximate)",
    ))

    # --- the bigger picture: every registered platform ------------------------- #
    # The GPU is only one entry in the platform-engine registry; iterating it
    # puts the memory-bound GPU numbers next to the CPU and the custom
    # processor on the same benchmark (the comparison of Fig. 4).
    rows = []
    for name in available_platforms():
        platform_result = get_engine(name).run(ops, benchmark=BENCHMARK)
        rows.append((name, platform_result.cycles, platform_result.ops_per_cycle))
    print()
    print(format_table(
        ["platform", "cycles", "ops/cycle"],
        rows,
        title=f"All registered platforms on {BENCHMARK}",
    ))


if __name__ == "__main__":
    main()
