#!/usr/bin/env python3
"""Design-space exploration of the SPN processor (an architect's workflow).

The paper fixes two design points (``Ptree``: 2 trees x 4 levels, ``Pvect``:
16 single PEs).  A hardware architect adopting this library would want to ask
broader questions before committing to RTL:

* how does throughput change with the PE-tree arrangement?
* how sensitive is it to the register-file geometry (banks / depth)?
* how much does the compiler's conflict-aware register allocation contribute?

This script answers those questions for one benchmark of the suite using the
same compiler and cycle-accurate simulator the headline experiments use.
"""

from repro.analysis import format_table
from repro.compiler import ScheduleOptions, compile_operation_list
from repro.processor import ProcessorConfig
from repro.suite import benchmark_operation_list

BENCHMARK = "KDDCup2k"


def measure(config: ProcessorConfig, options: ScheduleOptions | None = None) -> float:
    """Compile the benchmark for ``config`` and return verified ops/cycle."""
    ops = benchmark_operation_list(BENCHMARK)
    kernel = compile_operation_list(ops, config, options)
    return kernel.run(None).ops_per_cycle


def arrangement_sweep() -> str:
    rows = []
    for n_trees, n_levels in ((16, 1), (8, 2), (4, 3), (2, 4)):
        config = ProcessorConfig(
            name=f"{n_trees}x{n_levels}", n_trees=n_trees, n_levels=n_levels,
            n_banks=32, bank_depth=64,
        )
        rows.append((f"{n_trees} trees x {n_levels} levels", config.n_pes,
                     measure(config)))
    return format_table(
        ["arrangement", "PEs", "ops/cycle"], rows,
        title=f"PE arrangement sweep on {BENCHMARK} (32 banks x 64 registers)",
    )


def register_file_sweep() -> str:
    rows = []
    for bank_depth in (32, 64, 128):
        config = ProcessorConfig(
            name=f"d{bank_depth}", n_trees=2, n_levels=4, n_banks=32,
            bank_depth=bank_depth,
        )
        options = ScheduleOptions(stream_rows=bank_depth // 2)
        rows.append((f"32 banks x {bank_depth} regs", measure(config, options)))
    return format_table(
        ["register file", "ops/cycle"], rows,
        title=f"Register-file depth sweep on {BENCHMARK} (Ptree arrangement)",
    )


def compiler_sweep() -> str:
    config = ProcessorConfig(name="Ptree", n_trees=2, n_levels=4, n_banks=32, bank_depth=64)
    rows = [
        ("conflict-aware allocation + packing", measure(config)),
        ("naive allocation", measure(config, ScheduleOptions(conflict_aware_allocation=False))),
        ("no subtree packing", measure(config, ScheduleOptions(pack_multiple_cones=False))),
    ]
    return format_table(
        ["compiler configuration", "ops/cycle"], rows,
        title=f"Compiler feature ablation on {BENCHMARK} (Ptree)",
    )


def main() -> None:
    print(arrangement_sweep())
    print()
    print(register_file_sweep())
    print()
    print(compiler_sweep())


if __name__ == "__main__":
    main()
