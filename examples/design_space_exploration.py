#!/usr/bin/env python3
"""Design-space exploration of the SPN processor (an architect's workflow).

The paper fixes two design points (``Ptree``: 2 trees x 4 levels, ``Pvect``:
16 single PEs).  A hardware architect adopting this library would want to ask
broader questions before committing to RTL:

* how does throughput change with the PE-tree arrangement?
* how sensitive is it to the register-file geometry (banks / depth)?
* how much does the compiler's conflict-aware register allocation contribute?

This script answers those questions for one benchmark of the suite using the
same compiler and cycle-accurate simulator the headline experiments use.
The standard ablation grid additionally runs through the **parallel, cached
sweep runner** (:mod:`repro.experiments.sweeps`) — the first run fans out
over a process pool, repeated runs hit the on-disk cache under
``.cache/sweeps/`` — and the evidence-batch workload is evaluated with both
execution engines to show the vectorized tape's speedup.
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.compiler import ScheduleOptions, compile_operation_list
from repro.experiments import sweeps
from repro.processor import ProcessorConfig
from repro.suite import benchmark_evaluate_batch, benchmark_operation_list
from repro.spn.generate import random_evidence

BENCHMARK = "KDDCup2k"


def measure(config: ProcessorConfig, options: ScheduleOptions | None = None) -> float:
    """Compile the benchmark for ``config`` and return verified ops/cycle."""
    ops = benchmark_operation_list(BENCHMARK)
    kernel = compile_operation_list(ops, config, options)
    return kernel.run(None).ops_per_cycle


def arrangement_sweep() -> str:
    rows = []
    for n_trees, n_levels in ((16, 1), (8, 2), (4, 3), (2, 4)):
        config = ProcessorConfig(
            name=f"{n_trees}x{n_levels}", n_trees=n_trees, n_levels=n_levels,
            n_banks=32, bank_depth=64,
        )
        rows.append((f"{n_trees} trees x {n_levels} levels", config.n_pes,
                     measure(config)))
    return format_table(
        ["arrangement", "PEs", "ops/cycle"], rows,
        title=f"PE arrangement sweep on {BENCHMARK} (32 banks x 64 registers)",
    )


def register_file_sweep() -> str:
    rows = []
    for bank_depth in (32, 64, 128):
        config = ProcessorConfig(
            name=f"d{bank_depth}", n_trees=2, n_levels=4, n_banks=32,
            bank_depth=bank_depth,
        )
        options = ScheduleOptions(stream_rows=bank_depth // 2)
        rows.append((f"32 banks x {bank_depth} regs", measure(config, options)))
    return format_table(
        ["register file", "ops/cycle"], rows,
        title=f"Register-file depth sweep on {BENCHMARK} (Ptree arrangement)",
    )


def compiler_sweep() -> str:
    config = ProcessorConfig(name="Ptree", n_trees=2, n_levels=4, n_banks=32, bank_depth=64)
    rows = [
        ("conflict-aware allocation + packing", measure(config)),
        ("naive allocation", measure(config, ScheduleOptions(conflict_aware_allocation=False))),
        ("no subtree packing", measure(config, ScheduleOptions(pack_multiple_cones=False))),
    ]
    return format_table(
        ["compiler configuration", "ops/cycle"], rows,
        title=f"Compiler feature ablation on {BENCHMARK} (Ptree)",
    )


def parallel_sweep_demo() -> str:
    """Run the full ablation grid through the parallel, cached runner.

    Uses a fresh temporary cache so the first run always demonstrates the
    process-pool fan-out and the second run the cache hits — regardless of
    whatever the persistent ``.cache/sweeps/`` directory already holds.
    """
    points = sweeps.all_sweep_points(BENCHMARK)
    with tempfile.TemporaryDirectory(prefix="sweep-demo-") as tmp:
        cache_dir = Path(tmp) / "sweeps"
        start = time.perf_counter()
        results = sweeps.run_sweep(points, parallel=True, cache_dir=cache_dir)
        first = time.perf_counter() - start
        start = time.perf_counter()
        cached = sweeps.run_sweep(points, parallel=True, cache_dir=cache_dir)
        second = time.perf_counter() - start
    n_hits = sum(1 for r in cached if r.cached)
    lines = [
        f"Parallel sweep runner ({len(points)} design points on {BENCHMARK})",
        f"  first run : {first:6.2f} s ({sum(1 for r in results if r.cached)} cache hits)",
        f"  second run: {second:6.2f} s ({n_hits} cache hits; persistent runs "
        "cache under .cache/sweeps/)",
    ]
    return "\n".join(lines)


def engine_speedup_line() -> str:
    """Evaluate an evidence batch with both engines and report the speedup."""
    ops = benchmark_operation_list(BENCHMARK)
    n_vars = max((s.var for s in ops.inputs if s.kind == "indicator"), default=-1) + 1
    data = random_evidence(n_vars, observed_fraction=0.8, seed=0, n_samples=200)

    from repro.baselines import execute_baseline

    start = time.perf_counter()
    reference = execute_baseline(ops, data, engine="python")
    t_reference = time.perf_counter() - start
    benchmark_evaluate_batch(BENCHMARK, data)  # compile + warm the cached tape
    start = time.perf_counter()
    vectorized = benchmark_evaluate_batch(BENCHMARK, data, engine="vectorized")
    t_vectorized = time.perf_counter() - start
    assert np.allclose(vectorized, reference, rtol=1e-9, atol=0.0)
    return (
        f"Engine comparison on {BENCHMARK} ({ops.n_operations} ops, "
        f"{len(data)} rows): reference {t_reference * 1e3:.1f} ms, "
        f"vectorized {t_vectorized * 1e3:.1f} ms -> "
        f"{t_reference / t_vectorized:.1f}x speedup"
    )


def main() -> None:
    print(arrangement_sweep())
    print()
    print(register_file_sweep())
    print()
    print(compiler_sweep())
    print()
    print(parallel_sweep_demo())
    print()
    print(engine_speedup_line())


if __name__ == "__main__":
    main()
