#!/usr/bin/env python3
"""Quickstart: build an SPN, query it, compile it for the SPN processor, run it.

This walks through the full public API in a few dozen lines:

1. build a small sum-product network by hand,
2. answer probabilistic queries with the reference evaluator,
3. lower it to the flat operation list every backend consumes,
4. compile it for the paper's ``Ptree`` processor configuration,
5. execute the compiled program on the cycle-accurate simulator and compare
   its throughput against the CPU and GPU baseline models,
6. evaluate a large evidence batch with the vectorized NumPy engine and
   compare it against reference execution (correctness and speed).
"""

import time

import numpy as np

from repro.baselines import execute_baseline, simulate_cpu, simulate_gpu
from repro.compiler import compile_spn
from repro.processor import ptree_config
from repro.spn import (
    RatSpnConfig,
    SPN,
    compile_tape,
    conditional,
    evaluate,
    generate_rat_spn,
    linearize,
    most_probable_explanation,
    random_evidence,
)


def build_weather_model() -> SPN:
    """A toy model over three binary variables: cloudy, sprinkler, wet grass."""
    spn = SPN()
    cloudy = SPN.bernoulli_leaf(spn, 0, 0.4)

    # Sprinkler and wet-grass behaviour differs between the two weather regimes,
    # so the model is a mixture over the "cloudy" variable's children.
    def regime(p_sprinkler: float, p_wet: float) -> int:
        return spn.add_product(
            [SPN.bernoulli_leaf(spn, 1, p_sprinkler), SPN.bernoulli_leaf(spn, 2, p_wet)]
        )

    cloudy_yes = spn.add_product([spn.add_indicator(0, 1), regime(0.1, 0.8)])
    cloudy_no = spn.add_product([spn.add_indicator(0, 0), regime(0.5, 0.4)])
    root = spn.add_sum([cloudy_yes, cloudy_no], weights=[0.4, 0.6])
    spn.set_root(root)
    spn.check_valid()
    return spn


def main() -> None:
    spn = build_weather_model()
    print("model:", spn.stats())

    # --- probabilistic queries -------------------------------------------- #
    print("\nqueries:")
    print("  P(wet grass)               =", round(evaluate(spn, {2: 1}), 4))
    print("  P(wet grass | cloudy)      =", round(conditional(spn, {2: 1}, {0: 1}), 4))
    print("  P(wet grass | not cloudy)  =", round(conditional(spn, {2: 1}, {0: 0}), 4))
    print("  most probable explanation  =", most_probable_explanation(spn, {2: 1}))

    # --- lower to the execution kernel ------------------------------------ #
    ops = linearize(spn)
    print("\nlowered kernel:", ops.n_operations, "binary operations,",
          ops.n_inputs, "inputs, depth", ops.depth())

    # --- baselines --------------------------------------------------------- #
    cpu = simulate_cpu(ops)
    gpu = simulate_gpu(ops)
    print("\nbaseline models:")
    print(f"  CPU : {cpu.ops_per_cycle:6.3f} ops/cycle ({cpu.cycles} cycles)")
    print(f"  GPU : {gpu.ops_per_cycle:6.3f} ops/cycle ({gpu.cycles} cycles)")

    # --- the custom processor ---------------------------------------------- #
    kernel = compile_spn(spn, ptree_config())
    result = kernel.run({2: 1})  # strict mode: every transported value checked
    reference = evaluate(spn, {2: 1})
    print("\nSPN processor (Ptree):")
    print(f"  compiled to {kernel.program.n_instructions} VLIW instructions "
          f"({kernel.stats.n_cones} cones, {kernel.stats.n_loads} vector loads)")
    print(f"  result {result.value:.6f} (reference {reference:.6f})")
    print(f"  throughput {result.ops_per_cycle:6.3f} ops/cycle ({result.cycles} cycles)")
    assert abs(result.value - reference) < 1e-9

    # --- the vectorized engine on a larger network ------------------------- #
    big = generate_rat_spn(
        RatSpnConfig(n_vars=64, depth=64, repetitions=2, n_sums=2,
                     split_balance=0.1, seed=7)
    )
    big_ops = linearize(big)
    data = random_evidence(64, observed_fraction=0.8, seed=0, n_samples=500)

    start = time.perf_counter()
    ref_values = execute_baseline(big_ops, data, engine="python")
    t_reference = time.perf_counter() - start

    tape = compile_tape(big_ops)
    t_vectorized, vec_values = min(
        (_timed(lambda: tape.execute_batch(data)) for _ in range(3)),
        key=lambda timed: timed[0],
    )
    assert np.allclose(vec_values, ref_values, rtol=1e-9, atol=0.0)

    print(f"\nvectorized engine ({big_ops.n_operations} ops, {len(data)} rows):")
    print(f"  reference execution  {t_reference * 1e3:8.1f} ms")
    print(f"  vectorized tape      {t_vectorized * 1e3:8.1f} ms")
    print(f"  speedup: vectorized engine is {t_reference / t_vectorized:.1f}x "
          "faster than reference execution")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


if __name__ == "__main__":
    main()
