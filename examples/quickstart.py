#!/usr/bin/env python3
"""Quickstart: build an SPN, query it through one session, compile it, run it.

This walks through the full public API in a few dozen lines:

1. build a small sum-product network by hand,
2. bind it to an `InferenceSession` — the single front door for every
   query kind — and answer marginal, conditional and MPE queries as typed
   objects (batched, log-domain where it matters), plus the analysis
   kinds: `Classify` (posterior over one variable, with the classic
   explaining-away effect) and seeded conditional `Sample`,
3. measure the same model on the CPU and GPU platform engines through the
   very same session (the paper's ops/cycle metric),
4. compile it for the paper's ``Ptree`` processor configuration and execute
   the compiled program on the cycle-accurate simulator,
5. run a *batched* conditional on a larger network and compare it against
   the per-row scalar path (correctness and speed) — the workload the
   typed query API makes fast.
"""

import time

import numpy as np

from repro.api import MPE, Classify, Conditional, InferenceSession, Marginal, Sample
from repro.compiler import compile_spn
from repro.processor import ptree_config
from repro.spn import (
    RatSpnConfig,
    SPN,
    evaluate,
    generate_rat_spn,
    random_evidence,
)


def build_weather_model() -> SPN:
    """A toy model over three binary variables: cloudy, sprinkler, wet grass."""
    spn = SPN()
    cloudy = SPN.bernoulli_leaf(spn, 0, 0.4)

    # Sprinkler and wet-grass behaviour differs between the two weather regimes,
    # so the model is a mixture over the "cloudy" variable's children.
    def regime(p_sprinkler: float, p_wet: float) -> int:
        return spn.add_product(
            [SPN.bernoulli_leaf(spn, 1, p_sprinkler), SPN.bernoulli_leaf(spn, 2, p_wet)]
        )

    cloudy_yes = spn.add_product([spn.add_indicator(0, 1), regime(0.1, 0.8)])
    cloudy_no = spn.add_product([spn.add_indicator(0, 0), regime(0.5, 0.4)])
    root = spn.add_sum([cloudy_yes, cloudy_no], weights=[0.4, 0.6])
    spn.set_root(root)
    spn.check_valid()
    return spn


def main() -> None:
    spn = build_weather_model()
    print("model:", spn.stats())

    # --- one session, every query kind ------------------------------------ #
    session = InferenceSession(spn)
    print("\nqueries (one InferenceSession, typed query objects):")
    p_wet = session.run(Marginal({2: 1}))[0]
    print("  P(wet grass)               =", round(p_wet, 4))
    p_wet_given_cloudy = session.run(Conditional(query={2: 1}, evidence={0: 1}))[0]
    print("  P(wet grass | cloudy)      =", round(p_wet_given_cloudy, 4))
    p_wet_given_clear = session.run(Conditional(query={2: 1}, evidence={0: 0}))[0]
    print("  P(wet grass | not cloudy)  =", round(p_wet_given_clear, 4))
    print("  most probable explanation  =", session.run(MPE({2: 1}))[0])
    plan = session.plan(Conditional(query={2: 1}, evidence={0: 1}))
    print(
        f"  (a Conditional plans into exactly {plan.n_evaluations} log-domain "
        "tape passes, whatever the batch size)"
    )

    # --- analysis queries: classification and sampling --------------------- #
    # Classify is predict_proba: the posterior over one variable's states
    # given everything observed — here, "was it cloudy?" from the grass.
    print("\nanalysis queries (same session):")
    posterior = session.run(Classify(evidence={2: 1}, target=0))[0]
    print("  P(cloudy | wet grass)      =", round(posterior[1], 4),
          " (clear:", str(round(posterior[0], 4)) + ")")
    posterior = session.run(Classify(evidence={1: 1, 2: 1}, target=0))[0]
    print("  P(cloudy | sprinkler, wet) =", round(posterior[1], 4),
          " -- the sprinkler explains the grass away")
    # Seeded conditional sampling: complete the unobserved variables by
    # exact ancestral draws.  Same seed, same rows -> same samples, always.
    draws = session.run(Sample(evidence={2: 1}, n_samples=5, seed=4))[0]
    print("  5 sampled worlds | wet     =", draws.tolist(),
          " (columns: cloudy, sprinkler, wet)")

    # --- platform throughput through the same session ---------------------- #
    print("\nplatform engines (ops/cycle, same session):")
    for platform in ("CPU", "GPU"):
        result = session.throughput(platform)
        print(f"  {platform:4s}: {result.ops_per_cycle:6.3f} ops/cycle ({result.cycles} cycles)")

    # --- the custom processor ---------------------------------------------- #
    kernel = compile_spn(spn, ptree_config())
    result = kernel.run({2: 1})  # strict mode: every transported value checked
    reference = evaluate(spn, {2: 1})
    print("\nSPN processor (Ptree):")
    print(f"  compiled to {kernel.program.n_instructions} VLIW instructions "
          f"({kernel.stats.n_cones} cones, {kernel.stats.n_loads} vector loads)")
    print(f"  result {result.value:.6f} (reference {reference:.6f})")
    print(f"  throughput {result.ops_per_cycle:6.3f} ops/cycle ({result.cycles} cycles)")
    assert abs(result.value - reference) < 1e-9

    # --- batched conditionals on a larger network --------------------------- #
    big = generate_rat_spn(
        RatSpnConfig(n_vars=64, depth=64, repetitions=2, n_sums=2,
                     split_balance=0.1, seed=7)
    )
    fast = InferenceSession(big, warm=True)          # vectorized tape, pinned
    reference_session = InferenceSession(big, engine="python")

    n_rows = 500
    evidence = random_evidence(64, observed_fraction=0.8, seed=0, n_samples=n_rows)
    evidence[:, 0] = -1                               # the queried variable
    query = np.full_like(evidence, -1)
    query[:, 0] = 1
    batch = Conditional(evidence=evidence, query=query)

    start = time.perf_counter()
    batched = fast.run(batch)                         # two tape passes, all rows
    t_batched = time.perf_counter() - start

    n_scalar = 50                                     # per-row path, a sample
    start = time.perf_counter()
    per_row = np.array([
        reference_session.run(Conditional(evidence=evidence[i], query=query[i]))[0]
        for i in range(n_scalar)
    ])
    t_per_row = (time.perf_counter() - start) / n_scalar * n_rows

    assert np.allclose(batched[:n_scalar], per_row, rtol=1e-9, atol=0.0)

    print(f"\nbatched conditionals ({n_rows} rows, 64-variable network):")
    print(f"  per-row scalar path (reference walk)  {t_per_row * 1e3:8.1f} ms (extrapolated)")
    print(f"  one batched Conditional (2 passes)    {t_batched * 1e3:8.1f} ms")
    print(f"  speedup: batched queries are {t_per_row / t_batched:.1f}x "
          "faster than the per-row scalar path")


if __name__ == "__main__":
    main()
