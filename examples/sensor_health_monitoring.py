#!/usr/bin/env python3
"""Robust sensor-health monitoring with a learned SPN (the paper's Fig. 1 scenario).

The paper motivates the processor with hybrid autonomous systems (drones,
robots) that use deep learning for perception and probabilistic reasoning for
robust decisions.  This example plays that scenario end to end:

1. generate a synthetic telemetry dataset for a drone with correlated sensor
   groups (IMU, GPS, barometer, motor currents),
2. learn an SPN from the data with the LearnSPN-style learner,
3. use the model online: score incoming readings, flag anomalies, infer the
   most probable state of masked (failed) sensors,
4. compile the learned model for the SPN processor and compare its
   throughput against the CPU and GPU baselines — the latency budget of the
   reasoning step is exactly what the paper's accelerator addresses.
"""

import numpy as np

from repro.baselines import simulate_cpu, simulate_gpu
from repro.compiler import compile_spn
from repro.processor import ptree_config
from repro.spn import (
    DatasetSpec,
    LearnConfig,
    evaluate_log,
    generate_dataset,
    learn_spn,
    linearize,
    log_likelihood,
    most_probable_explanation,
    train_test_split,
)

N_SENSORS = 16  # four groups of four correlated binary health indicators


def main() -> None:
    # --- 1. telemetry data -------------------------------------------------- #
    data = generate_dataset(
        DatasetSpec(n_vars=N_SENSORS, n_rows=1500, n_clusters=4, noise=0.08, seed=42)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    print(f"telemetry: {train.shape[0]} training rows, {test.shape[0]} held-out rows, "
          f"{N_SENSORS} binary sensor-health indicators")

    # --- 2. learn the model -------------------------------------------------- #
    model = learn_spn(train, LearnConfig(min_instances=64, seed=1))
    print("learned SPN:", model.stats())
    print("  held-out log-likelihood per row:", round(log_likelihood(model, test), 3))

    # --- 3. online reasoning ------------------------------------------------- #
    threshold = log_likelihood(model, train) - 3.0  # crude anomaly threshold
    nominal = test[0]
    anomalous = 1 - nominal  # flip every sensor: clearly inconsistent reading
    for label, reading in (("nominal", nominal), ("anomalous", anomalous)):
        score = evaluate_log(model, dict(enumerate(int(v) for v in reading)))
        flag = "ALERT" if score < threshold else "ok"
        print(f"  {label:9s} reading: log-probability {score:8.3f}  -> {flag}")

    # A failed sensor bank (GPS, variables 8..11) is masked out and its most
    # probable state inferred from the remaining sensors.
    partial = {i: int(v) for i, v in enumerate(test[1]) if not 8 <= i <= 11}
    completion = most_probable_explanation(model, partial)
    inferred = {i: completion[i] for i in range(8, 12)}
    print("  inferred state of masked GPS bank:", inferred)

    # --- 4. deploy on the accelerator ---------------------------------------- #
    ops = linearize(model)
    cpu = simulate_cpu(ops)
    gpu = simulate_gpu(ops)
    kernel = compile_spn(model, ptree_config())
    accel = kernel.run(partial)
    print("\nreasoning kernel:", ops.n_operations, "operations per query")
    print(f"  CPU model      : {cpu.ops_per_cycle:6.3f} ops/cycle -> {cpu.cycles:6d} cycles/query")
    print(f"  GPU model      : {gpu.ops_per_cycle:6.3f} ops/cycle -> {gpu.cycles:6d} cycles/query")
    print(f"  SPN processor  : {accel.ops_per_cycle:6.3f} ops/cycle -> {accel.cycles:6d} cycles/query")
    speedup = cpu.cycles / accel.cycles
    print(f"  cycle-count speedup over the CPU: {speedup:.1f}x")


if __name__ == "__main__":
    main()
