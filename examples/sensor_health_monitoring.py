#!/usr/bin/env python3
"""Online sensor-health monitoring through the inference service (Fig. 1 scenario).

The paper motivates the processor with hybrid autonomous systems (drones,
robots) that use deep learning for perception and probabilistic reasoning
for robust decisions.  This example plays that scenario as an *online*
system: instead of scoring an offline batch, a fleet of drones streams
telemetry readings into a shared :class:`repro.serving.InferenceServer`,
which coalesces the concurrent single-reading queries into micro-batches
(`docs/serving.md`):

1. generate a synthetic telemetry dataset with correlated sensor groups
   (IMU, GPS, barometer, motor currents) and learn an SPN from it,
2. host the learned model on an inference server and stream held-out
   readings through the ``asyncio`` client, flagging anomalies in flight,
3. when a sensor bank drops out mid-stream, infer its most probable state
   from the surviving sensors with an MPE query over the same service,
4. compare served dynamic-batching throughput against one-at-a-time
   evaluation — the gap is exactly what the serving layer exists to close.
"""

import asyncio
import time

import numpy as np

from repro.api import InferenceSession, LogLikelihood, Marginal
from repro.serving import AsyncInferenceClient, BatchingPolicy, InferenceServer
from repro.spn import (
    DatasetSpec,
    LearnConfig,
    generate_dataset,
    learn_spn,
    train_test_split,
)

N_SENSORS = 16  # four groups of four correlated binary health indicators
MODEL = "sensor-health"


def build_stream(test: np.ndarray, n_readings: int = 200) -> np.ndarray:
    """Interleave nominal held-out readings with a few corrupted ones."""
    rng = np.random.default_rng(7)
    stream = test[rng.integers(0, len(test), size=n_readings)].copy()
    for i in rng.choice(n_readings, size=n_readings // 20, replace=False):
        stream[i] = 1 - stream[i]  # flip every sensor: clearly inconsistent
    return stream


async def monitor(server: InferenceServer, stream: np.ndarray, threshold: float):
    """Score every incoming reading concurrently; return (scores, alerts)."""
    client = AsyncInferenceClient(server, model=MODEL)

    async def score(reading: np.ndarray) -> float:
        return await client.log_likelihood(reading)

    scores = await asyncio.gather(*[score(r) for r in stream])
    alerts = [i for i, s in enumerate(scores) if s < threshold]
    return np.array(scores), alerts


def main() -> None:
    # --- 1. telemetry data + model ------------------------------------------- #
    data = generate_dataset(
        DatasetSpec(n_vars=N_SENSORS, n_rows=1500, n_clusters=4, noise=0.08, seed=42)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    model = learn_spn(train, LearnConfig(min_instances=64, seed=1))
    print("learned SPN:", model.stats())
    # One typed-query session answers the offline questions (batched,
    # normalized log-marginals) and later doubles as the exactness oracle.
    session = InferenceSession(model)
    held_out = float(np.mean(session.run(Marginal(test, log=True, normalize=True))))
    print("  held-out log-likelihood per row:", round(held_out, 3))

    # --- 2. stream readings through the serving layer ------------------------ #
    train_ll = float(np.mean(session.run(Marginal(train, log=True, normalize=True))))
    threshold = train_ll - 3.0  # crude anomaly threshold
    stream = build_stream(test)
    policy = BatchingPolicy(max_batch_size=32, max_wait_s=0.002)
    with InferenceServer(models={MODEL: model}, policy=policy) as server:
        start = time.perf_counter()
        scores, alerts = asyncio.run(monitor(server, stream, threshold))
        streamed_s = time.perf_counter() - start
        print(f"\nstreamed {len(stream)} readings: {len(alerts)} ALERTs "
              f"(threshold {threshold:.3f})")
        for i in alerts[:3]:
            print(f"  reading #{i:3d}: log-probability {scores[i]:8.3f} -> ALERT")

        # --- 3. a sensor bank fails mid-stream ------------------------------- #
        # The GPS bank (variables 8..11) drops out; its most probable state is
        # inferred from the surviving sensors with an MPE query.
        reading = stream[len(stream) // 2]
        partial = {i: int(v) for i, v in enumerate(reading) if not 8 <= i <= 11}
        completion = server.query(MODEL, partial, kind="mpe")[0]
        inferred = {i: completion[i] for i in range(8, 12)}
        print("  GPS bank masked; inferred most probable state:", inferred)

        snapshot = server.metrics.snapshot()

    # --- 4. what the batching bought ----------------------------------------- #
    start = time.perf_counter()
    one_at_a_time = np.array(
        [
            session.run(LogLikelihood(stream[i : i + 1]))[0]
            for i in range(len(stream))
        ]
    )
    sequential_s = time.perf_counter() - start
    assert np.array_equal(one_at_a_time, scores), "serving must be bit-identical"
    print("\nserving telemetry:")
    print(f"  latency p50/p99      : {snapshot['latency_p50_ms']:.2f} / "
          f"{snapshot['latency_p99_ms']:.2f} ms")
    print(f"  mean batch occupancy : {snapshot['mean_batch_occupancy']:.2f} "
          f"({snapshot['batches']:.0f} micro-batches)")
    print(f"  throughput           : {len(stream) / streamed_s:8.0f} readings/s served "
          f"vs {len(stream) / sequential_s:8.0f} one-at-a-time "
          f"({sequential_s / streamed_s:.1f}x)")
    print("  (this demo model is tiny — ~300 ops — so per-call overhead, not "
          "compute, is the bottleneck;\n   on suite-sized networks dynamic "
          "batching wins >10x: see the 'serving' section of BENCH_sweeps.json)")


if __name__ == "__main__":
    main()
