"""Benchmark targets for the parallel sweep runner and the vectorized engine.

Two quantities are measured and consolidated into the ``BENCH_sweeps.json``
artifact (written at the repository root, uploaded by CI):

* the full design-space sweep grid, executed through the parallel, cached
  runner of :mod:`repro.experiments.sweeps`;
* the speedup of the compiled NumPy tape (:mod:`repro.spn.compiled`) over
  the row-by-row reference interpretation of the operation list, on a
  1k+-node SPN with a 1000-row evidence batch — the acceptance target is
  a >= 10x speedup over that reference executor.
"""

from pathlib import Path

import pytest

from repro.experiments import sweeps

#: Results shared between the benchmark targets and the artifact writer, so
#: the grid and the speedup measurement each run exactly once per session.
_STASH = {}


def _engine_speedup():
    if "speedup" not in _STASH:
        _STASH["speedup"] = sweeps.measure_engine_speedup()
    return _STASH["speedup"]


@pytest.fixture()
def sweep_results(tmp_path_factory):
    # Lazy thunk so the grid computes (and is timed) inside the benchmark
    # that first needs it.  A fresh cache directory per session: the point
    # of this target is to time the parallel runner itself, and a warm
    # persistent cache would silently turn it into a benchmark of 12 JSON
    # file reads (and fill the artifact with elapsed_s=0.0 placeholders).
    def compute():
        if "sweeps" not in _STASH:
            cold_cache = tmp_path_factory.mktemp("bench-sweeps") / "sweeps"
            _STASH["sweeps"] = sweeps.run_sweep(
                sweeps.all_sweep_points(sweeps.DEFAULT_BENCHMARK),
                parallel=True,
                cache_dir=cold_cache,
            )
        return _STASH["sweeps"]

    return compute


def test_vectorized_engine_speedup(benchmark, run_once):
    result = run_once(benchmark, _engine_speedup)
    benchmark.extra_info.update(
        {
            "n_nodes": result["n_nodes"],
            "n_operations": result["n_operations"],
            "n_samples": result["n_samples"],
            "speedup_vs_reference": round(result["speedup_vs_reference"], 1),
            "speedup_vs_node_batch": round(result["speedup_vs_node_batch"], 2),
        }
    )
    assert result["n_nodes"] >= 1000
    assert result["n_samples"] >= 1000
    # Acceptance criterion: the compiled tape beats the reference executor
    # by at least an order of magnitude on this workload.
    assert result["speedup_vs_reference"] >= 10.0


def test_parallel_sweep_grid(benchmark, run_once, sweep_results):
    results = run_once(benchmark, sweep_results)
    benchmark.extra_info.update(
        {r.point.label: round(r.ops_per_cycle, 3) for r in results}
    )
    assert len(results) == len(sweeps.all_sweep_points(sweeps.DEFAULT_BENCHMARK))
    assert all(r.ops_per_cycle > 0 for r in results)


def test_bench_sweeps_artifact(run_once, benchmark, sweep_results):
    payload = run_once(
        benchmark,
        lambda: sweeps.write_bench_json(
            sweep_results(),
            Path("BENCH_sweeps.json"),
            sweeps.DEFAULT_BENCHMARK,
            engine_speedup=_engine_speedup(),
        ),
    )
    assert Path("BENCH_sweeps.json").exists()
    assert payload["engine_speedup"]["speedup_vs_reference"] >= 10.0
    assert len(payload["sweeps"]) > 0
