"""Benchmark target for the headline claims of Sec. V (paper vs measured)."""

from repro.experiments import claims


def test_headline_claims(benchmark, run_once):
    derived = run_once(benchmark, claims.derive_claims)
    by_name = {c.name: c for c in derived}
    benchmark.extra_info["claims"] = {
        c.name: {"paper": c.paper_value, "measured": round(c.measured_value, 3)}
        for c in derived
    }

    # CPU and GPU land in the sub-1-op/cycle regime of the paper.
    assert 0.2 <= by_name["CPU peak ops/cycle"].measured_value <= 1.0
    assert 0.2 <= by_name["GPU peak ops/cycle"].measured_value <= 2.5
    # The custom processor reaches an order of magnitude more than either.
    assert by_name["Ptree peak ops/cycle"].measured_value >= 8.0
    assert by_name["Ptree speedup over CPU (geomean)"].measured_value >= 12.0
    assert by_name["Ptree speedup over GPU (geomean)"].measured_value >= 12.0
    # The Ptree/Pvect ratio is the one claim our stronger register allocator
    # does not reproduce at its paper value (~2x); the naive-allocation
    # ablation in the sweeps recovers the paper's regime.
    assert by_name["Ptree speedup over Pvect (geomean)"].measured_value >= 0.9
