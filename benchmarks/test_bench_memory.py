"""Benchmark: memory-planned tape execution vs the legacy slot matrix.

The source paper's thesis is that SPN inference is *memory-bound*: what
buys throughput is keeping the live operand set small and close, not
adding arithmetic.  :mod:`repro.spn.memplan` applies that lesson to the
software tape — liveness-based physical-slot reuse, lazy input encoding
and broadcast-constant operands shrink the per-block working set from
``n_slots`` rows to ``plan.n_physical`` rows — and
:func:`repro.experiments.sweeps.measure_tape_memory` measures the effect
on the largest suite profile:

* **peak slot-buffer memory** — gated at **>= 4x** reduction vs the legacy
  dense ``(n_slots, n_rows)`` matrix;
* **throughput** — the planned executor gated at **>= 1.3x** legacy on a
  large batch (median of three full measurements, each interleaving the
  executors so machine drift cancels);
* **shard scaling** — sharded execution across the CPU platform engine's
  recommended thread pool, gated at **> 1.5x** *only on hosts with >= 4
  CPUs* (thread scaling cannot exist on the 1–2 core boxes CI sometimes
  hands out; the measurement is recorded everywhere);
* **bit identity** — all executors' outputs compared with ``array_equal``
  inside the measurement; any divergence raises before a number is
  reported.

Results land in the ``tape_memory`` section of ``BENCH_sweeps.json``
(merged via :func:`repro.experiments.sweeps.update_bench_json`, uploaded
by CI).
"""

from pathlib import Path

from repro.experiments.sweeps import measure_tape_memory, update_bench_json

#: Acceptance floors (see module docstring).
MIN_MEMORY_REDUCTION = 4.0
MIN_PLANNED_SPEEDUP = 1.3
MIN_SHARDED_SCALING = 1.5
#: The shard-scaling gate only applies where threads have cores to run on.
SHARDED_GATE_MIN_CPUS = 4

#: Median of three independent measurements (an unbiased statistic: one
#: descheduling blip cannot sink the gate, one lucky sample cannot rescue a
#: real regression), with all three speedup samples recorded alongside.
_STASH = {}
_SAMPLES = 3


def _load_results():
    if "tape_memory" not in _STASH:
        runs = [measure_tape_memory() for _ in range(_SAMPLES)]
        runs.sort(key=lambda r: r["speedup_planned_vs_legacy"])
        median = dict(runs[len(runs) // 2])
        median["speedup_samples"] = [
            round(r["speedup_planned_vs_legacy"], 2) for r in runs
        ]
        _STASH["tape_memory"] = median
    return _STASH["tape_memory"]


def test_tape_memory_plan(benchmark, run_once):
    result = run_once(benchmark, _load_results)
    benchmark.extra_info.update(
        {
            "benchmark": result["benchmark"],
            "n_slots": result["n_slots"],
            "n_physical": result["n_physical"],
            "memory_reduction": round(result["memory_reduction"], 2),
            "speedup_planned_vs_legacy": round(
                result["speedup_planned_vs_legacy"], 2
            ),
            "sharded_scaling_log": round(result["sharded_scaling_log"], 2),
            "cpu_count": result["cpu_count"],
        }
    )
    # Gate 1: the working set shrinks >= 4x vs the dense slot matrix.
    assert result["memory_reduction"] >= MIN_MEMORY_REDUCTION
    assert result["peak_bytes_per_row_planned"] * MIN_MEMORY_REDUCTION <= (
        result["peak_bytes_per_row_legacy"]
    )
    # Gate 2: the planned executor beats legacy throughput at large batches.
    assert result["speedup_planned_vs_legacy"] >= MIN_PLANNED_SPEEDUP
    # Gate 3: outputs are bit-identical across all executors.
    assert result["bit_identical"]
    # Gate 4: shard scaling, where the host has cores to scale onto.
    if result["cpu_count"] >= SHARDED_GATE_MIN_CPUS:
        assert result["sharded_threads"] >= SHARDED_GATE_MIN_CPUS
        assert result["sharded_scaling_log"] > MIN_SHARDED_SCALING


def test_bench_memory_artifact(benchmark, run_once):
    payload = run_once(
        benchmark,
        lambda: update_bench_json(
            Path("BENCH_sweeps.json"), tape_memory=_load_results()
        ),
    )
    assert Path("BENCH_sweeps.json").exists()
    section = payload["tape_memory"]
    assert section["memory_reduction"] >= MIN_MEMORY_REDUCTION
    assert section["speedup_planned_vs_legacy"] >= MIN_PLANNED_SPEEDUP
    assert section["bit_identical"]
    if section["cpu_count"] >= SHARDED_GATE_MIN_CPUS:
        assert section["sharded_scaling_log"] > MIN_SHARDED_SCALING
