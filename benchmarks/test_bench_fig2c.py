"""Benchmark target for Fig. 2(c): CPU vs GPU thread-count sweep.

The series (operations/cycle for the CPU and for GPU blocks of 1/32/64/128/
256 threads on a Lowd-Davis benchmark SPN) is attached to the benchmark's
``extra_info``; the assertions lock in the qualitative shape the paper
reports: a single GPU thread is slower than the CPU and 256 threads scale
sublinearly.
"""

import pytest

from repro.experiments import fig2c


def test_fig2c_thread_sweep(benchmark, run_once):
    series = run_once(benchmark, fig2c.run)
    benchmark.extra_info["series"] = {k: round(v, 4) for k, v in series.items()}

    cpu = series["CPU"]
    gpu_1 = series["GPU 1 thr"]
    gpu_256 = series["GPU 256 thr"]
    # Paper: the single-thread GPU kernel is slower than the CPU.
    assert gpu_1 < cpu
    # Paper: 256 threads bring roughly 4x (sublinear) scaling over 1 thread.
    scaling = gpu_256 / gpu_1
    assert 1.5 < scaling < 16.0
    # Paper: the best GPU configuration is in the same ballpark as the CPU
    # (0.95 vs 0.55 ops/cycle), far from the 256x a linear scaling would give.
    assert gpu_256 == pytest.approx(cpu, rel=2.0)


@pytest.mark.parametrize("threads", [1, 32, 64, 128, 256])
def test_fig2c_individual_block_sizes(benchmark, run_once, threads):
    series = run_once(benchmark, fig2c.run, thread_counts=(threads,))
    value = series[f"GPU {threads} thr"]
    benchmark.extra_info["ops_per_cycle"] = round(value, 4)
    assert value > 0.05
