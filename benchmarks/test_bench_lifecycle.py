"""Benchmark: AOT model lifecycle — cold start, hot swap, lost requests.

The lifecycle subsystem (:mod:`repro.lifecycle`) ships a learned model as
a content-hashed AOT artifact carrying its compiled tape and memory plan,
so a serving box never recompiles.
:func:`repro.experiments.sweeps.measure_lifecycle` measures what that
buys on a learned 24-variable model:

* **cold start** — loading the artifact and adopting its tape/plan,
  gated at **>= 5x** faster than the recompile path (dataset → LearnSPN
  → linearize → compile → memory-plan), best-of-three each, median of
  three full measurements;
* **bit identity** — the cold-started session's golden replay is asserted
  identical (deviation ``0.0``) to the fresh compile inside the
  measurement; any divergence raises before a number is reported;
* **hot swap under load** — a 200-request blocking stream while a
  background thread publishes a retrained candidate through the full
  shadow-validated :meth:`~repro.serving.InferenceServer.publish` path,
  gated at **zero lost requests** (errored *or* answered with anything
  but the offline-expected vector) with the candidate live afterwards.

Results land in the ``model_lifecycle`` section of ``BENCH_sweeps.json``
(merged via :func:`repro.experiments.sweeps.update_bench_json`, uploaded
by CI).
"""

from pathlib import Path

from repro.experiments.sweeps import measure_lifecycle, update_bench_json

#: Acceptance floors (see module docstring).
MIN_COLD_START_SPEEDUP = 5.0
MAX_REQUESTS_LOST = 0

#: Median of three independent measurements (an unbiased statistic: one
#: descheduling blip cannot sink the gate, one lucky sample cannot rescue a
#: real regression), with all three speedup samples recorded alongside.
_STASH = {}
_SAMPLES = 3


def _load_results():
    if "model_lifecycle" not in _STASH:
        runs = [measure_lifecycle() for _ in range(_SAMPLES)]
        runs.sort(key=lambda r: r["cold_start_speedup"])
        median = dict(runs[len(runs) // 2])
        median["speedup_samples"] = [
            round(r["cold_start_speedup"], 2) for r in runs
        ]
        # The loss gate must see every stream, not just the median one.
        median["requests_lost"] = max(r["requests_lost"] for r in runs)
        _STASH["model_lifecycle"] = median
    return _STASH["model_lifecycle"]


def test_model_lifecycle(benchmark, run_once):
    result = run_once(benchmark, _load_results)
    benchmark.extra_info.update(
        {
            "cold_start_speedup": round(result["cold_start_speedup"], 2),
            "t_cold_start_ms": round(result["t_cold_start_s"] * 1e3, 2),
            "t_recompile_ms": round(result["t_recompile_s"] * 1e3, 2),
            "requests_lost": result["requests_lost"],
            "latency_p99_ms": round(result["latency_p99_ms"], 2),
            "t_publish_ms": round(result["t_publish_s"] * 1e3, 2),
            "cpu_count": result["cpu_count"],
        }
    )
    # Gate 1: the AOT cold start beats recompile-from-source >= 5x.
    assert result["cold_start_speedup"] >= MIN_COLD_START_SPEEDUP
    # Gate 2: the cold-started session replays bit-identically.
    assert result["bit_identical"]
    assert result["golden_deviation"] == 0.0
    # Gate 3: the shadow-validated hot swap loses nothing and lands.
    assert result["requests_lost"] <= MAX_REQUESTS_LOST
    assert result["live_version_after_swap"] == "2"


def test_bench_lifecycle_artifact(benchmark, run_once):
    payload = run_once(
        benchmark,
        lambda: update_bench_json(
            Path("BENCH_sweeps.json"), model_lifecycle=_load_results()
        ),
    )
    assert Path("BENCH_sweeps.json").exists()
    section = payload["model_lifecycle"]
    assert section["cold_start_speedup"] >= MIN_COLD_START_SPEEDUP
    assert section["bit_identical"]
    assert section["requests_lost"] <= MAX_REQUESTS_LOST
