"""Benchmark: dynamic batching vs one-request-at-a-time inference serving.

A load generator issues individual likelihood queries against one suite
benchmark and measures two ways of serving them:

* **per-request** — the no-batching baseline: each request is one engine
  call on a one-row batch (sequential direct calls, i.e. zero serving
  overhead — the comparison is conservative, since the dynamic side pays
  for its queue, futures and worker thread);
* **dynamic batching** — the full :mod:`repro.serving` stack: requests are
  coalesced into micro-batches under the max-batch-size / max-wait policy
  and executed through the same engine.

Responses must be **bit-identical** to a direct
:func:`repro.spn.evaluate.evaluate_batch` call over all rows (the batch
kernels are elementwise across rows, so batching is invisible to
correctness), and the acceptance criterion is a >= 5x throughput gain for
the batched service.  The measurements land in the ``serving`` section of
``BENCH_sweeps.json`` (merged via
:func:`repro.experiments.sweeps.update_bench_json`, uploaded by CI).
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.sweeps import update_bench_json
from repro.serving import BatchingPolicy, InferenceServer
from repro.serving.server import KIND_LIKELIHOOD
from repro.spn.evaluate import evaluate_batch
from repro.spn.generate import random_evidence
from repro.suite.registry import benchmark_n_vars, build_benchmark

BENCHMARK = "KDDCup2k"
N_REQUESTS = 512
POLICY = BatchingPolicy(max_batch_size=64, max_wait_s=0.002, max_queue_depth=1024)

#: Shared measurement, computed once per session (mirrors test_bench_sweeps).
_STASH = {}


def _load_results():
    if "serving" in _STASH:
        return _STASH["serving"]

    spn = build_benchmark(BENCHMARK)
    n_vars = benchmark_n_vars(BENCHMARK)
    rows = random_evidence(n_vars, observed_fraction=0.8, seed=9, n_samples=N_REQUESTS)
    reference = evaluate_batch(spn, rows, engine="vectorized")  # also warms the tape

    # Baseline: one engine call per request, no serving machinery at all.
    start = time.perf_counter()
    sequential = np.array(
        [
            evaluate_batch(spn, rows[i : i + 1], engine="vectorized")[0]
            for i in range(N_REQUESTS)
        ]
    )
    t_per_request = time.perf_counter() - start

    # Dynamic batching: the full serving stack under a batch-heavy load.
    server = InferenceServer(models=[BENCHMARK], policy=POLICY).start()
    start = time.perf_counter()
    futures = [
        server.submit(BENCHMARK, rows[i], kind=KIND_LIKELIHOOD)
        for i in range(N_REQUESTS)
    ]
    served = np.array([f.result()[0] for f in futures])
    t_dynamic = time.perf_counter() - start
    server.stop()

    snapshot = server.metrics.snapshot()
    _STASH["serving"] = {
        "benchmark": BENCHMARK,
        "n_requests": N_REQUESTS,
        "max_batch_size": POLICY.max_batch_size,
        "max_wait_s": POLICY.max_wait_s,
        "t_per_request_s": t_per_request,
        "t_dynamic_s": t_dynamic,
        "throughput_per_request_rps": N_REQUESTS / t_per_request,
        "throughput_dynamic_rps": N_REQUESTS / t_dynamic,
        "speedup_dynamic_vs_per_request": t_per_request / t_dynamic,
        "latency_p50_ms": snapshot["latency_p50_ms"],
        "latency_p99_ms": snapshot["latency_p99_ms"],
        "mean_batch_occupancy": snapshot["mean_batch_occupancy"],
        "batches": snapshot["batches"],
        "bit_identical": bool(
            np.array_equal(served, reference) and np.array_equal(sequential, reference)
        ),
    }
    return _STASH["serving"]


def test_dynamic_batching_throughput(benchmark, run_once):
    result = run_once(benchmark, _load_results)
    benchmark.extra_info.update(
        {
            "n_requests": result["n_requests"],
            "speedup": round(result["speedup_dynamic_vs_per_request"], 1),
            "throughput_rps": round(result["throughput_dynamic_rps"], 1),
            "occupancy": round(result["mean_batch_occupancy"], 3),
        }
    )
    # Acceptance criteria: responses bit-identical to direct evaluate_batch,
    # and >= 5x throughput for dynamic batching under a batch-heavy load.
    assert result["bit_identical"]
    assert result["speedup_dynamic_vs_per_request"] >= 5.0


def test_bench_serving_artifact(benchmark, run_once):
    payload = run_once(
        benchmark,
        lambda: update_bench_json(Path("BENCH_sweeps.json"), serving=_load_results()),
    )
    assert Path("BENCH_sweeps.json").exists()
    serving = payload["serving"]
    assert serving["bit_identical"]
    assert serving["speedup_dynamic_vs_per_request"] >= 5.0
    assert serving["batches"] >= N_REQUESTS // POLICY.max_batch_size
