"""Benchmark target for Table I: platform compute/memory resources.

Regenerates the resource table of the paper from the same configuration
objects the models use; the rendered rows are attached as ``extra_info`` so
the benchmark report itself contains the table.
"""

from repro.experiments import table1


def test_table1_resources(benchmark, run_once):
    rows = run_once(benchmark, table1.rows)
    assert [r[0] for r in rows] == ["CPU", "GPU", "Ours (Pvect)", "Ours (Ptree)"]
    benchmark.extra_info["table"] = table1.main()
    # Headline resource facts from the paper.
    by_platform = {r[0]: r for r in rows}
    assert by_platform["Ours (Ptree)"][1] == "30 PEs"
    assert by_platform["Ours (Pvect)"][1] == "16 PEs"
