"""Shared configuration for the benchmark harness.

Every benchmark is a single-shot measurement (``benchmark.pedantic`` with one
round): the quantities of interest are the *model* outputs (cycle counts and
operations/cycle, reported through ``extra_info``), not the wall-clock time of
the Python simulation itself.
"""

from __future__ import annotations

import pytest


def single_shot(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def run_once():
    return single_shot
