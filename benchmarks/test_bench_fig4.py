"""Benchmark targets for Fig. 4: throughput of every platform on every benchmark.

One pytest-benchmark item per (benchmark, platform) pair regenerates the full
grid of the paper's Fig. 4; the measured operations/cycle is attached as
``extra_info`` so the benchmark report reads like the figure.
"""

import pytest

from repro.experiments.platforms import (
    DEFAULT_PLATFORMS,
    PLATFORM_CPU,
    PLATFORM_GPU,
    PLATFORM_PTREE,
    PLATFORM_PVECT,
    run_platform,
)
from repro.suite.registry import benchmark_names, benchmark_operation_list

#: Expected operations/cycle regime per platform (order-of-magnitude guard
#: rails, not exact numbers; the measured values land in the benchmark
#: report's ``extra_info``).
_EXPECTED_RANGE = {
    PLATFORM_CPU: (0.2, 1.0),
    PLATFORM_GPU: (0.2, 2.5),
    PLATFORM_PVECT: (3.0, 20.0),
    PLATFORM_PTREE: (4.0, 25.0),
}


@pytest.mark.parametrize("platform", DEFAULT_PLATFORMS)
@pytest.mark.parametrize("name", benchmark_names())
def test_fig4_throughput(benchmark, run_once, name, platform):
    ops = benchmark_operation_list(name)
    result = run_once(benchmark, run_platform, platform, ops, name)
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["platform"] = platform
    benchmark.extra_info["ops_per_cycle"] = round(result.ops_per_cycle, 4)
    benchmark.extra_info["cycles"] = result.cycles
    low, high = _EXPECTED_RANGE[platform]
    assert low <= result.ops_per_cycle <= high, (
        f"{platform} on {name}: {result.ops_per_cycle:.3f} ops/cycle outside "
        f"the expected range [{low}, {high}]"
    )


@pytest.mark.parametrize("name", benchmark_names())
def test_fig4_processor_beats_baselines(benchmark, run_once, name):
    """The headline ordering of Fig. 4: Ptree far above CPU and GPU."""
    ops = benchmark_operation_list(name)

    def measure():
        return {
            platform: run_platform(platform, ops, name).ops_per_cycle
            for platform in DEFAULT_PLATFORMS
        }

    values = run_once(benchmark, measure)
    benchmark.extra_info.update({k: round(v, 4) for k, v in values.items()})
    assert values[PLATFORM_PTREE] > 5 * values[PLATFORM_CPU]
    assert values[PLATFORM_PTREE] > 5 * values[PLATFORM_GPU]
