"""Benchmark targets for the ablations and design-space sweeps.

These go beyond the paper's two design points: PE arrangement sweep,
register-bank allocation ablation (which brackets the paper's Pvect/Ptree
gap), subtree-packing ablation and the GPU bank-allocation ablation.  The
sweep machinery itself (parallel runner, cache, ``BENCH_sweeps.json``) is
measured in ``test_bench_sweeps.py``; see ``docs/architecture.md`` for the
design-space rationale.
"""

from repro.experiments import sweeps


def test_tree_arrangement_sweep(benchmark, run_once):
    results = run_once(benchmark, sweeps.tree_arrangement_sweep)
    benchmark.extra_info.update({k: round(v, 3) for k, v in results.items()})
    assert all(v > 1.0 for v in results.values())


def test_register_allocation_ablation(benchmark, run_once):
    results = run_once(benchmark, sweeps.allocation_ablation)
    benchmark.extra_info.update(
        {f"{alloc}/{cfg}": round(v, 3) for alloc, row in results.items() for cfg, v in row.items()}
    )
    # The conflict-minimizing allocation is what makes both configurations fast.
    assert results["conflict-aware"]["Pvect"] > results["naive"]["Pvect"]
    assert results["conflict-aware"]["Ptree"] > results["naive"]["Ptree"]
    # Under the naive allocator the tree arrangement clearly wins (the regime
    # in which the paper reports its 2x Ptree-over-Pvect advantage).
    assert results["naive"]["Ptree"] > 1.2 * results["naive"]["Pvect"]


def test_subtree_packing_ablation(benchmark, run_once):
    results = run_once(benchmark, sweeps.packing_ablation)
    benchmark.extra_info.update({k: round(v, 3) for k, v in results.items()})
    assert results["packing on"] >= results["packing off"]


def test_gpu_bank_allocation_ablation(benchmark, run_once):
    results = run_once(benchmark, sweeps.gpu_bank_allocation_ablation)
    benchmark.extra_info.update({k: round(v, 3) for k, v in results.items()})
    assert results["graph coloring"] >= 0.95 * results["interleaved"]
