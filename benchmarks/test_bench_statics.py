"""Benchmark: cost and power of the static verification layer.

The static gates (artifact load, registry publish, ``check=True``
execution, serve-check) only earn their always-on placement if the proof
is near-free and actually catches miscompiles.
:func:`repro.experiments.sweeps.measure_static_analysis` quantifies both
over all nine suite profiles:

* **verify cost** — the structural proof (tape verifier + fused-plan
  verifier, exactly what the lifecycle gates run) timed against a fresh
  linearize → compile → plan of the same networks, gated at **<= 5%** of
  compile time; the advisory abstract interpretation is timed separately
  (``analyze_s``) and not gated;
* **mutation detection** — every applicable mutator of the seeded corpus
  (:mod:`repro.statics.mutate`) applied to every profile, gated at
  **100%** detection;
* **false positives** — unmutated profiles must all verify clean (gate:
  zero) and the abstract interpreter must prove all nine
  normalized-by-construction;
* **project lint** — :func:`repro.statics.lint.lint_paths` over the
  installed ``repro`` package, gated at zero findings (no suppression
  syntax exists).

Results land in the ``static_analysis`` section of ``BENCH_sweeps.json``
(merged via :func:`repro.experiments.sweeps.update_bench_json`, uploaded
by CI).
"""

from pathlib import Path

from repro.experiments.sweeps import measure_static_analysis, update_bench_json

#: Acceptance gates (see module docstring).
MAX_VERIFY_VS_COMPILE = 0.05
REQUIRED_DETECTION_RATE = 1.0
PROFILE_COUNT = 9

#: Median-by-ratio of three measurements: one descheduling blip during the
#: timed verify pass cannot sink the 5% gate, one lucky sample cannot hide
#: a real slowdown.  Detection counts are deterministic across runs.
_STASH = {}
_SAMPLES = 3


def _load_results():
    if "static_analysis" not in _STASH:
        runs = [measure_static_analysis() for _ in range(_SAMPLES)]
        runs.sort(key=lambda r: r["verify_vs_compile"])
        median = dict(runs[len(runs) // 2])
        median["verify_vs_compile_samples"] = [
            round(r["verify_vs_compile"], 4) for r in runs
        ]
        _STASH["static_analysis"] = median
    return _STASH["static_analysis"]


def test_static_analysis(benchmark, run_once):
    result = run_once(benchmark, _load_results)
    benchmark.extra_info.update(
        {
            "profiles": result["profiles"],
            "verify_vs_compile": round(result["verify_vs_compile"], 4),
            "analyze_s": round(result["analyze_s"], 4),
            "mutations_applied": result["mutations_applied"],
            "detection_rate": result["detection_rate"],
            "false_positives": result["false_positives"],
            "proved_normalized": result["proved_normalized"],
            "lint_findings": result["lint_findings"],
        }
    )
    # Gate 1: verifying all nine tapes costs <= 5% of compiling them.
    assert result["verify_vs_compile"] <= MAX_VERIFY_VS_COMPILE
    # Gate 2: the seeded mutation corpus is caught in full.
    assert result["mutations_applied"] > 0
    assert result["detection_rate"] == REQUIRED_DETECTION_RATE
    assert result["mutations_detected"] == result["mutations_applied"]
    # Gate 3: no false positives, and normalization proved for all nine.
    assert result["false_positives"] == 0
    assert result["proved_normalized"] == PROFILE_COUNT == result["profiles"]
    # Gate 4: the project's own source lints clean, unsuppressed.
    assert result["lint_findings"] == 0


def test_bench_statics_artifact(benchmark, run_once):
    payload = run_once(
        benchmark,
        lambda: update_bench_json(
            Path("BENCH_sweeps.json"), static_analysis=_load_results()
        ),
    )
    assert Path("BENCH_sweeps.json").exists()
    section = payload["static_analysis"]
    assert section["verify_vs_compile"] <= MAX_VERIFY_VS_COMPILE
    assert section["detection_rate"] == REQUIRED_DETECTION_RATE
    assert section["false_positives"] == 0
    assert section["lint_findings"] == 0
