"""Benchmark: batched typed queries vs the per-row scalar path.

The typed query API (:mod:`repro.api`) made conditionals a *batched*
workload for the first time: one :class:`repro.api.Conditional` batch plans
into exactly **two** log-domain tape passes (joint and evidence,
subtracted), where the scalar path answers one row at a time with two
network evaluations each.  :func:`repro.experiments.sweeps.measure_query_speedup`
times both on a suite benchmark:

* **per-row scalar (reference)** — single-row queries through the
  ``engine="python"`` reference walk: what a scalar caller paid before the
  typed API existed (conditionals could not reach the batched engines at
  all);
* **per-row scalar (session)** — the deprecated wrapper
  (:func:`repro.spn.queries.conditional`), now a single-row vectorized
  session per call;
* **batched** — one ``InferenceSession.run(Conditional(...))`` over the
  whole batch.

The batched result is asserted bit-identical to the per-row vectorized
path and the acceptance criterion is a **>= 50x** throughput gain over the
per-row reference path, with exactly two tape passes per batch.  The
measurements land in the ``query_api`` section of ``BENCH_sweeps.json``
(merged via :func:`repro.experiments.sweeps.update_bench_json`, uploaded
by CI).

The analysis kinds ride the same plan machinery:
:func:`repro.experiments.sweeps.measure_classify_speedup` times a batched
``Classify`` (predict_proba: two tape passes for any batch size and state
count) against assembling the same posteriors from per-state single-row
conditionals (``2 * n_rows * n_states`` passes), asserts bit-identity
between the two, and lands in the ``analysis_queries`` section of the same
artifact.
"""

from pathlib import Path

import pytest

from repro.experiments.sweeps import (
    measure_classify_speedup,
    measure_query_speedup,
    update_bench_json,
)

#: Acceptance floor for batched-vs-scalar conditional throughput.
MIN_SPEEDUP = 50.0

#: Acceptance floor for batched Classify vs the per-state Conditional loop.
#: Deliberately conservative: the loop pays two tape passes per (row,
#: state) pair against the batch's flat two, so the true ratio on the
#: 100-variable measurement benchmark is far higher; the gate only has to
#: catch "batching stopped working", not defend the headline number.
MIN_CLASSIFY_SPEEDUP = 10.0

#: Shared measurement, computed once per session (mirrors the other
#: benchmark modules).  The recorded sample is the **median of three**
#: independent measurements — an unbiased statistic (no retry-until-pass,
#: no max-pick: a regression below the gate still fails, since the median
#: cannot be rescued by one lucky sample) that a single descheduling blip
#: on a shared CI box cannot sink either.  All three speedup samples are
#: recorded alongside it for transparency.
_STASH = {}
_SAMPLES = 3


def _load_results():
    if "query_api" not in _STASH:
        runs = [measure_query_speedup() for _ in range(_SAMPLES)]
        runs.sort(key=lambda r: r["speedup_batched_vs_scalar"])
        median = dict(runs[len(runs) // 2])
        median["speedup_samples"] = [
            round(r["speedup_batched_vs_scalar"], 1) for r in runs
        ]
        _STASH["query_api"] = median
    return _STASH["query_api"]


def _load_classify_results():
    if "analysis_queries" not in _STASH:
        runs = [measure_classify_speedup() for _ in range(_SAMPLES)]
        runs.sort(key=lambda r: r["speedup_batched_vs_loop"])
        median = dict(runs[len(runs) // 2])
        median["speedup_samples"] = [
            round(r["speedup_batched_vs_loop"], 1) for r in runs
        ]
        _STASH["analysis_queries"] = median
    return _STASH["analysis_queries"]


def test_batched_conditional_throughput(benchmark, run_once):
    result = run_once(benchmark, _load_results)
    benchmark.extra_info.update(
        {
            "benchmark": result["benchmark"],
            "n_rows": result["n_rows"],
            "tape_passes_per_batch": result["tape_passes_per_batch"],
            "speedup_vs_scalar_reference": round(result["speedup_batched_vs_scalar"], 1),
            "speedup_vs_scalar_session": round(
                result["speedup_batched_vs_scalar_session"], 1
            ),
            "throughput_rps": round(result["throughput_batched_rps"], 1),
        }
    )
    # Acceptance criteria: a Conditional batch is exactly two tape passes,
    # results are bit-identical to per-row execution, and batching beats
    # the per-row scalar path by >= 50x.
    assert result["tape_passes_per_batch"] == 2
    assert result["planned_passes"] == 2
    assert result["bit_identical"]
    assert result["speedup_batched_vs_scalar"] >= MIN_SPEEDUP


def test_batched_classify_throughput(benchmark, run_once):
    result = run_once(benchmark, _load_classify_results)
    benchmark.extra_info.update(
        {
            "benchmark": result["benchmark"],
            "n_rows": result["n_rows"],
            "n_states": result["n_states"],
            "tape_passes_per_batch": result["tape_passes_per_batch"],
            "speedup_vs_per_state_loop": round(result["speedup_batched_vs_loop"], 1),
            "throughput_rps": round(result["throughput_batched_rps"], 1),
        }
    )
    # Acceptance criteria: a Classify batch is exactly two tape passes no
    # matter the state count, posteriors are bit-identical to the
    # per-state Conditional loop, and batching beats the loop by >= 10x.
    assert result["tape_passes_per_batch"] == 2
    assert result["planned_passes"] == 2
    assert result["bit_identical"]
    assert result["speedup_batched_vs_loop"] >= MIN_CLASSIFY_SPEEDUP


def test_analysis_plan_shapes_recorded(benchmark, run_once):
    # The fixed pass counts the docs promise for every analysis kind, as
    # recorded into the artifact: 2 for the conditional-shaped kinds, 3
    # for the pairwise mutual-information sweep.
    result = run_once(benchmark, _load_classify_results)
    passes = result["analysis_passes"]
    assert passes["classify"] == 2
    assert passes["expectation"] == 2
    assert passes["entropy"] == 2
    assert passes["mutual_information"] == 3
    assert passes["sample_free_vars"] >= 1


def test_bench_queries_artifact(benchmark, run_once):
    payload = run_once(
        benchmark,
        lambda: update_bench_json(
            Path("BENCH_sweeps.json"),
            query_api=_load_results(),
            analysis_queries=_load_classify_results(),
        ),
    )
    assert Path("BENCH_sweeps.json").exists()
    query_api = payload["query_api"]
    assert query_api["tape_passes_per_batch"] == 2
    assert query_api["bit_identical"]
    assert query_api["speedup_batched_vs_scalar"] >= MIN_SPEEDUP
    analysis = payload["analysis_queries"]
    assert analysis["tape_passes_per_batch"] == 2
    assert analysis["bit_identical"]
    assert analysis["speedup_batched_vs_loop"] >= MIN_CLASSIFY_SPEEDUP
