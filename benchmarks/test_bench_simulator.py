"""Benchmark target for the strict-vs-fast simulator speedup.

Measures the vectorized fast mode of the cycle-accurate simulator
(:mod:`repro.processor.fastsim`) against the strict interpreter on a
1k+-instruction compiled ``Ptree`` program, and merges the measurement into
the ``BENCH_sweeps.json`` artifact (uploaded by CI) under the
``simulator_speedup`` key — the sweep-grid writers preserve it and vice
versa, so the artifact stays whole regardless of which benchmark file runs
last.

Acceptance: fast mode must be at least 5x faster than strict mode while
reproducing its cycle counts and outputs exactly (the measurement itself
cross-checks the two modes before reporting).
"""

from pathlib import Path

from repro.experiments import sweeps

#: Computed once per session and shared between the two targets.
_STASH = {}


def _simulator_speedup():
    if "speedup" not in _STASH:
        _STASH["speedup"] = sweeps.measure_simulator_speedup()
    return _STASH["speedup"]


def test_fast_simulator_speedup(benchmark, run_once):
    result = run_once(benchmark, _simulator_speedup)
    benchmark.extra_info.update(
        {
            "n_instructions": result["n_instructions"],
            "n_operations": result["n_operations"],
            "speedup_fast_vs_strict": round(result["speedup_fast_vs_strict"], 1),
            "speedup_fast_cold_vs_strict": round(
                result["speedup_fast_cold_vs_strict"], 2
            ),
        }
    )
    assert result["n_instructions"] >= 1000
    # Acceptance criterion: the precompiled tapes beat the strict interpreter
    # by at least 5x on a 1k-instruction program.
    assert result["speedup_fast_vs_strict"] >= 5.0


def test_bench_simulator_artifact(benchmark, run_once):
    payload = run_once(
        benchmark,
        lambda: sweeps.update_bench_json(
            Path("BENCH_sweeps.json"), simulator_speedup=_simulator_speedup()
        ),
    )
    assert Path("BENCH_sweeps.json").exists()
    assert payload["simulator_speedup"]["speedup_fast_vs_strict"] >= 5.0
