"""Benchmark: observability overhead — disabled, enabled, and profiled.

Instrumentation that taxes the hot path gets turned off; this gate keeps
the observability subsystem honest about its own cost.
:func:`repro.experiments.sweeps.measure_observability_overhead` runs the
same planned-executor workload (2048 log-likelihood rows through the
default sweep benchmark's tape) in three regimes:

* **disabled** (``configure(metrics=False, tracing=False)``) — the
  instrumented ``execute_batch`` vs the raw planned kernel loop, gated at
  **<= 2%** overhead: with the switches off, the hooks must cost no more
  than one contextvar read per batch;
* **enabled** (metrics + request tracing on) — ``session.run`` with span
  recording vs the same call with observability off, gated at **<= 10%**:
  spans amortize per pass, never per kernel;
* **profiled** (a per-call :class:`~repro.observability.TapeProfiler`) —
  exempt from the overhead gates by design (per-kernel clocks are the one
  genuinely expensive instrument, and they are per-call opt-in only), but
  the per-kernel elapsed must account for **>= 90%** of the profiled pass
  wall time, or the "top kernels" table would be attributing fiction.

Every regime's output is asserted bit-identical to the raw loop inside
the measurement.  Results land in the ``observability`` section of
``BENCH_sweeps.json`` (merged via
:func:`repro.experiments.sweeps.update_bench_json`, uploaded by CI).
"""

import concurrent.futures
import multiprocessing
from pathlib import Path

from repro.experiments.sweeps import (
    measure_observability_overhead,
    update_bench_json,
)

#: Acceptance ceilings/floors (see module docstring).
MAX_OVERHEAD_DISABLED = 1.02
MAX_OVERHEAD_ENABLED = 1.10
MIN_PROFILE_COVERAGE = 0.90

#: Three independent measurements per gated metric, all recorded
#: alongside — each taken in a freshly *spawned* process, because the
#: heap/allocator state other benchmark files leave behind in the shared
#: pytest process measurably skews the overhead ratios (the same
#: measurement that reads 1.01 in a clean process reads 1.04+ after the
#: memory benchmarks have churned gigabytes through the heap).  The
#: overhead gates take the best measurement: noise can only inflate a
#: whole sample, while a real instrumentation regression inflates every
#: one, including the best.  Profile coverage keeps the median (its
#: noise is two-sided).
_STASH = {}
_SAMPLES = 3


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _measure_in_fresh_process():
    ctx = multiprocessing.get_context("spawn")
    with concurrent.futures.ProcessPoolExecutor(1, mp_context=ctx) as pool:
        return pool.submit(measure_observability_overhead).result()


def _load_results():
    if "observability" not in _STASH:
        runs = [_measure_in_fresh_process() for _ in range(_SAMPLES)]
        result = dict(runs[0])
        for key in ("overhead_disabled", "overhead_enabled"):
            result[key] = min(run[key] for run in runs)
            result[f"{key}_samples"] = [round(run[key], 4) for run in runs]
        result["profile_coverage"] = _median(
            run["profile_coverage"] for run in runs
        )
        result["profile_coverage_samples"] = [
            round(run["profile_coverage"], 4) for run in runs
        ]
        result["bit_identical"] = all(run["bit_identical"] for run in runs)
        _STASH["observability"] = result
    return _STASH["observability"]


def test_observability_overhead(benchmark, run_once):
    result = run_once(benchmark, _load_results)
    benchmark.extra_info.update(
        {
            "overhead_disabled": round(result["overhead_disabled"], 4),
            "overhead_enabled": round(result["overhead_enabled"], 4),
            "overhead_profiled": round(result["overhead_profiled"], 4),
            "profile_coverage": round(result["profile_coverage"], 4),
            "t_raw_loop_ms": round(result["t_raw_loop_s"] * 1e3, 3),
            "n_kernels": result["n_kernels"],
            "cpu_count": result["cpu_count"],
        }
    )
    # Gate 1: with observability off, the instrumented executor is free.
    assert result["overhead_disabled"] <= MAX_OVERHEAD_DISABLED
    # Gate 2: metrics + tracing stay within the enabled budget.
    assert result["overhead_enabled"] <= MAX_OVERHEAD_ENABLED
    # Gate 3: the per-kernel profile explains the pass it profiled.
    assert result["profile_coverage"] >= MIN_PROFILE_COVERAGE
    # Instrumented execution never changes a value.
    assert result["bit_identical"]


def test_bench_observability_artifact(benchmark, run_once):
    payload = run_once(
        benchmark,
        lambda: update_bench_json(
            Path("BENCH_sweeps.json"), observability=_load_results()
        ),
    )
    assert Path("BENCH_sweeps.json").exists()
    section = payload["observability"]
    assert section["overhead_disabled"] <= MAX_OVERHEAD_DISABLED
    assert section["overhead_enabled"] <= MAX_OVERHEAD_ENABLED
    assert section["profile_coverage"] >= MIN_PROFILE_COVERAGE
