"""Benchmark: the chaos-engineered serving plane's three quantitative gates.

* **Hooks-disabled overhead** — the fault-injection sites follow the
  zero-overhead-when-off discipline: with no plan installed the batch path
  costs one module-attribute read over the uninstrumented code.  Measured
  as the interleaved-median throughput ratio of the instrumented batch
  path against the raw fast path bound directly onto the server; gated at
  <= 1.02.
* **Chaos soak** — ``repro.faults.soak.run_soak`` over >= 10^4 concurrent
  requests with every serving-path fault site armed (worker crashes, slow
  kernels, executor faults, queue stalls, a crash mid-publish): zero lost
  futures, zero mismatched successes, the registry incumbent intact.
* **Deadline-drop precision** — requests whose deadline expires in the
  queue are dropped *before* the engine call: the expired rows account for
  exactly zero engine tape passes (measured at the session's evaluation
  hook), while every expired future resolves with the typed error.

Results land in the ``serving_resilience`` section of ``BENCH_sweeps.json``
(merged via :func:`repro.experiments.sweeps.update_bench_json`).
"""

import statistics
import time
from pathlib import Path

import numpy as np

from repro.experiments.sweeps import update_bench_json
from repro.faults import FaultPlan, FaultSpec, fault_scope
from repro.faults.soak import run_soak
from repro.serving import (
    BatchingPolicy,
    DeadlineExceededError,
    InferenceServer,
)
from repro.spn.generate import random_evidence
from repro.suite.registry import benchmark_n_vars

BENCHMARK = "Banknote"
SOAK_REQUESTS = 10_000
OVERHEAD_TRIALS = 15
OVERHEAD_ROWS = 16384
OVERHEAD_GATE = 1.02

#: Shared measurement, computed once per session (mirrors test_bench_serving).
_STASH = {}


def _overhead_disabled():
    """Interleaved median throughput ratio: instrumented vs raw batch path."""
    n_vars = benchmark_n_vars(BENCHMARK)
    rows = random_evidence(
        n_vars, observed_fraction=0.8, seed=11, n_samples=OVERHEAD_ROWS
    )
    server = InferenceServer(
        models=[BENCHMARK],
        policy=BatchingPolicy(max_batch_size=64, max_wait_s=0.001,
                              max_queue_depth=OVERHEAD_ROWS),
        n_workers=1,
    ).start()

    def run_once():
        start = time.perf_counter()
        server.query(BENCHMARK, rows, kind="log_likelihood", timeout=30.0)
        return time.perf_counter() - start

    instrumented = server._process_batch  # resolves the (absent) fault plan
    raw = server._process_batch_fast  # the uninstrumented path, bound direct
    run_once()  # warm tape + workspaces before timing anything
    hooked, bare = [], []
    for _ in range(OVERHEAD_TRIALS):  # interleaved: drift hits both arms
        server._process_batch = instrumented
        hooked.append(run_once())
        server._process_batch = raw
        bare.append(run_once())
    server._process_batch = instrumented
    server.stop()
    # Each hooked trial is paired with the raw trial run back-to-back, so
    # machine-level drift (which moves both by 10-30% between moments on a
    # busy 1-CPU box) cancels inside the pair; the median over pairs then
    # discards pairs a scheduler hiccup split down the middle.
    ratio = statistics.median(h / b for h, b in zip(hooked, bare))
    return {
        "trials": OVERHEAD_TRIALS,
        "rows_per_trial": OVERHEAD_ROWS,
        "t_hooked_min_s": min(hooked),
        "t_raw_min_s": min(bare),
        "t_hooked_median_s": statistics.median(hooked),
        "t_raw_median_s": statistics.median(bare),
        "overhead_ratio": ratio,
        "gate": OVERHEAD_GATE,
    }


def _deadline_precision():
    """Expired rows dropped before the engine: zero tape passes for them."""
    n_expired = 32
    plan = FaultPlan(seed=0, specs=[FaultSpec("serving.worker_crash", times=1)])
    server = InferenceServer(
        models=[BENCHMARK],
        policy=BatchingPolicy(max_batch_size=64, max_wait_s=0.005),
        n_workers=1,
        heal_interval_s=60.0,
    )
    counts = {}
    n_vars = benchmark_n_vars(BENCHMARK)
    rng = np.random.default_rng(13)
    with fault_scope(plan):
        server.start()
        session = server.model(BENCHMARK).session
        session.on_evaluate = lambda domain, n_rows: counts.__setitem__(
            domain, counts.get(domain, 0) + n_rows
        )
        # Kill the only worker deterministically; its batch requeues.
        sacrificial = server.submit(BENCHMARK, rng.integers(-1, 2, n_vars))
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            fired = plan.report()["serving.worker_crash"]["fired"]
            if fired >= 1 and all(not w.is_alive() for w in server._workers):
                break
            time.sleep(0.005)
        expired = [
            server.submit(
                BENCHMARK,
                rng.integers(-1, 2, n_vars),
                kind="likelihood",
                deadline_s=0.05,
            )
            for _ in range(n_expired)
        ]
        time.sleep(0.15)  # every deadline passes while no worker is alive
        server._heal_workers()
        typed = 0
        for future in expired:
            try:
                future.result(timeout=10.0)
            except DeadlineExceededError:
                typed += 1
        sacrificial.result(timeout=10.0)
    server.stop()
    return {
        "deadline_requests": n_expired,
        "typed_deadline_failures": typed,
        # Expired likelihood rows run linear-domain passes; zero means the
        # deadline gate held at the engine boundary.
        "expired_rows_executed": counts.get("linear", 0),
        "deadline_counter": server.metrics.registry.counter(
            "serving_deadline_exceeded_total"
        ).value,
    }


def _load_results():
    if "serving_resilience" in _STASH:
        return _STASH["serving_resilience"]
    soak = run_soak(n_requests=SOAK_REQUESTS, seed=0)
    _STASH["serving_resilience"] = {
        "benchmark": BENCHMARK,
        "overhead_disabled": _overhead_disabled(),
        "soak": {
            "n_requests": soak["n_requests"],
            "seed": soak["seed"],
            "elapsed_s": soak["elapsed_s"],
            "throughput_rps": soak["throughput_rps"],
            "outcomes": soak["outcomes"],
            "lost_requests": soak["lost_requests"],
            "faults": soak["faults"],
            "counters": soak["counters"],
            "publish": soak["publish"],
            "invariants": soak["invariants"],
        },
        "deadline_precision": _deadline_precision(),
    }
    return _STASH["serving_resilience"]


def test_hooks_disabled_overhead(benchmark, run_once):
    result = run_once(benchmark, _load_results)["overhead_disabled"]
    benchmark.extra_info.update({"overhead_ratio": round(result["overhead_ratio"], 4)})
    assert result["overhead_ratio"] <= OVERHEAD_GATE


def test_soak_invariants(benchmark, run_once):
    soak = run_once(benchmark, _load_results)["soak"]
    benchmark.extra_info.update(
        {
            "n_requests": soak["n_requests"],
            "lost": soak["lost_requests"],
            "restarts": soak["counters"]["worker_restarts"],
        }
    )
    assert soak["n_requests"] >= 10_000
    assert soak["lost_requests"] == 0
    assert soak["outcomes"].get("mismatch", 0) == 0
    assert soak["invariants"]["clean"]
    # The chaos actually happened: crashes healed and the publish crashed
    # without touching the incumbent.
    assert soak["counters"]["worker_restarts"] >= 1
    assert soak["publish"]["live_after"] == soak["publish"]["live_before"]


def test_deadline_drop_precision(benchmark, run_once):
    result = run_once(benchmark, _load_results)["deadline_precision"]
    benchmark.extra_info.update(
        {"expired_rows_executed": result["expired_rows_executed"]}
    )
    assert result["expired_rows_executed"] == 0
    assert result["typed_deadline_failures"] == result["deadline_requests"]


def test_bench_resilience_artifact(benchmark, run_once):
    payload = run_once(
        benchmark,
        lambda: update_bench_json(
            Path("BENCH_sweeps.json"), serving_resilience=_load_results()
        ),
    )
    assert Path("BENCH_sweeps.json").exists()
    section = payload["serving_resilience"]
    assert section["overhead_disabled"]["overhead_ratio"] <= OVERHEAD_GATE
    assert section["soak"]["invariants"]["clean"]
    assert section["deadline_precision"]["expired_rows_executed"] == 0
