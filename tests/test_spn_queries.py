"""Tests for marginal, conditional, likelihood and MPE queries."""

import math

import numpy as np
import pytest

from repro.spn.datasets import DatasetSpec, generate_dataset
from repro.spn.evaluate import evaluate
from repro.spn.learn import learn_spn
from repro.spn.queries import (
    conditional,
    log_likelihood,
    log_marginal,
    marginal,
    most_probable_explanation,
)


class TestMarginals:
    def test_marginal_equals_evaluate(self, mixture_spn):
        assert marginal(mixture_spn, {0: 1}) == pytest.approx(evaluate(mixture_spn, {0: 1}))

    def test_log_marginal(self, mixture_spn):
        assert log_marginal(mixture_spn, {0: 1}) == pytest.approx(
            math.log(marginal(mixture_spn, {0: 1}))
        )

    def test_empty_evidence_is_partition_function(self, mixture_spn):
        assert marginal(mixture_spn) == pytest.approx(1.0)


class TestConditionals:
    def test_bayes_consistency(self, mixture_spn):
        # P(X0=1 | X1=1) = P(X0=1, X1=1) / P(X1=1)
        expected = marginal(mixture_spn, {0: 1, 1: 1}) / marginal(mixture_spn, {1: 1})
        assert conditional(mixture_spn, {0: 1}, {1: 1}) == pytest.approx(expected)

    def test_conditional_distribution_sums_to_one(self, mixture_spn):
        total = sum(conditional(mixture_spn, {0: v}, {1: 0}) for v in (0, 1))
        assert total == pytest.approx(1.0)

    def test_conflicting_query_rejected(self, mixture_spn):
        with pytest.raises(ValueError):
            conditional(mixture_spn, {0: 1}, {0: 0})

    def test_zero_probability_evidence_rejected(self):
        from repro.spn.graph import SPN

        spn = SPN()
        # X0 is deterministically 1, X1 ~ Bernoulli(0.5).
        x0 = spn.add_sum([spn.add_indicator(0, 1)], weights=[1.0])
        x1 = SPN.bernoulli_leaf(spn, 1, 0.5)
        spn.set_root(spn.add_product([x0, x1]))
        with pytest.raises(ZeroDivisionError):
            conditional(spn, {1: 1}, {0: 0})


class TestLogLikelihood:
    def test_average_of_rows(self, mixture_spn):
        data = np.array([[0, 0], [1, 1]])
        expected = 0.5 * (
            math.log(evaluate(mixture_spn, {0: 0, 1: 0}))
            + math.log(evaluate(mixture_spn, {0: 1, 1: 1}))
        )
        assert log_likelihood(mixture_spn, data) == pytest.approx(expected)

    def test_empty_data_rejected(self, mixture_spn):
        with pytest.raises(ValueError):
            log_likelihood(mixture_spn, np.zeros((0, 2), dtype=int))


class TestMpe:
    def test_tiny_spn_mode(self, tiny_spn):
        # Marginals are independent: mode is X0=0 (p=0.7), X1=1 (p=0.8).
        assignment = most_probable_explanation(tiny_spn)
        assert assignment == {0: 0, 1: 1}

    def test_respects_evidence(self, tiny_spn):
        assignment = most_probable_explanation(tiny_spn, {0: 1})
        assert assignment[0] == 1
        assert assignment[1] == 1

    def test_assignment_has_positive_probability(self, small_random_spn):
        assignment = most_probable_explanation(small_random_spn)
        assert evaluate(small_random_spn, assignment) > 0.0

    def test_covers_all_variables(self, small_rat_spn):
        assignment = most_probable_explanation(small_rat_spn)
        assert sorted(assignment) == small_rat_spn.variables()

    def test_mpe_at_least_as_likely_as_random(self, small_rat_spn, rng):
        assignment = most_probable_explanation(small_rat_spn)
        mpe_value = evaluate(small_rat_spn, assignment)
        for _ in range(10):
            random_assignment = {
                v: int(rng.integers(0, 2)) for v in small_rat_spn.variables()
            }
            assert mpe_value >= evaluate(small_rat_spn, random_assignment) - 1e-12

    def test_exact_mpe_beats_exhaustive_search_ties(self, small_rat_spn):
        # Small state space -> the exact path must return the global optimum.
        assignment = most_probable_explanation(small_rat_spn)
        mpe_value = evaluate(small_rat_spn, assignment)
        import itertools

        for combo in itertools.product((0, 1), repeat=len(small_rat_spn.variables())):
            candidate = dict(zip(small_rat_spn.variables(), combo))
            assert mpe_value >= evaluate(small_rat_spn, candidate) - 1e-12

    def test_exact_mpe_survives_linear_domain_underflow(self):
        # Both branches underflow to 0.0 in the linear domain; the exact
        # enumeration must still rank them (it works in the log domain).
        from repro.spn.graph import SPN

        spn = SPN()
        worse = spn.add_product(
            [spn.add_indicator(0, 0)] + [spn.add_parameter(1e-2) for _ in range(500)]
        )
        better = spn.add_product(
            [spn.add_indicator(0, 1)] + [spn.add_parameter(2e-2) for _ in range(500)]
        )
        spn.set_root(spn.add_sum([worse, better], [0.5, 0.5]))
        assert most_probable_explanation(spn) == {0: 1}

    def test_learned_model_mpe_matches_cluster_structure(self):
        data = generate_dataset(DatasetSpec(n_vars=6, n_rows=500, n_clusters=1, noise=0.05, seed=8))
        spn = learn_spn(data)
        assignment = most_probable_explanation(spn)
        # With one latent cause and low noise the mode is all-zeros or all-ones.
        values = set(assignment.values())
        assert len(values) == 1
