"""Tests for marginal, conditional, likelihood and MPE queries.

These exercise the scalar dict-based entry points of
:mod:`repro.spn.queries`, which are deprecated thin wrappers over
single-row :class:`repro.api.InferenceSession` execution — the deprecation
warnings are expected and silenced module-wide.
"""

import math

import numpy as np
import pytest

from repro.spn.datasets import DatasetSpec, generate_dataset
from repro.spn.evaluate import evaluate
from repro.spn.learn import learn_spn
from repro.spn.queries import (
    conditional,
    log_likelihood,
    log_marginal,
    marginal,
    most_probable_explanation,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestMarginals:
    def test_marginal_equals_evaluate(self, mixture_spn):
        assert marginal(mixture_spn, {0: 1}) == pytest.approx(evaluate(mixture_spn, {0: 1}))

    def test_log_marginal(self, mixture_spn):
        assert log_marginal(mixture_spn, {0: 1}) == pytest.approx(
            math.log(marginal(mixture_spn, {0: 1}))
        )

    def test_empty_evidence_is_partition_function(self, mixture_spn):
        assert marginal(mixture_spn) == pytest.approx(1.0)


class TestConditionals:
    def test_bayes_consistency(self, mixture_spn):
        # P(X0=1 | X1=1) = P(X0=1, X1=1) / P(X1=1)
        expected = marginal(mixture_spn, {0: 1, 1: 1}) / marginal(mixture_spn, {1: 1})
        assert conditional(mixture_spn, {0: 1}, {1: 1}) == pytest.approx(expected)

    def test_conditional_distribution_sums_to_one(self, mixture_spn):
        total = sum(conditional(mixture_spn, {0: v}, {1: 0}) for v in (0, 1))
        assert total == pytest.approx(1.0)

    def test_conflicting_query_rejected(self, mixture_spn):
        with pytest.raises(ValueError):
            conditional(mixture_spn, {0: 1}, {0: 0})

    def test_zero_probability_evidence_rejected(self):
        from repro.spn.graph import SPN

        spn = SPN()
        # X0 is deterministically 1, X1 ~ Bernoulli(0.5).
        x0 = spn.add_sum([spn.add_indicator(0, 1)], weights=[1.0])
        x1 = SPN.bernoulli_leaf(spn, 1, 0.5)
        spn.set_root(spn.add_product([x0, x1]))
        with pytest.raises(ZeroDivisionError):
            conditional(spn, {1: 1}, {0: 0})

    def test_deep_network_underflow_no_spurious_zero_division(self):
        # Regression: a deep product chain drives the evidence probability
        # below the smallest positive float64 — the old linear-domain
        # implementation raised a spurious ZeroDivisionError here.  The
        # conditional itself is perfectly well-defined (the chain factor
        # cancels), and the log-domain plan computes it exactly.
        from repro.spn.graph import SPN

        spn = SPN()
        x0 = SPN.bernoulli_leaf(spn, 0, 0.25)
        x1 = SPN.bernoulli_leaf(spn, 1, 0.5)
        deep = [spn.add_parameter(1e-2) for _ in range(400)]  # P ~ 1e-800
        spn.set_root(spn.add_product([x0, x1] + deep))
        assert evaluate(spn, {1: 1}) == 0.0  # the linear domain underflows
        assert conditional(spn, {0: 1}, {1: 1}) == pytest.approx(0.25)

    def test_deep_network_conditional_distribution_still_normalizes(self):
        from repro.spn.generate import RatSpnConfig, generate_rat_spn

        # 1000 variables, all observed but one: the evidence probability
        # underflows linearly, the conditional still sums to one.
        spn = generate_rat_spn(
            RatSpnConfig(n_vars=1000, depth=1000, repetitions=2, n_sums=2, seed=29)
        )
        rng = np.random.default_rng(5)
        evidence = {v: int(rng.integers(0, 2)) for v in spn.variables() if v != 0}
        assert evaluate(spn, evidence) == 0.0  # underflow, not zero probability
        total = sum(conditional(spn, {0: v}, evidence) for v in (0, 1))
        assert total == pytest.approx(1.0)


class TestLogLikelihood:
    def test_average_of_rows(self, mixture_spn):
        data = np.array([[0, 0], [1, 1]])
        expected = 0.5 * (
            math.log(evaluate(mixture_spn, {0: 0, 1: 0}))
            + math.log(evaluate(mixture_spn, {0: 1, 1: 1}))
        )
        assert log_likelihood(mixture_spn, data) == pytest.approx(expected)

    def test_empty_data_rejected(self, mixture_spn):
        with pytest.raises(ValueError):
            log_likelihood(mixture_spn, np.zeros((0, 2), dtype=int))

    def test_empty_list_rejected(self, mixture_spn):
        # Regression: [] must not normalize to one marginalized row and
        # "score" a perfect-looking 0.0.
        with pytest.raises(ValueError, match="at least one row"):
            log_likelihood(mixture_spn, [])

    def test_zero_column_batch_with_rows_still_scores(self, mixture_spn):
        # A (n, 0) batch has rows (all fully marginalized): log Z cancels
        # and the average is 0.0, as before the typed-API rewrite.
        assert log_likelihood(mixture_spn, np.zeros((3, 0), dtype=int)) == pytest.approx(0.0)


class TestMpe:
    def test_tiny_spn_mode(self, tiny_spn):
        # Marginals are independent: mode is X0=0 (p=0.7), X1=1 (p=0.8).
        assignment = most_probable_explanation(tiny_spn)
        assert assignment == {0: 0, 1: 1}

    def test_respects_evidence(self, tiny_spn):
        assignment = most_probable_explanation(tiny_spn, {0: 1})
        assert assignment[0] == 1
        assert assignment[1] == 1

    def test_assignment_has_positive_probability(self, small_random_spn):
        assignment = most_probable_explanation(small_random_spn)
        assert evaluate(small_random_spn, assignment) > 0.0

    def test_covers_all_variables(self, small_rat_spn):
        assignment = most_probable_explanation(small_rat_spn)
        assert sorted(assignment) == small_rat_spn.variables()

    def test_mpe_at_least_as_likely_as_random(self, small_rat_spn, rng):
        assignment = most_probable_explanation(small_rat_spn)
        mpe_value = evaluate(small_rat_spn, assignment)
        for _ in range(10):
            random_assignment = {
                v: int(rng.integers(0, 2)) for v in small_rat_spn.variables()
            }
            assert mpe_value >= evaluate(small_rat_spn, random_assignment) - 1e-12

    def test_exact_mpe_beats_exhaustive_search_ties(self, small_rat_spn):
        # Small state space -> the exact path must return the global optimum.
        assignment = most_probable_explanation(small_rat_spn)
        mpe_value = evaluate(small_rat_spn, assignment)
        import itertools

        for combo in itertools.product((0, 1), repeat=len(small_rat_spn.variables())):
            candidate = dict(zip(small_rat_spn.variables(), combo))
            assert mpe_value >= evaluate(small_rat_spn, candidate) - 1e-12

    def test_exact_mpe_survives_linear_domain_underflow(self):
        # Both branches underflow to 0.0 in the linear domain; the exact
        # enumeration must still rank them (it works in the log domain).
        from repro.spn.graph import SPN

        spn = SPN()
        worse = spn.add_product(
            [spn.add_indicator(0, 0)] + [spn.add_parameter(1e-2) for _ in range(500)]
        )
        better = spn.add_product(
            [spn.add_indicator(0, 1)] + [spn.add_parameter(2e-2) for _ in range(500)]
        )
        spn.set_root(spn.add_sum([worse, better], [0.5, 0.5]))
        assert most_probable_explanation(spn) == {0: 1}

    def test_learned_model_mpe_matches_cluster_structure(self):
        data = generate_dataset(DatasetSpec(n_vars=6, n_rows=500, n_clusters=1, noise=0.05, seed=8))
        spn = learn_spn(data)
        assignment = most_probable_explanation(spn)
        # With one latent cause and low noise the mode is all-zeros or all-ones.
        values = set(assignment.values())
        assert len(values) == 1
