"""Tests for the dynamic-batching inference service (repro.serving)."""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.serving import (
    AsyncInferenceClient,
    BatchingPolicy,
    InferenceClient,
    InferenceServer,
    MicroBatchQueue,
    ModelRouter,
    QueueClosedError,
    QueueFullError,
    ServerClosedError,
    ServingMetrics,
    UnknownModelError,
    WorkItem,
)
from repro.api import (
    MPE,
    Classify,
    Conditional,
    InferenceSession,
    Likelihood,
    Marginal,
    QueryKind,
    deserialize_query,
    serialize_query,
)
from repro.serving.server import KIND_LIKELIHOOD, KIND_LOG_LIKELIHOOD, KIND_MPE
from repro.spn.evaluate import MARGINALIZED, evaluate_batch, evaluate_log_batch, row_evidence
from repro.spn.generate import RatSpnConfig, generate_rat_spn, random_evidence
from repro.spn.queries import mpe_row as most_probable_explanation
from repro.suite.registry import build_benchmark, get_profile

BENCHMARK = "Banknote"
N_VARS = 4


@pytest.fixture(scope="module")
def spn():
    return build_benchmark(BENCHMARK)


@pytest.fixture(scope="module")
def rows():
    return random_evidence(N_VARS, observed_fraction=0.7, seed=3, n_samples=48)


def _item(i=0, request=None):
    return WorkItem(model="m", kind="k", row=i, index=0, request=request)


# --------------------------------------------------------------------------- #
# Queue
# --------------------------------------------------------------------------- #
class TestMicroBatchQueue:
    def test_batch_closes_at_max_size(self):
        q = MicroBatchQueue(BatchingPolicy(max_batch_size=4, max_wait_s=10.0))
        for i in range(9):
            q.put(_item(i))
        assert len(q.get_batch()) == 4  # full batch, no waiting despite max_wait
        assert len(q.get_batch()) == 4

    def test_partial_batch_flushes_after_wait_window(self):
        q = MicroBatchQueue(BatchingPolicy(max_batch_size=64, max_wait_s=0.01))
        q.put(_item())
        start = time.perf_counter()
        batch = q.get_batch()
        elapsed = time.perf_counter() - start
        assert len(batch) == 1
        assert elapsed < 1.0  # waited ~max_wait_s, not forever

    def test_backpressure_blocks_then_raises(self):
        q = MicroBatchQueue(BatchingPolicy(max_queue_depth=2, max_batch_size=2))
        q.put(_item(0))
        q.put(_item(1))
        with pytest.raises(QueueFullError):
            q.put(_item(2), timeout=0.01)

    def test_backpressure_releases_during_batch_window(self):
        # A producer blocked on a full queue must be admitted the moment
        # the consumer pops items — not only after the consumer's batch
        # window (2s here) has run its course.
        q = MicroBatchQueue(
            BatchingPolicy(max_queue_depth=2, max_batch_size=64, max_wait_s=2.0)
        )
        q.put(_item(0))
        q.put(_item(1))
        got = {}
        consumer = threading.Thread(target=lambda: got.setdefault("batch", q.get_batch()))
        consumer.start()
        time.sleep(0.05)  # consumer drained the queue; now inside its window
        start = time.perf_counter()
        q.put(_item(2), timeout=1.5)  # must not raise QueueFullError
        assert time.perf_counter() - start < 1.0
        q.close()
        consumer.join(timeout=5.0)
        assert len(got["batch"]) == 3

    def test_backpressure_releases_when_consumer_drains(self):
        q = MicroBatchQueue(
            BatchingPolicy(max_queue_depth=2, max_batch_size=2, max_wait_s=0.0)
        )
        q.put(_item(0))
        q.put(_item(1))
        threading.Timer(0.02, q.get_batch).start()
        q.put(_item(2), timeout=5.0)  # unblocked by the drain, no error

    def test_put_many_timeout_is_one_deadline(self):
        # The timeout bounds the whole multi-item admission, not each item.
        q = MicroBatchQueue(BatchingPolicy(max_queue_depth=1, max_batch_size=1))
        q.put(_item(0))
        start = time.perf_counter()
        with pytest.raises(QueueFullError):
            q.put_many([_item(1), _item(2), _item(3)], timeout=0.05)
        assert time.perf_counter() - start < 1.0

    def test_put_after_close_raises(self):
        q = MicroBatchQueue(BatchingPolicy())
        q.close()
        with pytest.raises(QueueClosedError):
            q.put(_item())

    def test_close_drains_then_returns_none(self):
        q = MicroBatchQueue(BatchingPolicy(max_batch_size=8))
        q.put(_item(0))
        q.put(_item(1))
        q.close()
        assert len(q.get_batch()) == 2
        assert q.get_batch() is None

    def test_empty_queue_flush_on_close(self):
        # A blocked consumer wakes promptly when an *empty* queue closes.
        q = MicroBatchQueue(BatchingPolicy(max_wait_s=30.0))
        got = {}

        def consume():
            got["batch"] = q.get_batch()

        worker = threading.Thread(target=consume)
        worker.start()
        time.sleep(0.02)
        q.close()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert got["batch"] is None

    def test_get_batch_timeout_returns_empty_list(self):
        q = MicroBatchQueue(BatchingPolicy())
        assert q.get_batch(timeout=0.01) == []

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait_s=-1.0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_queue_depth=0)


# --------------------------------------------------------------------------- #
# Server: correctness (the bit-identical contract)
# --------------------------------------------------------------------------- #
class TestServerCorrectness:
    def test_served_likelihoods_bit_identical_to_direct(self, spn, rows):
        with InferenceServer(
            models=[BENCHMARK], policy=BatchingPolicy(max_batch_size=8, max_wait_s=0.001)
        ) as server:
            futures = [
                server.submit(BENCHMARK, rows[i], kind=KIND_LIKELIHOOD)
                for i in range(len(rows))
            ]
            served = np.array([f.result(timeout=30)[0] for f in futures])
        direct = evaluate_batch(spn, rows, engine="vectorized")
        assert np.array_equal(served, direct)  # exact, not allclose

    def test_served_log_likelihoods_bit_identical_to_direct(self, spn, rows):
        with InferenceServer(models=[BENCHMARK]) as server:
            served = server.query(BENCHMARK, rows, kind=KIND_LOG_LIKELIHOOD)
        assert np.array_equal(served, evaluate_log_batch(spn, rows, engine="vectorized"))

    def test_batch_composition_does_not_change_results(self, spn, rows):
        # The same row served alone and served inside a crowded batch must
        # produce the identical value: batching is invisible to correctness.
        lonely = InferenceServer(models=[BENCHMARK], policy=BatchingPolicy(max_batch_size=1))
        crowded = InferenceServer(
            models=[BENCHMARK], policy=BatchingPolicy(max_batch_size=48, max_wait_s=0.05)
        )
        with lonely, crowded:
            alone = lonely.query(BENCHMARK, rows[7], kind=KIND_LIKELIHOOD)[0]
            futures = [
                crowded.submit(BENCHMARK, rows[i], kind=KIND_LIKELIHOOD)
                for i in range(len(rows))
            ]
            together = futures[7].result(timeout=30)[0]
        assert alone == together

    def test_mpe_matches_direct_query(self, spn, rows):
        with InferenceServer(models=[BENCHMARK]) as server:
            served = server.query(BENCHMARK, rows[:4], kind=KIND_MPE)
        expected = [
            most_probable_explanation(spn, row_evidence(row)) for row in rows[:4]
        ]
        assert served == expected

    def test_mapping_evidence_matches_row_evidence(self, spn):
        evidence = {0: 1, 2: 0}
        row = np.full((1, N_VARS), MARGINALIZED, dtype=np.int64)
        row[0, 0], row[0, 2] = 1, 0
        with InferenceServer(models=[BENCHMARK]) as server:
            from_mapping = server.query(BENCHMARK, evidence, kind=KIND_LIKELIHOOD)[0]
        assert from_mapping == evaluate_batch(spn, row, engine="vectorized")[0]

    def test_python_engine_serving(self, spn, rows):
        with InferenceServer(models=[BENCHMARK], engine="python") as server:
            served = server.query(BENCHMARK, rows[:8], kind=KIND_LIKELIHOOD)
        assert np.array_equal(served, evaluate_batch(spn, rows[:8], engine="python"))

    def test_short_and_long_rows_normalize_exactly(self, spn):
        short = np.array([1, 0], dtype=np.int64)  # missing vars marginalize
        # Unobserved surplus columns trim exactly; *observed* ones are
        # rejected at admission (trimming them would silently change the
        # query, and served MPE completions would diverge from offline).
        long = np.array([1, 0, -1, -1, MARGINALIZED, MARGINALIZED], dtype=np.int64)
        observed_surplus = np.array([1, 0, -1, -1, 5, 7], dtype=np.int64)
        full = np.array([[1, 0, MARGINALIZED, MARGINALIZED]], dtype=np.int64)
        expected = evaluate_batch(spn, full, engine="vectorized")[0]
        with InferenceServer(models=[BENCHMARK]) as server:
            assert server.query(BENCHMARK, short, kind=KIND_LIKELIHOOD)[0] == expected
            assert server.query(BENCHMARK, long, kind=KIND_LIKELIHOOD)[0] == expected
            with pytest.raises(ValueError, match="out of range"):
                server.submit(BENCHMARK, observed_surplus, kind=KIND_LIKELIHOOD)

    def test_empty_batch_resolves_immediately(self, spn):
        # A zero-row request has nothing to execute; it must resolve to an
        # empty result (like evaluate_batch), not hang forever.
        empty = np.zeros((0, N_VARS), dtype=np.int64)
        with InferenceServer(models=[BENCHMARK]) as server:
            result = server.submit(BENCHMARK, empty, kind=KIND_LIKELIHOOD).result(
                timeout=5
            )
            assert result.shape == (0,)
            mpe = server.submit(BENCHMARK, empty, kind=KIND_MPE).result(timeout=5)
            assert mpe == []
        assert evaluate_batch(spn, empty, engine="vectorized").shape == (0,)

    def test_cancelled_future_does_not_kill_worker(self, spn, rows):
        # A caller giving up on a queued request (asyncio timeouts cancel
        # the wrapped future) must not crash the worker delivering into it;
        # later requests keep being served.
        policy = BatchingPolicy(max_batch_size=64, max_wait_s=0.1)
        with InferenceServer(models=[BENCHMARK], policy=policy) as server:
            abandoned = server.submit(BENCHMARK, rows[0], kind=KIND_LIKELIHOOD)
            assert abandoned.cancel()  # still queued: cancellation wins
            value = server.query(BENCHMARK, rows[1], kind=KIND_LIKELIHOOD)[0]
            assert value == evaluate_batch(spn, rows[1:2], engine="vectorized")[0]
            # The worker survived; a fresh request after the batch window too.
            again = server.query(BENCHMARK, rows[2], kind=KIND_LIKELIHOOD)[0]
            assert again == evaluate_batch(spn, rows[2:3], engine="vectorized")[0]
            # The abandoned row was skipped, not computed-and-counted.
            assert server.metrics.snapshot()["rows"] == 2

    def test_request_completion_is_claimed_once(self):
        # fail/deliver/fail racing on one request must resolve the future
        # exactly once — the loser backs off instead of raising
        # InvalidStateError in a worker thread.
        from repro.serving.server import _PendingRequest

        request = _PendingRequest("m", KIND_LIKELIHOOD, 1, ServingMetrics())
        request.fail(RuntimeError("first"))
        request.fail(RuntimeError("second"))  # no InvalidStateError
        request.deliver(0, 1.0)  # ignored: request already failed
        with pytest.raises(RuntimeError, match="first"):
            request.future.result(timeout=1)

        delivered = _PendingRequest("m", KIND_LIKELIHOOD, 1, ServingMetrics())
        delivered.deliver(0, 2.5)
        delivered.fail(RuntimeError("late"))  # ignored: already resolved
        assert delivered.future.result(timeout=1)[0] == 2.5

    def test_submitted_rows_do_not_alias_caller_buffer(self, spn, rows):
        # A streaming client may reuse its read buffer immediately after
        # submit(); the queued rows must be a snapshot, not a view.
        policy = BatchingPolicy(max_batch_size=64, max_wait_s=0.2)
        buffer = np.array(rows[0], dtype=np.int64)
        expected = evaluate_batch(spn, buffer[None, :], engine="vectorized")[0]
        with InferenceServer(models=[BENCHMARK], policy=policy) as server:
            future = server.submit(BENCHMARK, buffer, kind=KIND_LIKELIHOOD)
            buffer[:] = 1 - np.maximum(buffer, 0)  # reuse before the window closes
            assert future.result(timeout=30)[0] == expected

    def test_explicit_spn_model(self):
        custom = generate_rat_spn(
            RatSpnConfig(n_vars=6, depth=6, repetitions=2, n_sums=2, seed=23)
        )
        data = random_evidence(6, observed_fraction=0.5, seed=5, n_samples=10)
        with InferenceServer(models=[("custom", custom)]) as server:
            served = server.query("custom", data, kind=KIND_LIKELIHOOD)
        assert np.array_equal(served, evaluate_batch(custom, data, engine="vectorized"))


# --------------------------------------------------------------------------- #
# Server: typed queries (all five kinds servable, bit-identical to offline)
# --------------------------------------------------------------------------- #
class TestTypedQueryServing:
    def conditional(self, rows, var=0, value=1):
        evidence = np.array(rows, copy=True)
        evidence[:, var] = MARGINALIZED
        query = np.full_like(evidence, MARGINALIZED)
        query[:, var] = value
        return Conditional(evidence=evidence, query=query)

    def test_served_conditional_bit_identical_to_offline_session(self, spn, rows):
        cond = self.conditional(rows)
        offline = InferenceSession(spn).run(cond)
        with InferenceServer(models=[BENCHMARK]) as server:
            served = server.submit(BENCHMARK, cond).result(timeout=30)
        assert np.array_equal(served, offline)  # exact, not allclose

    def test_served_marginal_bit_identical_to_offline_session(self, spn, rows):
        query = Marginal(rows, log=True, normalize=True)
        offline = InferenceSession(spn).run(query)
        with InferenceServer(models=[BENCHMARK]) as server:
            served = server.submit(BENCHMARK, query).result(timeout=30)
        assert np.array_equal(served, offline)

    def test_every_query_kind_served(self, spn, rows):
        session = InferenceSession(spn)
        queries = [
            Likelihood(rows),
            Marginal(rows, log=True),
            self.conditional(rows),
            MPE(rows[:3]),
        ]
        with InferenceServer(models=[BENCHMARK]) as server:
            for query in queries:
                served = server.submit(BENCHMARK, query).result(timeout=30)
                offline = session.run(query)
                if query.kind == QueryKind.MPE:
                    assert served == offline
                else:
                    assert np.array_equal(served, offline)
            # The legacy evidence+kind path still covers its three kinds.
            legacy = server.query(BENCHMARK, rows, kind="log_likelihood")
        assert np.array_equal(legacy, evaluate_log_batch(spn, rows, engine="vectorized"))

    def test_conditional_rows_scatter_across_micro_batches(self, spn, rows):
        # One conditional request larger than max_batch_size spans several
        # micro-batches and still reassembles bit-identically.
        cond = self.conditional(rows)
        offline = InferenceSession(spn).run(cond)
        policy = BatchingPolicy(max_batch_size=8, max_wait_s=0.001)
        with InferenceServer(models=[BENCHMARK], policy=policy) as server:
            served = server.submit(BENCHMARK, cond).result(timeout=30)
            assert server.metrics.n_batches >= len(rows) // 8
        assert np.array_equal(served, offline)

    def test_co_batched_conditionals_from_many_clients_exact(self, spn, rows):
        cond = self.conditional(rows)
        offline = InferenceSession(spn).run(cond)
        policy = BatchingPolicy(max_batch_size=64, max_wait_s=0.05)
        with InferenceServer(models=[BENCHMARK], policy=policy) as server:
            futures = [
                server.submit(
                    BENCHMARK,
                    Conditional(evidence=cond.evidence[i], query=cond.query[i]),
                )
                for i in range(len(rows))
            ]
            served = np.array([f.result(timeout=30)[0] for f in futures])
        assert np.array_equal(served, offline)

    def test_marginal_flag_variants_never_co_execute(self, spn, rows):
        # normalize=True and normalize=False rows must land in different
        # execution groups (the group key carries the flags); both answers
        # stay exact.
        session = InferenceSession(spn)
        policy = BatchingPolicy(max_batch_size=64, max_wait_s=0.05)
        with InferenceServer(models=[BENCHMARK], policy=policy) as server:
            plain = server.submit(BENCHMARK, Marginal(rows[:8], log=True))
            normalized = server.submit(
                BENCHMARK, Marginal(rows[:8], log=True, normalize=True)
            )
            got_plain = plain.result(timeout=30)
            got_normalized = normalized.result(timeout=30)
            assert server.metrics.snapshot()["batches"] == 2  # two groups
        assert np.array_equal(got_plain, session.run(Marginal(rows[:8], log=True)))
        assert np.array_equal(
            got_normalized, session.run(Marginal(rows[:8], log=True, normalize=True))
        )

    def test_serialized_payload_submission_round_trips(self, spn, rows):
        import json

        cond = self.conditional(rows)
        payload = json.loads(json.dumps(serialize_query(cond)))
        offline = InferenceSession(spn).run(cond)
        with InferenceServer(models=[BENCHMARK]) as server:
            served = server.submit(BENCHMARK, payload).result(timeout=30)
        assert np.array_equal(served, offline)
        assert np.array_equal(
            InferenceSession(spn).run(deserialize_query(payload)), offline
        )

    def test_empty_batch_payload_still_resolves_empty(self, rows):
        # Regression: a zero-row query submitted as its serialized payload
        # must resolve to an empty result, not a one-row marginalized one.
        import json

        empty = np.zeros((0, N_VARS), dtype=np.int64)
        payload = json.loads(json.dumps(serialize_query(Likelihood(empty))))
        with InferenceServer(models=[BENCHMARK]) as server:
            direct = server.submit(BENCHMARK, Likelihood(empty)).result(timeout=5)
            served = server.submit(BENCHMARK, payload).result(timeout=5)
        assert direct.shape == (0,)
        assert served.shape == (0,)

    def test_kind_mismatch_with_typed_query_rejected(self, rows):
        # A verb must not silently serve values of a different kind than
        # its name: an explicit kind that disagrees with the submitted
        # query object fails at admission.
        from repro.api import LogLikelihood

        with InferenceServer(models=[BENCHMARK]) as server:
            client = InferenceClient(server, model=BENCHMARK)
            with pytest.raises(ValueError, match="disagrees with"):
                client.likelihood(LogLikelihood(rows[:2]))
            with pytest.raises(ValueError, match="disagrees with"):
                server.submit(BENCHMARK, Likelihood(rows[:2]), kind="mpe")
            # No explicit kind: the object's own kind executes — through
            # the blocking convenience wrapper too.
            served = server.submit(BENCHMARK, LogLikelihood(rows[:2])).result(30)
            blocking = server.query(BENCHMARK, LogLikelihood(rows[:2]))
            via_query_verb = server.query(BENCHMARK, Likelihood(rows[:2]))
            spn = build_benchmark(BENCHMARK)
            assert np.array_equal(
                served, evaluate_log_batch(spn, rows[:2], engine="vectorized")
            )
            assert np.array_equal(blocking, served)
            assert np.array_equal(
                via_query_verb, evaluate_batch(spn, rows[:2], engine="vectorized")
            )

    def test_plain_conditional_kind_requires_typed_object(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="typed"):
                server.submit(BENCHMARK, {0: 1}, kind="conditional")

    def test_typed_query_encoded_to_model_width(self, spn):
        # A typed query narrower/wider than the model normalizes exactly;
        # observed entries beyond the model's width are rejected on every
        # submission form (typed queries included), not silently trimmed.
        with InferenceServer(models=[BENCHMARK]) as server:
            narrow = server.submit(BENCHMARK, Likelihood({0: 1})).result(timeout=30)
            wide = server.submit(
                BENCHMARK, Likelihood(np.array([[1, -1, -1, -1, -1, -1]]))
            ).result(timeout=30)
            with pytest.raises(ValueError, match="out of range"):
                server.submit(BENCHMARK, Likelihood(np.array([[1, -1, -1, -1, 7, 9]])))
            with pytest.raises(ValueError, match="out of range"):
                server.submit(BENCHMARK, Marginal({N_VARS + 5: 1}))
            with pytest.raises(ValueError, match="out of range"):
                server.submit(
                    BENCHMARK, Conditional(query={N_VARS + 5: 1}, evidence={0: 1})
                )
        row = np.full((1, N_VARS), MARGINALIZED, dtype=np.int64)
        row[0, 0] = 1
        expected = evaluate_batch(spn, row, engine="vectorized")[0]
        assert narrow[0] == expected
        assert wide[0] == expected

    def test_served_mpe_matches_offline_for_wide_rows(self, spn):
        # Admitted wide rows (unobserved surplus) must produce the very
        # same MPE completions offline and served.
        wide = np.full((2, N_VARS + 3), MARGINALIZED, dtype=np.int64)
        wide[:, 0] = 1
        query = MPE(wide)
        offline = InferenceSession(spn).run(query)
        with InferenceServer(models=[BENCHMARK]) as server:
            served = server.submit(BENCHMARK, query).result(timeout=30)
        assert served == offline

    def test_conditional_verb_unwraps_symmetrically(self, spn):
        # A 2-D batch on *either* side keeps the vector shape; scalar only
        # when both assignments are scalar-formed.
        evidence_row = np.array([[MARGINALIZED, 0, MARGINALIZED, MARGINALIZED]])
        query_row = np.array([[1, MARGINALIZED, MARGINALIZED, MARGINALIZED]])
        with InferenceServer(models=[BENCHMARK]) as server:
            client = InferenceClient(server, model=BENCHMARK)
            scalar = client.conditional({0: 1}, {1: 0})
            from_2d_evidence = client.conditional({0: 1}, evidence_row)
            from_2d_query = client.conditional(query_row, {1: 0})
        assert isinstance(scalar, float)
        assert from_2d_evidence.shape == (1,)
        assert from_2d_query.shape == (1,)
        assert from_2d_evidence[0] == scalar
        assert from_2d_query[0] == scalar

    def test_client_verbs_for_marginal_and_conditional(self, spn):
        session = InferenceSession(spn)
        with InferenceServer(models=[BENCHMARK]) as server:
            client = InferenceClient(server, model=BENCHMARK)
            prob = client.conditional({0: 1}, {1: 0})
            assert prob == session.run(Conditional(evidence={1: 0}, query={0: 1}))[0]
            log_marg = client.marginal({0: 1}, log=True, normalize=True)
            assert (
                log_marg
                == session.run(Marginal({0: 1}, log=True, normalize=True))[0]
            )

    def test_async_client_conditional_verb(self, spn, rows):
        session = InferenceSession(spn)
        cond = self.conditional(rows[:8])

        async def run():
            server = InferenceServer(models=[BENCHMARK]).start()
            client = AsyncInferenceClient(server, model=BENCHMARK)
            values = await client.conditional(cond.query, cond.evidence)
            server.stop()
            return values

        values = asyncio.run(run())
        assert np.array_equal(values, session.run(cond))

    def test_queue_kind_is_group_key(self, rows):
        # Unknown-kind strings fail at admission, before any WorkItem exists.
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="unknown query kind"):
                server.submit(BENCHMARK, rows[0], kind=object())


# --------------------------------------------------------------------------- #
# Analysis kinds: admission-time validation.  Malformed submissions of the
# new kinds must fail synchronously in the submitting thread — never inside
# a worker where the error would surface as a failed Future (or worse, a
# wedged batch).
# --------------------------------------------------------------------------- #
class TestAnalysisKindAdmission:
    def _classify_rows(self, rows, target):
        evidence = np.array(rows[:4], copy=True)
        evidence[:, target] = MARGINALIZED
        return evidence

    def test_unknown_kind_payload_fails_synchronously(self):
        # A payload with an unrecognized "kind" discriminator raises at
        # submit — no Future is created and no worker sees the request.
        payload = {
            "kind": "gradient",
            "evidence": [[1, -1, -1, -1]],
            "shape": [1, N_VARS],
        }
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="unknown query kind"):
                server.submit(BENCHMARK, payload)
            # The pool is untouched: a follow-up query still serves.
            assert server.query(BENCHMARK, {0: 1}, kind="likelihood").shape == (1,)

    def test_malformed_classify_payload_fails_at_admission(self, rows):
        # A classify payload that lost its target is rejected when the
        # query object is rebuilt at admission, not during execution.
        import json

        query = Classify(evidence=self._classify_rows(rows, 0), target=0)
        payload = json.loads(json.dumps(serialize_query(query)))
        del payload["target"]
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="requires a target"):
                server.submit(BENCHMARK, payload)

    def test_plain_evidence_with_classify_kind_fails_at_admission(self):
        # kind="classify" on plain evidence carries no target variable.
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="requires a target"):
                server.submit(BENCHMARK, {0: 1}, kind="classify")

    def test_classify_target_in_evidence_raises_at_construction(self, rows):
        evidence = np.array(rows[:4], copy=True)
        evidence[:, 2] = 1  # the would-be target is observed everywhere
        with pytest.raises(ValueError, match="observed in evidence row"):
            Classify(evidence=evidence, target=2)

    def test_conflicting_classify_payload_fails_at_admission(self, rows):
        # The payload path rebuilds through the same constructor, so a
        # hand-corrupted payload whose evidence pins the target cannot
        # reach a worker either.
        import json

        query = Classify(evidence=self._classify_rows(rows, 2), target=2)
        payload = json.loads(json.dumps(serialize_query(query)))
        observed = np.array(self._classify_rows(rows, 2), copy=True)
        observed[:, 2] = 0
        payload["evidence"] = observed.tolist()
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="observed in evidence row"):
                server.submit(BENCHMARK, payload)

    def test_invalid_variables_payload_fails_at_admission(self):
        # Duplicate variable selections are a construction-time error for
        # every analysis kind; the serving layer inherits it synchronously.
        payload = {
            "kind": "entropy",
            "evidence": [[-1, -1, -1, -1]],
            "shape": [1, N_VARS],
            "variables": [1, 1],
        }
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="duplicates"):
                server.submit(BENCHMARK, payload)


# --------------------------------------------------------------------------- #
# Server: edge cases and lifecycle
# --------------------------------------------------------------------------- #
class TestServerLifecycle:
    def test_oversized_request_spans_micro_batches(self, spn, rows):
        # One request larger than max_batch_size completes correctly by
        # spanning several micro-batches (and larger than the queue depth,
        # exercising incremental admission under backpressure).
        policy = BatchingPolicy(max_batch_size=8, max_queue_depth=16, max_wait_s=0.001)
        with InferenceServer(models=[BENCHMARK], policy=policy) as server:
            served = server.query(BENCHMARK, rows, kind=KIND_LIKELIHOOD)
            assert server.metrics.n_batches >= len(rows) // 8
        assert np.array_equal(served, evaluate_batch(spn, rows, engine="vectorized"))

    def test_shutdown_drains_in_flight_requests(self, spn, rows):
        server = InferenceServer(
            models=[BENCHMARK], policy=BatchingPolicy(max_batch_size=4, max_wait_s=0.01)
        ).start()
        futures = [
            server.submit(BENCHMARK, rows[i], kind=KIND_LIKELIHOOD)
            for i in range(len(rows))
        ]
        server.stop()  # drain=True: every admitted request still completes
        served = np.array([f.result(timeout=30)[0] for f in futures])
        assert np.array_equal(served, evaluate_batch(spn, rows, engine="vectorized"))

    def test_shutdown_without_drain_fails_queued_requests(self, rows):
        # The batch window (10s) and size cap (64) guarantee the worker is
        # still collecting when stop(drain=False) lands, so every queued
        # request is failed fast instead of executed.
        policy = BatchingPolicy(max_batch_size=64, max_wait_s=10.0)
        server = InferenceServer(models=[BENCHMARK], policy=policy).start()
        futures = [server.submit(BENCHMARK, rows[i]) for i in range(8)]
        server.stop(drain=False)
        for future in futures:
            with pytest.raises(ServerClosedError):
                future.result(timeout=30)

    def test_submit_after_stop_raises(self):
        server = InferenceServer(models=[BENCHMARK]).start()
        server.stop()
        with pytest.raises(ServerClosedError):
            server.submit(BENCHMARK, {0: 1})

    def test_submit_before_start_raises(self):
        server = InferenceServer(models=[BENCHMARK])
        with pytest.raises(ServerClosedError):
            server.submit(BENCHMARK, {0: 1})

    def test_unknown_model_raises(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(UnknownModelError, match="unknown model 'Netflix'"):
                server.submit("Netflix", {0: 1})

    def test_unknown_kind_raises(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="unknown query kind"):
                server.submit(BENCHMARK, {0: 1}, kind="gradient")

    def test_duplicate_model_rejected(self):
        server = InferenceServer(models=[BENCHMARK])
        with pytest.raises(ValueError, match="already hosted"):
            server.add_model(BENCHMARK)

    def test_out_of_range_mapping_variable_rejected(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="out of range"):
                server.submit(BENCHMARK, {N_VARS + 3: 1})

    def test_fractional_mapping_value_rejected(self, spn):
        # {0: 0.7} must raise like array evidence does — not truncate to an
        # observed 0 (which would diverge from direct evaluation).
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="integral"):
                server.submit(BENCHMARK, {0: 0.7})
            with pytest.raises(ValueError, match="integral"):
                server.submit(BENCHMARK, {0.5: 1})
            with pytest.raises(ValueError, match="int64 range"):
                server.submit(BENCHMARK, {0: 1e19})
            # Integral floats coerce exactly, mirroring as_evidence_array.
            value = server.query(BENCHMARK, {0: 1.0}, kind=KIND_LIKELIHOOD)[0]
        row = np.full((1, N_VARS), MARGINALIZED, dtype=np.int64)
        row[0, 0] = 1
        assert value == evaluate_batch(spn, row, engine="vectorized")[0]

    def test_metrics_visible_once_result_is(self, rows):
        # snapshot() immediately after a blocking query must include it.
        with InferenceServer(models=[BENCHMARK]) as server:
            for i in range(4):
                server.query(BENCHMARK, rows[i], kind=KIND_LIKELIHOOD)
                assert server.metrics.snapshot()["requests"] == i + 1

    def test_float_evidence_validation_applies_to_serving(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="integral"):
                server.submit(BENCHMARK, np.array([0.7, 1.0, -1.0, 0.0]))
            # Integral-valued floats coerce exactly.
            value = server.query(
                BENCHMARK, np.array([1.0, 0.0, -1.0, -1.0]), kind=KIND_LIKELIHOOD
            )[0]
        spn = build_benchmark(BENCHMARK)
        row = np.array([[1, 0, MARGINALIZED, MARGINALIZED]])
        assert value == evaluate_batch(spn, row, engine="vectorized")[0]

    def test_served_model_metadata(self):
        server = InferenceServer(models=[BENCHMARK])
        served = server.model(BENCHMARK)
        assert served.n_vars == get_profile(BENCHMARK).model_vars
        assert served.tape is not None  # warm start pinned the compiled tape
        assert server.models() == [BENCHMARK]

    def test_multiple_workers_still_exact(self, spn, rows):
        policy = BatchingPolicy(max_batch_size=4, max_wait_s=0.0)
        with InferenceServer(models=[BENCHMARK], policy=policy, n_workers=4) as server:
            futures = [
                server.submit(BENCHMARK, rows[i], kind=KIND_LIKELIHOOD)
                for i in range(len(rows))
            ]
            served = np.array([f.result(timeout=30)[0] for f in futures])
        assert np.array_equal(served, evaluate_batch(spn, rows, engine="vectorized"))


# --------------------------------------------------------------------------- #
# Clients and routing
# --------------------------------------------------------------------------- #
class TestClients:
    def test_sync_client_scalar_queries(self, spn):
        with InferenceServer(models=[BENCHMARK]) as server:
            client = InferenceClient(server, model=BENCHMARK)
            evidence = {0: 1, 1: 0}
            assert client.likelihood(evidence) == evaluate_batch(
                spn, np.array([[1, 0, -1, -1]]), engine="vectorized"
            )[0]
            assert isinstance(client.log_likelihood(evidence), float)
            assert client.mpe(evidence)[0] == 1

    def test_client_plumbs_backpressure_timeout(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            seen = {}
            original = server.submit

            def capture(model, evidence, kind="log_likelihood", timeout=None):
                seen["timeout"] = timeout
                return original(model, evidence, kind=kind, timeout=timeout)

            server.submit = capture
            client = InferenceClient(server, model=BENCHMARK)
            assert isinstance(client.query({0: 1}, timeout=2.5), float)
            assert seen["timeout"] == 2.5

    def test_mixed_kind_batch_delivers_per_group(self, rows):
        # One micro-batch holding two query kinds executes as two engine
        # calls (two recorded groups), so a fast group is never blocked on
        # a slow one sharing the batch.
        policy = BatchingPolicy(max_batch_size=64, max_wait_s=0.5)
        with InferenceServer(models=[BENCHMARK], policy=policy) as server:
            futures = [
                server.submit(BENCHMARK, rows[0], kind=KIND_LIKELIHOOD),
                server.submit(BENCHMARK, rows[1], kind=KIND_MPE),
            ]
            for future in futures:
                future.result(timeout=30)
            assert server.metrics.snapshot()["batches"] == 2

    def test_client_without_model_requires_one(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            client = InferenceClient(server)
            with pytest.raises(ValueError, match="no model"):
                client.query({0: 1})
            assert isinstance(client.query({0: 1}, model=BENCHMARK), float)

    def test_async_client_concurrent_queries(self, spn, rows):
        async def run():
            # A generous wait window so the 16 concurrent submits co-batch
            # even on a slow, loaded CI runner.
            server = InferenceServer(
                models=[BENCHMARK],
                policy=BatchingPolicy(max_batch_size=16, max_wait_s=0.25),
            ).start()
            client = AsyncInferenceClient(server, model=BENCHMARK)
            values = await asyncio.gather(
                *[client.likelihood(rows[i]) for i in range(16)]
            )
            server.stop()
            return np.array(values), server.metrics.snapshot()

        values, snap = asyncio.run(run())
        assert np.array_equal(values, evaluate_batch(spn, rows[:16], engine="vectorized"))
        # Concurrent awaits actually co-batched (fewer batches than requests).
        assert snap["batches"] < snap["requests"]

    def test_router_routes_by_suite_name(self):
        router = ModelRouter.for_suite(["Banknote", "EEG-eye"])
        try:
            assert router.models() == ["Banknote", "EEG-eye"]
            assert len(router.servers()) == 1
            value = router.query("EEG-eye", {0: 1}, kind=KIND_LIKELIHOOD)
            spn = build_benchmark("EEG-eye")
            row = np.full((1, 14), MARGINALIZED, dtype=np.int64)
            row[0, 0] = 1
            assert value == evaluate_batch(spn, row, engine="vectorized")[0]
        finally:
            router.stop()

    def test_router_default_and_unknown(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            router = ModelRouter(routes={BENCHMARK: server})
            assert router.route(BENCHMARK) is server
            with pytest.raises(UnknownModelError, match="no route"):
                router.route("Netflix")
            fallback = ModelRouter(default=server)
            assert fallback.route("anything") is server

    def test_router_shards_models_across_servers(self, spn):
        a = InferenceServer(models=["Banknote"]).start()
        b = InferenceServer(models=["EEG-eye"]).start()
        router = ModelRouter(routes={"Banknote": a, "EEG-eye": b})
        try:
            assert router.route("Banknote") is a
            assert router.route("EEG-eye") is b
            assert len(router.servers()) == 2
            assert isinstance(router.query("Banknote", {0: 1}), float)
        finally:
            router.stop()


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_quantiles_and_counters(self):
        metrics = ServingMetrics()
        for latency in (0.010, 0.020, 0.030, 0.040):
            metrics.record_request(latency)
        metrics.record_batch(n_rows=3, capacity=4)
        metrics.record_batch(n_rows=1, capacity=4)
        snap = metrics.snapshot()
        assert snap["requests"] == 4
        assert snap["batches"] == 2
        assert snap["mean_batch_size"] == 2.0
        assert snap["mean_batch_occupancy"] == 0.5
        assert snap["latency_p50_ms"] == pytest.approx(25.0)
        assert metrics.latency_quantile(0.0) == pytest.approx(0.010)

    def test_empty_metrics_are_none_and_zero(self):
        metrics = ServingMetrics()
        snap = metrics.snapshot()
        assert snap["requests"] == 0
        assert snap["throughput_rps"] == 0.0
        # Empty-window quantiles are None (JSON-safe), never NaN; the
        # numeric accessor keeps the NaN convention for float arithmetic.
        assert snap["latency_p50_ms"] is None
        assert snap["latency_p99_ms"] is None
        assert np.isnan(metrics.latency_quantile(0.5))

    def test_snapshot_round_trips_through_json(self, rows):
        # Regression: an empty snapshot used to hold NaN quantiles, which
        # json.dumps emits as the invalid-JSON token `NaN`.
        empty = ServingMetrics().snapshot()
        assert json.loads(json.dumps(empty)) == empty
        with InferenceServer(models=[BENCHMARK]) as server:
            server.query(BENCHMARK, rows[:4], kind=KIND_LIKELIHOOD)
            snap = server.metrics.snapshot()
        restored = json.loads(json.dumps(snap))
        assert restored["requests"] == 1
        assert restored["latency_p50_ms"] > 0.0

    def test_failed_execution_not_counted_as_throughput(self, rows, monkeypatch):
        with InferenceServer(models=[BENCHMARK]) as server:
            monkeypatch.setattr(
                server,
                "_execute",
                lambda *a, **k: (_ for _ in ()).throw(RuntimeError("engine down")),
            )
            future = server.submit(BENCHMARK, rows[0], kind=KIND_LIKELIHOOD)
            with pytest.raises(RuntimeError, match="engine down"):
                future.result(timeout=30)
            snap = server.metrics.snapshot()
        assert snap["rows"] == 0  # failed rows never inflate throughput
        assert snap["requests"] == 0

    def test_server_records_traffic(self, rows):
        with InferenceServer(models=[BENCHMARK]) as server:
            server.query(BENCHMARK, rows[:8], kind=KIND_LIKELIHOOD)
            snap = server.metrics.snapshot()
        assert snap["rows"] == 8
        assert snap["requests"] == 1
        assert snap["batches"] >= 1


# --------------------------------------------------------------------------- #
# Stats endpoint (the serving API's control plane)
# --------------------------------------------------------------------------- #
class TestStatsEndpoint:
    def test_client_server_stats_against_live_server(self, rows):
        with InferenceServer(models=[BENCHMARK]) as server:
            client = InferenceClient(server, model=BENCHMARK)
            client.likelihood(rows[0])
            stats = client.server_stats()
            assert stats["models"] == {BENCHMARK: "0"}
            assert stats["running"] is True
            assert stats["queue_depth"] == 0
            assert stats["metrics"]["requests"] >= 1
            assert stats["metrics"]["latency_p50_ms"] > 0.0
            registry = stats["registry"]
            assert registry["serving_requests_total"] >= 1.0
            assert registry["serving_queue_wait_seconds"]["count"] >= 1
            # The whole payload is JSON-clean (the wire contract).
            assert json.loads(json.dumps(stats)) == stats

    def test_async_client_server_stats(self, rows):
        async def scenario():
            with InferenceServer(models=[BENCHMARK]) as server:
                client = AsyncInferenceClient(server, model=BENCHMARK)
                await client.log_likelihood(rows[0])
                return await client.server_stats()

        stats = asyncio.run(scenario())
        assert stats["metrics"]["requests"] >= 1
        assert stats["models"] == {BENCHMARK: "0"}

    def test_unknown_control_op_is_rejected(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(ValueError, match="unknown control op"):
                server.control("reboot")
