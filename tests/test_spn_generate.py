"""Tests for the SPN structure generators and evidence sampling."""

import numpy as np
import pytest

from repro.spn.evaluate import evaluate, partition_function
from repro.spn.generate import (
    GeneratorConfig,
    RatSpnConfig,
    generate_rat_spn,
    generate_spn,
    random_evidence,
)


class TestGeneratorConfig:
    def test_invalid_n_vars(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_vars=0)

    def test_invalid_reuse_probability(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_vars=4, reuse_probability=1.5)

    def test_invalid_product_parts(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_vars=4, product_parts=1)


class TestRecursiveGenerator:
    def test_deterministic(self):
        a = generate_spn(GeneratorConfig(n_vars=6, seed=5))
        b = generate_spn(GeneratorConfig(n_vars=6, seed=5))
        assert len(a) == len(b)
        assert evaluate(a, {0: 1, 1: 0}) == pytest.approx(evaluate(b, {0: 1, 1: 0}))

    def test_different_seeds_differ(self):
        a = generate_spn(GeneratorConfig(n_vars=6, seed=1))
        b = generate_spn(GeneratorConfig(n_vars=6, seed=2))
        assert len(a) != len(b) or evaluate(a, {0: 1}) != pytest.approx(evaluate(b, {0: 1}))

    def test_covers_all_variables(self):
        spn = generate_spn(GeneratorConfig(n_vars=9, seed=3))
        assert spn.variables() == list(range(9))

    def test_normalized(self):
        spn = generate_spn(GeneratorConfig(n_vars=7, seed=11))
        assert partition_function(spn) == pytest.approx(1.0)

    def test_valid_structure(self):
        generate_spn(GeneratorConfig(n_vars=5, seed=0)).check_valid()


class TestRatSpnConfig:
    def test_invalid_split_balance(self):
        with pytest.raises(ValueError):
            RatSpnConfig(n_vars=8, split_balance=0.0)
        with pytest.raises(ValueError):
            RatSpnConfig(n_vars=8, split_balance=0.7)

    def test_requires_two_variables(self):
        with pytest.raises(ValueError):
            RatSpnConfig(n_vars=1)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            RatSpnConfig(n_vars=8, n_sums=0)
        with pytest.raises(ValueError):
            RatSpnConfig(n_vars=8, repetitions=0)


class TestRatGenerator:
    def test_deterministic(self):
        cfg = RatSpnConfig(n_vars=10, depth=10, repetitions=2, seed=4)
        a = generate_rat_spn(cfg)
        b = generate_rat_spn(cfg)
        assert len(a) == len(b)
        assert evaluate(a, {0: 1, 5: 0}) == pytest.approx(evaluate(b, {0: 1, 5: 0}))

    def test_normalized(self, small_rat_spn):
        assert partition_function(small_rat_spn) == pytest.approx(1.0)

    def test_covers_all_variables(self, small_rat_spn):
        assert small_rat_spn.variables() == list(range(10))

    def test_unbalanced_split_is_deeper(self):
        balanced = generate_rat_spn(
            RatSpnConfig(n_vars=16, depth=4, repetitions=1, split_balance=0.5, seed=9)
        )
        linear = generate_rat_spn(
            RatSpnConfig(n_vars=16, depth=16, repetitions=1, split_balance=0.1, seed=9)
        )
        assert linear.depth() > balanced.depth()

    def test_repetitions_increase_size(self):
        one = generate_rat_spn(RatSpnConfig(n_vars=12, depth=12, repetitions=1, seed=2))
        three = generate_rat_spn(RatSpnConfig(n_vars=12, depth=12, repetitions=3, seed=2))
        assert len(three) > len(one)

    def test_more_sums_increase_size(self):
        small = generate_rat_spn(RatSpnConfig(n_vars=12, depth=4, n_sums=1, seed=2))
        large = generate_rat_spn(RatSpnConfig(n_vars=12, depth=4, n_sums=3, seed=2))
        assert len(large) > len(small)


class TestRandomEvidence:
    def test_shape_and_range(self):
        data = random_evidence(10, n_samples=20, seed=0)
        assert data.shape == (20, 10)
        assert data.min() >= 0
        assert data.max() <= 1

    def test_single_row_default(self):
        data = random_evidence(5, seed=0)
        assert data.shape == (1, 5)

    def test_observed_fraction_zero_marginalizes_everything(self):
        data = random_evidence(6, observed_fraction=0.0, n_samples=4, seed=1)
        assert np.all(data == -1)

    def test_observed_fraction_validation(self):
        with pytest.raises(ValueError):
            random_evidence(4, observed_fraction=2.0)

    def test_deterministic(self):
        a = random_evidence(8, n_samples=5, seed=3)
        b = random_evidence(8, n_samples=5, seed=3)
        assert np.array_equal(a, b)
