"""Tests for the parallel sweep runner and its on-disk result cache."""

import json

import pytest

from repro.experiments import sweeps
from repro.experiments.sweeps import (
    SweepPoint,
    all_sweep_points,
    cache_key,
    run_sweep,
    write_bench_json,
)

#: Smallest suite benchmark — keeps every sweep point cheap.
BENCHMARK = "Banknote"


@pytest.fixture()
def two_points():
    return sweeps.gpu_bank_points(BENCHMARK)


class TestCacheKey:
    def test_key_is_deterministic(self, two_points):
        assert cache_key(two_points[0]) == cache_key(two_points[0])

    def test_key_distinguishes_points(self, two_points):
        keys = {cache_key(p) for p in all_sweep_points(BENCHMARK)}
        assert len(keys) == len(all_sweep_points(BENCHMARK))

    def test_key_changes_with_any_parameter(self):
        base = SweepPoint(
            kind="tree_arrangement",
            benchmark=BENCHMARK,
            label="x",
            params=(("n_levels", 1), ("n_trees", 16)),
        )
        changed_param = SweepPoint(
            kind="tree_arrangement",
            benchmark=BENCHMARK,
            label="x",
            params=(("n_levels", 2), ("n_trees", 16)),
        )
        changed_benchmark = SweepPoint(
            kind="tree_arrangement",
            benchmark="MSNBC",
            label="x",
            params=(("n_levels", 1), ("n_trees", 16)),
        )
        assert cache_key(base) != cache_key(changed_param)
        assert cache_key(base) != cache_key(changed_benchmark)

    def test_key_changes_with_cache_version(self, two_points, monkeypatch):
        before = cache_key(two_points[0])
        monkeypatch.setattr(sweeps, "CACHE_VERSION", sweeps.CACHE_VERSION + 1)
        assert cache_key(two_points[0]) != before

    def test_key_changes_with_code_fingerprint(self, two_points, monkeypatch):
        # Any change to the repro package source must invalidate the cache.
        before = cache_key(two_points[0])
        monkeypatch.setattr(sweeps, "_CODE_FINGERPRINT", "0" * 16)
        assert cache_key(two_points[0]) != before


class TestRunSweep:
    def test_same_key_is_a_cached_hit(self, two_points, tmp_path):
        cache_dir = tmp_path / "sweeps"
        first = run_sweep(two_points, parallel=False, cache_dir=cache_dir)
        second = run_sweep(two_points, parallel=False, cache_dir=cache_dir)
        assert not any(r.cached for r in first)
        assert all(r.cached for r in second)
        assert [r.values for r in first] == [r.values for r in second]

    def test_changed_config_is_a_miss(self, tmp_path):
        cache_dir = tmp_path / "sweeps"
        coloring, interleaved = sweeps.gpu_bank_points(BENCHMARK)
        run_sweep([coloring], parallel=False, cache_dir=cache_dir)
        results = run_sweep([interleaved], parallel=False, cache_dir=cache_dir)
        assert not results[0].cached

    def test_cache_can_be_disabled(self, two_points, tmp_path):
        # cache_dir=None disables caching entirely: nothing written, no hits.
        run_sweep(two_points, parallel=False, cache_dir=None)
        assert not any(tmp_path.iterdir())
        results = run_sweep(two_points, parallel=False, cache_dir=None)
        assert not any(r.cached for r in results)

    def test_corrupted_cache_entry_is_recomputed(self, two_points, tmp_path):
        cache_dir = tmp_path / "sweeps"
        run_sweep(two_points, parallel=False, cache_dir=cache_dir)
        for path in cache_dir.glob("*.json"):
            path.write_text("{not json")
        results = run_sweep(two_points, parallel=False, cache_dir=cache_dir)
        assert not any(r.cached for r in results)

    def test_parallel_matches_serial(self, two_points, tmp_path):
        serial = run_sweep(two_points, parallel=False, cache_dir=None)
        parallel = run_sweep(
            two_points,
            parallel=True,
            max_workers=2,
            cache_dir=tmp_path / "sweeps",
        )
        assert [r.values for r in serial] == [r.values for r in parallel]
        assert [r.point for r in serial] == [r.point for r in parallel]

    def test_results_preserve_point_order(self, tmp_path):
        points = all_sweep_points(BENCHMARK)
        results = run_sweep(points, parallel=False, cache_dir=tmp_path / "sweeps")
        assert [r.point for r in results] == points

    def test_unknown_kind_is_rejected(self):
        bogus = SweepPoint(kind="warp-drive", benchmark=BENCHMARK, label="x")
        with pytest.raises(ValueError, match="unknown sweep point kind"):
            sweeps.evaluate_point(bogus)


class TestBenchJson:
    def test_written_artifact_round_trips(self, two_points, tmp_path):
        results = run_sweep(two_points, parallel=False, cache_dir=tmp_path / "sweeps")
        path = tmp_path / "BENCH_sweeps.json"
        payload = write_bench_json(
            results,
            path,
            BENCHMARK,
            engine_speedup={"speedup_vs_reference": 12.5},
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["schema"] == "BENCH_sweeps/v1"
        assert on_disk["benchmark"] == BENCHMARK
        assert on_disk["engine_speedup"]["speedup_vs_reference"] == 12.5
        assert len(on_disk["sweeps"]) == len(two_points)
        for entry in on_disk["sweeps"]:
            assert {"kind", "benchmark", "label", "params", "ops_per_cycle"} <= set(entry)


class TestNamedSweepsStillWork:
    """The pre-existing sweep entry points keep their shapes and values."""

    def test_tree_arrangement_sweep_shape(self):
        results = sweeps.tree_arrangement_sweep(BENCHMARK)
        assert set(results) == {name for name, _, _ in sweeps.TREE_ARRANGEMENTS}
        assert all(v > 0 for v in results.values())

    def test_allocation_ablation_shape(self):
        results = sweeps.allocation_ablation(BENCHMARK)
        assert set(results) == {"conflict-aware", "naive"}
        assert set(results["naive"]) == {"Pvect", "Ptree"}

    def test_render_main_contains_all_sections(self, tmp_path):
        text = sweeps.main(BENCHMARK, parallel=False, cache_dir=tmp_path / "sweeps")
        for section in (
            "PE arrangement sweep",
            "Register-bank allocation ablation",
            "Subtree packing ablation",
            "GPU shared-memory bank allocation",
        ):
            assert section in text


class TestPlatformFilter:
    def test_filter_keeps_only_requested_platforms(self):
        points = all_sweep_points(BENCHMARK)
        gpu_only = sweeps.filter_points(points, ["GPU"])
        assert gpu_only
        assert {p.platform for p in gpu_only} == {"GPU"}
        assert sweeps.filter_points(points, None) == list(points)

    def test_filter_rejects_unknown_platform(self):
        with pytest.raises(ValueError, match="no sweep points on platform"):
            sweeps.filter_points(all_sweep_points(BENCHMARK), ["TPU"])

    def test_filter_rejects_empty_list(self):
        # An accidentally-empty filter must fail loudly, not run zero points.
        with pytest.raises(ValueError, match="filter is empty"):
            sweeps.filter_points(all_sweep_points(BENCHMARK), [])

    def test_filtered_json_merges_into_existing_sweeps(self, two_points, tmp_path):
        # A platform-filtered --json run must update its own rows without
        # dropping the other platforms' rows from the artifact.
        path = tmp_path / "bench.json"
        full = run_sweep(all_sweep_points(BENCHMARK), parallel=False, cache_dir=None)
        write_bench_json(full, path, BENCHMARK)
        gpu_only = run_sweep(two_points, parallel=False, cache_dir=None)
        payload = sweeps.write_bench_json(gpu_only, path, BENCHMARK, merge_sweeps=True)
        assert len(payload["sweeps"]) == len(full)
        platforms = {entry["platform"] for entry in payload["sweeps"]}
        assert "GPU" in platforms and len(platforms) > 1

    def test_cli_platforms_flag(self, tmp_path, capsys):
        exit_code = sweeps._cli(
            [
                "--benchmark", BENCHMARK,
                "--serial",
                "--skip-speedup",
                "--cache-dir", str(tmp_path / "sweeps"),
                "--platforms", "GPU",
                "--json", str(tmp_path / "bench.json"),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "GPU shared-memory bank allocation" in out
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["sweeps"]
        assert {entry["platform"] for entry in payload["sweeps"]} == {"GPU"}
