"""Tests for the platform-engine registry (repro.platforms)."""

import dataclasses

import pytest

from repro.analysis.metrics import PlatformResult
from repro.baselines.gpu import GpuConfig
from repro.platforms import (
    DEFAULT_PLATFORMS,
    PLATFORM_CPU,
    PLATFORM_GPU,
    PLATFORM_PTREE,
    PLATFORM_PVECT,
    CpuEngine,
    GpuEngine,
    PlatformEngine,
    ProcessorEngine,
    UnknownPlatformError,
    available_platforms,
    get_engine,
    register_platform,
    unregister_platform,
)
from repro.suite.registry import benchmark_operation_list

BENCHMARK = "Banknote"


@pytest.fixture()
def ops():
    return benchmark_operation_list(BENCHMARK)


class TestLookup:
    def test_builtin_platforms_are_registered(self):
        assert set(DEFAULT_PLATFORMS) <= set(available_platforms())

    def test_engines_have_expected_types(self):
        assert isinstance(get_engine(PLATFORM_CPU), CpuEngine)
        assert isinstance(get_engine(PLATFORM_GPU), GpuEngine)
        assert isinstance(get_engine(PLATFORM_PVECT), ProcessorEngine)
        assert isinstance(get_engine(PLATFORM_PTREE), ProcessorEngine)

    def test_engine_name_matches_registry_key(self):
        for name in DEFAULT_PLATFORMS:
            assert get_engine(name).name == name

    def test_lookup_is_cached(self):
        assert get_engine(PLATFORM_CPU) is get_engine(PLATFORM_CPU)

    def test_unknown_platform_raises(self):
        with pytest.raises(UnknownPlatformError, match="unknown platform 'TPU'"):
            get_engine("TPU")

    def test_unknown_platform_error_is_a_value_error(self):
        # run_platform("TPU", ...) callers historically catch ValueError.
        assert issubclass(UnknownPlatformError, ValueError)

    def test_available_platforms_is_sorted(self):
        assert available_platforms() == sorted(available_platforms())

    def test_available_platforms_order_ignores_registration_order(self):
        # Late registration of an early-sorting name must not land at the
        # end of the list: the listing is deterministic, not insertion-order.
        register_platform("AAA-first", CpuEngine)
        try:
            listed = available_platforms()
            assert listed == sorted(listed)
            assert listed[0] == "AAA-first"
        finally:
            unregister_platform("AAA-first")


class TestResultContract:
    @pytest.mark.parametrize("platform", DEFAULT_PLATFORMS)
    def test_every_engine_returns_a_platform_result(self, platform, ops):
        result = get_engine(platform).run(ops, benchmark=BENCHMARK)
        assert isinstance(result, PlatformResult)
        assert result.platform == platform
        assert result.benchmark == BENCHMARK
        assert result.cycles > 0
        assert result.n_operations > 0
        assert result.ops_per_cycle > 0

    def test_table_rows_have_four_columns(self):
        for platform in DEFAULT_PLATFORMS:
            row = get_engine(platform).table_row()
            assert len(row) == 4
            assert all(isinstance(cell, str) for cell in row)


class TestReconfiguration:
    def test_configured_returns_a_new_engine(self):
        gpu = get_engine(PLATFORM_GPU)
        small = gpu.configured(n_threads=32)
        assert small is not gpu
        assert small.config.n_threads == 32
        # The registry's shared instance is untouched.
        assert get_engine(PLATFORM_GPU).config.n_threads == GpuConfig().n_threads

    def test_with_config_replaces_wholesale(self):
        gpu = get_engine(PLATFORM_GPU).with_config(GpuConfig(n_threads=64))
        assert gpu.config.n_threads == 64

    def test_processor_engine_rename_changes_platform_label(self, ops):
        engine = get_engine(PLATFORM_PVECT).configured(name="Pvect-variant")
        assert engine.name == "Pvect-variant"
        assert engine.run(ops).platform == "Pvect-variant"


class TestRegistration:
    def test_register_and_dispatch_custom_backend(self, ops):
        @dataclasses.dataclass(frozen=True)
        class ConstantEngine(PlatformEngine):
            config: object = None

            @property
            def name(self):
                return "Constant"

            def run(self, ops, benchmark="", options=None, evidence=None):
                return PlatformResult(
                    platform=self.name,
                    benchmark=benchmark,
                    ops_per_cycle=1.0,
                    cycles=ops.n_operations,
                    n_operations=ops.n_operations,
                )

            def table_row(self):
                return (self.name, "-", "-", "-")

        register_platform("Constant", ConstantEngine)
        try:
            # The generic experiment entry point dispatches to it by name.
            from repro.experiments.platforms import run_platform

            result = run_platform("Constant", ops, benchmark=BENCHMARK)
            assert result.platform == "Constant"
            assert result.ops_per_cycle == 1.0
            assert "Constant" in available_platforms()
        finally:
            unregister_platform("Constant")
        assert "Constant" not in available_platforms()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_platform(PLATFORM_CPU, CpuEngine)

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownPlatformError):
            unregister_platform("definitely-not-registered")
