"""Failure-injection tests: corrupt valid programs and check the simulator objects.

These tests demonstrate that the cycle-accurate simulator is a *checking*
model: every structural rule of the machine is enforced at run time, so a
buggy compiler change cannot silently produce wrong throughput numbers.
"""

import copy

import pytest

from repro.compiler.driver import compile_spn
from repro.processor.config import ptree_config
from repro.processor.errors import (
    StructuralHazardError,
    UninitializedReadError,
    VerificationError,
)
from repro.processor.isa import Instruction, MemOp, ReadSpec, WriteSpec
from repro.processor.simulator import Simulator


@pytest.fixture()
def kernel(mixture_spn):
    return compile_spn(mixture_spn, ptree_config())


def _first_instruction_with(program, predicate):
    for index, instruction in enumerate(program.instructions):
        if predicate(instruction):
            return index, instruction
    raise AssertionError("no instruction matches the predicate")


def _run(kernel, program, strict=True):
    vec = kernel.ops.input_vector({0: 1, 1: 0})
    expected = kernel.ops.execute_values(vec)
    return Simulator(kernel.config, strict=strict).run(program, vec, expected)


class TestReadHazards:
    def test_conflicting_bank_read_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        index, instr = _first_instruction_with(program, lambda i: i.reads)
        victim = instr.reads[0]
        # Add a second read of the same bank at a different register through a
        # free port of the other tree.
        conflicting = ReadSpec(
            port=(1, 0) if victim.port[0] == 0 else (0, 0),
            bank=victim.bank,
            reg=(victim.reg + 1) % kernel.config.bank_depth,
        )
        instr.reads.append(conflicting)
        with pytest.raises((StructuralHazardError, UninitializedReadError)):
            _run(kernel, program)

    def test_unknown_port_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        _, instr = _first_instruction_with(program, lambda i: i.reads)
        instr.reads.append(ReadSpec(port=(0, 99), bank=0, reg=0))
        with pytest.raises(StructuralHazardError):
            _run(kernel, program)

    def test_duplicate_port_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        _, instr = _first_instruction_with(program, lambda i: i.reads)
        instr.reads.append(instr.reads[0])
        with pytest.raises(StructuralHazardError):
            _run(kernel, program)

    def test_uninitialized_register_read_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        _, instr = _first_instruction_with(program, lambda i: i.reads)
        # Redirect the read to an intermediate register that is not written
        # this early in the program; keep the slot annotation so that even if
        # the register were populated later the value check would still fire.
        victim = instr.reads[0]
        instr.reads[0] = ReadSpec(
            port=victim.port, bank=victim.bank, reg=31, slot=victim.slot
        )
        with pytest.raises((UninitializedReadError, VerificationError)):
            _run(kernel, program)


class TestWriteHazards:
    def test_out_of_window_write_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        _, instr = _first_instruction_with(program, lambda i: i.writes)
        write = instr.writes[0]
        tree, level, pos = write.pe
        allowed = kernel.config.allowed_write_banks(tree, level, pos)
        forbidden = next(b for b in range(kernel.config.n_banks) if b not in allowed)
        instr.writes[0] = WriteSpec(pe=write.pe, bank=forbidden, reg=write.reg, slot=write.slot)
        with pytest.raises(StructuralHazardError):
            _run(kernel, program)

    def test_write_from_idle_pe_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        _, instr = _first_instruction_with(program, lambda i: i.writes)
        instr.writes.append(WriteSpec(pe=(0, 3, 0), bank=0, reg=0))
        if (0, 3, 0) in instr.pe_ops:
            del instr.pe_ops[(0, 3, 0)]
        with pytest.raises(StructuralHazardError):
            _run(kernel, program)

    def test_wrong_slot_annotation_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        _, instr = _first_instruction_with(
            program, lambda i: any(w.slot is not None for w in i.writes)
        )
        write = next(w for w in instr.writes if w.slot is not None)
        position = instr.writes.index(write)
        instr.writes[position] = WriteSpec(
            pe=write.pe, bank=write.bank, reg=write.reg, slot=write.slot + 1
        )
        with pytest.raises(VerificationError):
            _run(kernel, program)


class TestMemoryHazards:
    def test_out_of_range_row_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        program.instructions.append(
            Instruction(mem=MemOp(kind="load", row=kernel.config.dmem_rows + 5, reg=0))
        )
        with pytest.raises(StructuralHazardError):
            _run(kernel, program)

    def test_out_of_range_register_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        program.instructions.append(
            Instruction(mem=MemOp(kind="load", row=0, reg=kernel.config.bank_depth))
        )
        with pytest.raises(StructuralHazardError):
            _run(kernel, program)

    def test_dmem_image_with_unknown_slot_detected(self, kernel):
        program = copy.deepcopy(kernel.program)
        if not program.dmem_image:
            pytest.skip("program has no data-memory image")
        program.dmem_image[0][0] = 10_000_000
        with pytest.raises(StructuralHazardError):
            _run(kernel, program)


class TestNonStrictMode:
    def test_corrupted_slot_annotation_ignored_when_not_strict(self, kernel):
        program = copy.deepcopy(kernel.program)
        _, instr = _first_instruction_with(
            program, lambda i: any(w.slot is not None for w in i.writes)
        )
        write = next(w for w in instr.writes if w.slot is not None)
        position = instr.writes.index(write)
        instr.writes[position] = WriteSpec(
            pe=write.pe, bank=write.bank, reg=write.reg, slot=write.slot + 1
        )
        # Non-strict mode does not check annotations; the run completes (the
        # final value is still correct because only metadata was corrupted).
        result = _run(kernel, program, strict=False)
        assert result.cycles > 0
