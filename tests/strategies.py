"""Shared hypothesis strategies and query generators for the test suite.

One home for the random-SPN configuration strategies that used to be
duplicated across ``test_properties.py``, ``test_spn_compiled.py`` and
``test_memplan.py``, plus the evidence helpers and the all-kinds
``make_query`` generator the execution-equality and analysis-query suites
draw from.

Three network scales:

* :data:`rat_configs` — the general-purpose strategy (up to 10 variables,
  depth 6): big enough to exercise every structural shape, fast enough for
  ``max_examples=25`` property runs.
* :data:`wide_rat_configs` — wider/deeper (up to 12 variables, depth 8)
  for the compiled-tape engine-agreement properties.
* :data:`small_rat_configs` — oracle-enumerable (up to 5 variables): the
  joint table has at most ``2**5`` states, so the brute-force reference in
  ``tests/oracle.py`` stays exact and fast.
"""

import numpy as np
from hypothesis import strategies as st

from repro.api import (
    MPE,
    Classify,
    Conditional,
    Entropy,
    Expectation,
    Likelihood,
    LogLikelihood,
    Marginal,
    MutualInformation,
    Sample,
)
from repro.spn.generate import RatSpnConfig, random_evidence
from repro.spn.learn import LearnConfig


def rat_spn_configs(
    min_vars: int = 2,
    max_vars: int = 10,
    max_depth: int = 6,
    max_repetitions: int = 2,
    max_sums: int = 3,
    max_leaf_components: int = 2,
):
    """A :class:`~repro.spn.generate.RatSpnConfig` strategy, scale-tunable."""
    return st.builds(
        RatSpnConfig,
        n_vars=st.integers(min_value=min_vars, max_value=max_vars),
        depth=st.integers(min_value=1, max_value=max_depth),
        repetitions=st.integers(min_value=1, max_value=max_repetitions),
        n_sums=st.integers(min_value=1, max_value=max_sums),
        n_leaf_components=st.integers(min_value=1, max_value=max_leaf_components),
        split_balance=st.sampled_from([0.1, 0.3, 0.5]),
        seed=st.integers(min_value=0, max_value=10_000),
    )


#: General-purpose scale (the historical ``test_properties`` strategy).
rat_configs = rat_spn_configs()

#: Wider and deeper (the historical ``test_spn_compiled`` strategy).
wide_rat_configs = rat_spn_configs(max_vars=12, max_depth=8)

#: Small enough for exact joint-table enumeration (2**5 states at most).
small_rat_configs = rat_spn_configs(max_vars=5, max_depth=3)

#: :class:`~repro.spn.learn.LearnConfig` hyper-parameter space for the
#: learner differential properties: thresholds span "everything looks
#: independent" to "nothing does", ``min_instances`` down to 4 so sum
#: splits actually trigger on small training sets, and a shallow
#: ``max_depth`` corner exercises the factorized fallback.
learn_configs = st.builds(
    LearnConfig,
    independence_threshold=st.sampled_from([0.002, 0.02, 0.2]),
    min_instances=st.sampled_from([4, 8, 32]),
    n_clusters=st.integers(min_value=2, max_value=3),
    smoothing=st.sampled_from([0.5, 1.0]),
    max_depth=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=10_000),
)


def full_evidence(spn, seed):
    """One complete random binary assignment of every network variable."""
    rng = np.random.default_rng(seed)
    return {v: int(rng.integers(0, 2)) for v in spn.variables()}


def partial_evidence(spn, seed, keep=0.6):
    """A random partial assignment keeping each variable with rate ``keep``."""
    rng = np.random.default_rng(seed)
    return {
        v: int(rng.integers(0, 2))
        for v in spn.variables()
        if rng.random() < keep
    }


#: Every typed query kind, as accepted by :func:`make_query`.
ALL_KINDS = (
    "likelihood",
    "log_likelihood",
    "marginal",
    "conditional",
    "mpe",
    "sample",
    "expectation",
    "entropy",
    "mutual_information",
    "classify",
)


def _subset(rng: np.random.Generator, n_vars: int, at_most: int) -> tuple:
    size = int(rng.integers(1, min(at_most, n_vars) + 1))
    return tuple(int(v) for v in rng.choice(n_vars, size=size, replace=False))


def make_query(kind: str, n_vars: int, rng: np.random.Generator, n_rows: int):
    """A random typed query of ``kind`` over ``n_vars`` binary variables.

    Scaled so every kind stays fast even on the 100–160-variable suite
    profiles: MPE keeps one row, ``sample`` frees at most three variables
    (one chain pass each), and the sweep kinds restrict themselves to at
    most three variables.
    """
    observed = 0.9 if kind == "mpe" else 0.5
    evidence = random_evidence(
        n_vars, observed_fraction=observed, seed=int(rng.integers(1 << 30)),
        n_samples=n_rows,
    )
    if kind == "likelihood":
        return Likelihood(evidence=evidence)
    if kind == "log_likelihood":
        return LogLikelihood(evidence=evidence)
    if kind == "marginal":
        return Marginal(evidence=evidence, log=bool(rng.integers(2)), normalize=True)
    if kind == "conditional":
        query = np.full_like(evidence, -1)
        queried = rng.integers(0, n_vars, size=n_rows)
        evidence[np.arange(n_rows), queried] = -1
        query[np.arange(n_rows), queried] = rng.integers(0, 2, size=n_rows)
        return Conditional(evidence=evidence, query=query, log=bool(rng.integers(2)))
    if kind == "sample":
        # Fully observe, then free a few variables: the chain stays short
        # (one pass per freed variable) at any model width.
        evidence = random_evidence(
            n_vars, observed_fraction=1.0, seed=int(rng.integers(1 << 30)),
            n_samples=n_rows,
        )
        evidence[:, list(_subset(rng, n_vars, 3))] = -1
        return Sample(
            evidence=evidence, n_samples=2, seed=int(rng.integers(1 << 16))
        )
    if kind == "expectation":
        return Expectation(
            evidence=evidence,
            variables=_subset(rng, n_vars, 3),
            moment=int(rng.integers(1, 3)),
            center=bool(rng.integers(2)),
        )
    if kind == "entropy":
        return Entropy(evidence=evidence, variables=_subset(rng, n_vars, 3))
    if kind == "mutual_information":
        return MutualInformation(
            evidence=evidence,
            variables=_subset(rng, n_vars, 3),
            normalize=bool(rng.integers(2)),
        )
    if kind == "classify":
        target = int(rng.integers(0, n_vars))
        evidence[:, target] = -1
        return Classify(evidence=evidence, target=target, log=bool(rng.integers(2)))
    return MPE(evidence=evidence[:1])  # MPE is per-row python work: keep it small
