"""Tests for the register file, data memory and tree datapath components."""

import pytest

from repro.processor.components import DataMemory, PEValue, RegisterFile, TreeDatapath
from repro.processor.config import ptree_config
from repro.processor.errors import StructuralHazardError, UninitializedReadError
from repro.processor.isa import OP_ADD, OP_MUL, OP_PASS_A, OP_PASS_B, Instruction


@pytest.fixture()
def config():
    return ptree_config()


class TestRegisterFile:
    def test_write_becomes_visible_at_commit_cycle(self, config):
        rf = RegisterFile(config)
        rf.schedule_write(0, 0, 1.5, readable_cycle=3)
        rf.commit_due(2)
        assert rf.read(0, 0) == (None, None)
        rf.commit_due(3)
        assert rf.read(0, 0)[0] == pytest.approx(1.5)

    def test_write_port_conflict_detected(self, config):
        rf = RegisterFile(config)
        rf.schedule_write(0, 0, 1.0, readable_cycle=3)
        with pytest.raises(StructuralHazardError):
            rf.schedule_write(0, 1, 2.0, readable_cycle=3)

    def test_memory_port_does_not_conflict(self, config):
        rf = RegisterFile(config)
        rf.schedule_write(0, 0, 1.0, readable_cycle=3)
        rf.schedule_write(0, 1, 2.0, readable_cycle=3, from_memory_port=True)

    def test_different_cycles_do_not_conflict(self, config):
        rf = RegisterFile(config)
        rf.schedule_write(0, 0, 1.0, readable_cycle=3)
        rf.schedule_write(0, 1, 2.0, readable_cycle=4)

    def test_out_of_range_detected(self, config):
        rf = RegisterFile(config)
        with pytest.raises(StructuralHazardError):
            rf.read(config.n_banks, 0)
        with pytest.raises(StructuralHazardError):
            rf.schedule_write(0, config.bank_depth, 0.0, readable_cycle=0)

    def test_drain_returns_last_cycle(self, config):
        rf = RegisterFile(config)
        rf.schedule_write(1, 1, 9.0, readable_cycle=7)
        assert rf.drain() == 7
        assert rf.read(1, 1)[0] == pytest.approx(9.0)

    def test_slot_shadow(self, config):
        rf = RegisterFile(config)
        rf.schedule_write(2, 3, 0.5, readable_cycle=1, slot=42)
        rf.commit_due(1)
        assert rf.read(2, 3) == (0.5, 42)


class TestDataMemory:
    def test_row_round_trip(self, config):
        dmem = DataMemory(config)
        row = [float(i) for i in range(config.n_banks)]
        dmem.write_row(3, row)
        assert dmem.read_row(3) == row
        assert dmem.read_lane(3, 5) == pytest.approx(5.0)

    def test_row_bounds(self, config):
        dmem = DataMemory(config)
        with pytest.raises(StructuralHazardError):
            dmem.read_row(config.dmem_rows)

    def test_row_width_checked(self, config):
        dmem = DataMemory(config)
        with pytest.raises(StructuralHazardError):
            dmem.write_row(0, [1.0, 2.0])


class TestTreeDatapath:
    def _ports(self, values):
        return {(0, i): PEValue(v) for i, v in enumerate(values)}

    def test_leaf_level_add_and_mul(self, config):
        datapath = TreeDatapath(config)
        instr = Instruction(pe_ops={(0, 0, 0): OP_ADD, (0, 0, 1): OP_MUL})
        out = datapath.evaluate(instr, self._ports([1.0, 2.0, 3.0, 4.0]))
        assert out[(0, 0, 0)].value == pytest.approx(3.0)
        assert out[(0, 0, 1)].value == pytest.approx(12.0)

    def test_two_level_cone(self, config):
        datapath = TreeDatapath(config)
        instr = Instruction(
            pe_ops={(0, 0, 0): OP_MUL, (0, 0, 1): OP_MUL, (0, 1, 0): OP_ADD}
        )
        out = datapath.evaluate(instr, self._ports([2.0, 3.0, 4.0, 5.0]))
        assert out[(0, 1, 0)].value == pytest.approx(26.0)

    def test_pass_a_and_pass_b(self, config):
        datapath = TreeDatapath(config)
        instr = Instruction(pe_ops={(0, 0, 0): OP_PASS_A, (0, 0, 1): OP_PASS_B})
        out = datapath.evaluate(instr, self._ports([1.0, 2.0, 3.0, 4.0]))
        assert out[(0, 0, 0)].value == pytest.approx(1.0)
        assert out[(0, 0, 1)].value == pytest.approx(4.0)

    def test_pass_preserves_slot(self, config):
        datapath = TreeDatapath(config)
        instr = Instruction(pe_ops={(0, 0, 0): OP_PASS_A})
        out = datapath.evaluate(instr, {(0, 0): PEValue(1.0, slot=17)})
        assert out[(0, 0, 0)].slot == 17

    def test_missing_operand_detected(self, config):
        datapath = TreeDatapath(config)
        instr = Instruction(pe_ops={(0, 0, 0): OP_ADD})
        with pytest.raises(UninitializedReadError):
            datapath.evaluate(instr, {(0, 0): PEValue(1.0)})

    def test_missing_child_output_detected(self, config):
        datapath = TreeDatapath(config)
        instr = Instruction(pe_ops={(0, 1, 0): OP_ADD})
        with pytest.raises(UninitializedReadError):
            datapath.evaluate(instr, {})

    def test_nop_produces_no_output(self, config):
        datapath = TreeDatapath(config)
        instr = Instruction(pe_ops={(0, 0, 0): "nop"})
        assert datapath.evaluate(instr, self._ports([1.0, 2.0])) == {}
