"""Tests for the deterministic fault-injection plane (repro.faults)."""

import threading

import pytest

from repro.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedExecutorFault,
    InjectedFault,
    UnknownFaultSiteError,
    active_plan,
    fault_scope,
    install,
    uninstall,
)

SITE = "serving.worker_crash"
DELAY_SITE = "serving.slow_kernel"


# --------------------------------------------------------------------------- #
# Specs
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(UnknownFaultSiteError):
            FaultSpec("serving.no_such_site")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -0.1},
            {"rate": 1.5},
            {"after": -1},
            {"times": -1},
            {"delay_s": -0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(SITE, **kwargs)

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(specs=[FaultSpec(SITE), FaultSpec(SITE)])

    def test_every_site_documented(self):
        assert all(FAULT_SITES.values())


# --------------------------------------------------------------------------- #
# Seeded decisions
# --------------------------------------------------------------------------- #
class TestShouldFire:
    def test_unknown_site_query_rejected(self):
        with pytest.raises(UnknownFaultSiteError):
            FaultPlan().should_fire("serving.no_such_site")

    def test_unspecced_site_never_fires(self):
        plan = FaultPlan(specs=[FaultSpec(SITE)])
        assert plan.should_fire("queue.stall") == (False, -1)

    def test_rate_one_fires_every_visit(self):
        plan = FaultPlan(specs=[FaultSpec(SITE, rate=1.0)])
        assert [plan.should_fire(SITE) for _ in range(3)] == [
            (True, 0),
            (True, 1),
            (True, 2),
        ]

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(specs=[FaultSpec(SITE, rate=0.0)])
        assert all(not plan.should_fire(SITE)[0] for _ in range(20))

    def test_after_warmup_skips_first_visits(self):
        plan = FaultPlan(specs=[FaultSpec(SITE, rate=1.0, after=3)])
        fires = [plan.should_fire(SITE)[0] for _ in range(5)]
        assert fires == [False, False, False, True, True]

    def test_times_caps_total_firings(self):
        plan = FaultPlan(specs=[FaultSpec(SITE, rate=1.0, times=2)])
        fires = [plan.should_fire(SITE)[0] for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_schedule_is_a_pure_function_of_the_seed(self):
        def schedule(seed):
            plan = FaultPlan(seed=seed, specs=[FaultSpec(SITE, rate=0.3)])
            return [plan.should_fire(SITE)[0] for _ in range(200)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert 0 < sum(schedule(7)) < 200  # a real mixture at rate 0.3

    def test_schedule_is_per_site_independent(self):
        """Traffic at one site must not perturb another site's schedule."""
        lone = FaultPlan(seed=3, specs=[FaultSpec(SITE, rate=0.5)])
        mixed = FaultPlan(
            seed=3,
            specs=[FaultSpec(SITE, rate=0.5), FaultSpec("queue.stall", rate=0.5)],
        )
        fires = []
        for _ in range(50):
            mixed.should_fire("queue.stall")
            fires.append(mixed.should_fire(SITE)[0])
        assert fires == [lone.should_fire(SITE)[0] for _ in range(50)]

    def test_concurrent_visits_claim_distinct_indices(self):
        plan = FaultPlan(specs=[FaultSpec(SITE, rate=1.0)])
        indices = []
        lock = threading.Lock()

        def visit():
            for _ in range(50):
                _, index = plan.should_fire(SITE)
                with lock:
                    indices.append(index)

        threads = [threading.Thread(target=visit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(indices) == list(range(200))

    def test_report_counts_visits_and_firings(self):
        plan = FaultPlan(specs=[FaultSpec(SITE, rate=1.0, times=1)])
        for _ in range(3):
            plan.should_fire(SITE)
        assert plan.report() == {SITE: {"visits": 3, "fired": 1}}


# --------------------------------------------------------------------------- #
# Actions
# --------------------------------------------------------------------------- #
class TestActions:
    def test_maybe_raise_raises_typed_fault(self):
        plan = FaultPlan(specs=[FaultSpec(SITE, message="boom")])
        with pytest.raises(InjectedCrash) as excinfo:
            plan.maybe_raise(SITE, InjectedCrash)
        assert excinfo.value.site == SITE
        assert excinfo.value.index == 0
        assert "boom" in str(excinfo.value)
        assert isinstance(excinfo.value, InjectedFault)

    def test_injected_hierarchy(self):
        assert issubclass(InjectedCrash, InjectedFault)
        assert issubclass(InjectedExecutorFault, InjectedFault)
        assert issubclass(InjectedFault, RuntimeError)

    def test_maybe_raise_silent_when_not_firing(self):
        plan = FaultPlan(specs=[FaultSpec(SITE, rate=0.0)])
        plan.maybe_raise(SITE)  # no exception

    def test_maybe_delay_returns_slept_delay(self):
        plan = FaultPlan(specs=[FaultSpec(DELAY_SITE, delay_s=0.001)])
        assert plan.maybe_delay(DELAY_SITE) == 0.001

    def test_maybe_delay_zero_when_not_firing(self):
        plan = FaultPlan(specs=[FaultSpec(DELAY_SITE, rate=0.0, delay_s=0.5)])
        assert plan.maybe_delay(DELAY_SITE) == 0.0

    def test_corrupt_text_flips_exactly_one_character(self):
        plan = FaultPlan(specs=[FaultSpec("artifact.load_corruption")])
        text = '{"format": 1, "name": "m"}'
        corrupted = plan.corrupt_text("artifact.load_corruption", text)
        assert corrupted != text
        assert len(corrupted) == len(text)
        assert sum(a != b for a, b in zip(corrupted, text)) == 1

    def test_corrupt_text_is_seeded(self):
        def corrupt(seed):
            plan = FaultPlan(
                seed=seed, specs=[FaultSpec("artifact.load_corruption")]
            )
            return plan.corrupt_text("artifact.load_corruption", "x" * 64)

        assert corrupt(5) == corrupt(5)

    def test_corrupt_text_passthrough_when_not_firing(self):
        plan = FaultPlan(specs=[FaultSpec("artifact.load_corruption", rate=0.0)])
        assert plan.corrupt_text("artifact.load_corruption", "abc") == "abc"

    def test_clock_skew_from_spec(self):
        plan = FaultPlan(specs=[FaultSpec("clock.skew", skew_s=1.5)])
        assert plan.clock_skew() == 1.5
        assert FaultPlan().clock_skew() == 0.0


# --------------------------------------------------------------------------- #
# Hooks
# --------------------------------------------------------------------------- #
class TestHooks:
    def test_no_plan_by_default(self):
        assert active_plan() is None

    def test_install_uninstall_roundtrip(self):
        plan = FaultPlan()
        install(plan)
        try:
            assert active_plan() is plan
        finally:
            uninstall()
        assert active_plan() is None

    def test_fault_scope_installs_and_cleans_up(self):
        plan = FaultPlan()
        with fault_scope(plan) as scoped:
            assert scoped is plan
            assert active_plan() is plan
        assert active_plan() is None

    def test_fault_scope_cleans_up_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with fault_scope(FaultPlan()):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_fault_scope_rejects_nesting(self):
        with fault_scope(FaultPlan()):
            with pytest.raises(RuntimeError, match="already installed"):
                with fault_scope(FaultPlan()):
                    pass  # pragma: no cover
        assert active_plan() is None
