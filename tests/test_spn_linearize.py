"""Tests for lowering SPNs to operation lists and vector programs."""

import numpy as np
import pytest

from repro.spn.evaluate import evaluate
from repro.spn.linearize import OP_ADD, OP_MUL, Operation, linearize


class TestOperationBasics:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Operation(index=0, op="div", arg0=0, arg1=1)

    def test_op_predicates(self):
        add = Operation(index=0, op=OP_ADD, arg0=0, arg1=1)
        mul = Operation(index=1, op=OP_MUL, arg0=0, arg1=1)
        assert add.is_add and not add.is_mul
        assert mul.is_mul and not mul.is_add


class TestLowering:
    def test_execute_matches_reference(self, mixture_spn):
        ops = linearize(mixture_spn)
        for evidence in ({}, {0: 0}, {0: 1, 1: 0}, {0: 1, 1: 1}):
            assert ops.execute(evidence) == pytest.approx(evaluate(mixture_spn, evidence))

    def test_execute_matches_reference_random(self, small_random_spn, rng):
        ops = linearize(small_random_spn)
        for _ in range(10):
            evidence = {v: int(rng.integers(0, 2)) for v in small_random_spn.variables()}
            assert ops.execute(evidence) == pytest.approx(evaluate(small_random_spn, evidence))

    def test_rat_spn_matches_reference(self, small_rat_spn, small_rat_ops, rng):
        for _ in range(5):
            evidence = {v: int(rng.integers(0, 2)) for v in small_rat_spn.variables()}
            assert small_rat_ops.execute(evidence) == pytest.approx(
                evaluate(small_rat_spn, evidence)
            )

    def test_binary_op_count_matches_stats(self, mixture_spn):
        ops = linearize(mixture_spn)
        assert ops.n_operations == mixture_spn.stats().n_binary_ops

    def test_all_operations_are_binary_and_ordered(self, small_rat_ops):
        n_inputs = small_rat_ops.n_inputs
        for op in small_rat_ops.operations:
            assert op.arg0 < n_inputs + op.index
            assert op.arg1 < n_inputs + op.index

    def test_chain_decomposition_is_deeper(self, small_rat_spn):
        balanced = linearize(small_rat_spn, decompose="balanced")
        chain = linearize(small_rat_spn, decompose="chain")
        assert chain.n_operations == balanced.n_operations
        assert chain.depth() >= balanced.depth()
        assert chain.execute({0: 1}) == pytest.approx(balanced.execute({0: 1}))

    def test_unknown_decomposition_rejected(self, tiny_spn):
        with pytest.raises(ValueError):
            linearize(tiny_spn, decompose="magic")

    def test_leaf_only_spn(self):
        from repro.spn.graph import SPN

        spn = SPN()
        leaf = spn.add_indicator(0, 1)
        spn.set_root(leaf)
        ops = linearize(spn)
        assert ops.n_operations == 0
        assert ops.execute({0: 1}) == pytest.approx(1.0)
        assert ops.execute({0: 0}) == pytest.approx(0.0)

    def test_input_vector_layout_deterministic(self, mixture_spn):
        first = linearize(mixture_spn)
        second = linearize(mixture_spn)
        assert [s.kind for s in first.inputs] == [s.kind for s in second.inputs]
        assert np.allclose(first.input_vector({0: 1}), second.input_vector({0: 1}))

    def test_wrong_input_vector_length_rejected(self, mixture_spn):
        ops = linearize(mixture_spn)
        with pytest.raises(ValueError):
            ops.execute_values(np.zeros(ops.n_inputs + 1))


class TestGraphShapeQueries:
    def test_levels_respect_dependencies(self, small_rat_ops):
        levels = small_rat_ops.levels()
        n_inputs = small_rat_ops.n_inputs
        for op in small_rat_ops.operations:
            for arg in (op.arg0, op.arg1):
                if arg >= n_inputs:
                    assert levels[arg - n_inputs] < levels[op.index]

    def test_groups_partition_operations(self, small_rat_ops):
        groups = small_rat_ops.groups()
        flattened = sorted(i for g in groups for i in g)
        assert flattened == list(range(small_rat_ops.n_operations))

    def test_groups_are_independent(self, small_rat_ops):
        n_inputs = small_rat_ops.n_inputs
        for group in small_rat_ops.groups():
            dests = {n_inputs + i for i in group}
            for i in group:
                op = small_rat_ops.operations[i]
                assert op.arg0 not in dests
                assert op.arg1 not in dests

    def test_depth_equals_number_of_groups(self, small_rat_ops):
        assert small_rat_ops.depth() == len(small_rat_ops.groups())

    def test_fanout_counts_operand_references(self, mixture_spn):
        ops = linearize(mixture_spn)
        fanout = ops.fanout()
        total_refs = sum(fanout)
        assert total_refs == 2 * ops.n_operations

    def test_average_parallelism(self, small_rat_ops):
        expected = small_rat_ops.n_operations / small_rat_ops.depth()
        assert small_rat_ops.average_parallelism() == pytest.approx(expected)

    def test_op_counts(self, mixture_spn):
        ops = linearize(mixture_spn)
        adds, muls = ops.op_counts()
        assert adds + muls == ops.n_operations
        assert adds > 0 and muls > 0


class TestVectorProgram:
    def test_matches_operation_list(self, small_rat_spn, small_rat_ops, rng):
        program = small_rat_ops.to_vector_program()
        assert program.n_operations == small_rat_ops.n_operations
        for _ in range(5):
            evidence = {v: int(rng.integers(0, 2)) for v in small_rat_spn.variables()}
            assert program.execute(evidence) == pytest.approx(small_rat_ops.execute(evidence))

    def test_op_select_encoding(self, mixture_spn):
        ops = linearize(mixture_spn)
        program = ops.to_vector_program()
        for op, selector in zip(ops.operations, program.op_select):
            assert selector == (0 if op.is_add else 1)
