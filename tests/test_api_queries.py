"""Tests for the unified typed query API (repro.api)."""

import json
import math

import numpy as np
import pytest

from repro.api import (
    MPE,
    QUERY_KINDS,
    Conditional,
    InferenceSession,
    Likelihood,
    LogLikelihood,
    Marginal,
    QueryKind,
    as_kind,
    deserialize_query,
    evidence_rows,
    query_type,
    serialize_query,
    session_for,
)
from repro.platforms import available_platforms
from repro.spn.evaluate import (
    MARGINALIZED,
    evaluate,
    evaluate_batch,
    evaluate_log,
    evaluate_log_batch,
)
from repro.spn.generate import RatSpnConfig, generate_rat_spn, random_evidence
from repro.spn.queries import mpe_row

N_VARS = 8


@pytest.fixture(scope="module")
def spn():
    return generate_rat_spn(
        RatSpnConfig(n_vars=N_VARS, depth=N_VARS, repetitions=2, n_sums=2, seed=3)
    )


@pytest.fixture(scope="module")
def rows():
    return random_evidence(N_VARS, observed_fraction=0.6, seed=7, n_samples=24)


@pytest.fixture()
def session(spn):
    return InferenceSession(spn)


def conditional_batch(rows, value=1, var=0):
    """A Conditional querying ``var`` with ``var`` removed from the evidence."""
    evidence = np.array(rows, copy=True)
    evidence[:, var] = MARGINALIZED
    query = np.full_like(evidence, MARGINALIZED)
    query[:, var] = value
    return Conditional(evidence=evidence, query=query)


# --------------------------------------------------------------------------- #
# Kinds
# --------------------------------------------------------------------------- #
class TestQueryKind:
    def test_kinds_compare_equal_to_raw_strings(self):
        assert QueryKind.LIKELIHOOD == "likelihood"
        assert QueryKind.LOG_LIKELIHOOD == "log_likelihood"
        assert QueryKind.MARGINAL == "marginal"
        assert QueryKind.CONDITIONAL == "conditional"
        assert QueryKind.MPE == "mpe"
        assert QueryKind.SAMPLE == "sample"
        assert QueryKind.EXPECTATION == "expectation"
        assert QueryKind.ENTROPY == "entropy"
        assert QueryKind.MUTUAL_INFORMATION == "mutual_information"
        assert QueryKind.CLASSIFY == "classify"
        assert len(QUERY_KINDS) == 10

    def test_as_kind_accepts_strings_and_members(self):
        assert as_kind("mpe") is QueryKind.MPE
        assert as_kind(QueryKind.MARGINAL) is QueryKind.MARGINAL

    def test_unknown_kind_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown query kind 'gradient'"):
            as_kind("gradient")

    def test_query_type_maps_every_kind(self):
        assert query_type("likelihood") is Likelihood
        assert query_type(QueryKind.CONDITIONAL) is Conditional
        for kind in QUERY_KINDS:
            assert query_type(kind).kind is kind


# --------------------------------------------------------------------------- #
# Query construction and validation
# --------------------------------------------------------------------------- #
class TestQueryConstruction:
    def test_mapping_evidence_normalizes_to_one_row(self):
        q = Likelihood({0: 1, 3: 0})
        assert q.evidence.shape == (1, 4)
        assert q.evidence[0].tolist() == [1, -1, -1, 0]
        assert q.n_rows == 1

    def test_single_row_and_batch_normalize(self, rows):
        assert Likelihood(rows[0]).evidence.shape == (1, N_VARS)
        assert Likelihood(rows).evidence.shape == rows.shape

    def test_fractional_evidence_rejected(self):
        with pytest.raises(ValueError, match="integral"):
            Likelihood(np.array([0.7, 1.0]))
        with pytest.raises(ValueError, match="integral"):
            Likelihood({0: 0.5})

    def test_evidence_rows_pads_to_width(self):
        assert evidence_rows({1: 1}, n_vars=5).shape == (1, 5)
        assert evidence_rows(np.array([[1, 0]]), n_vars=5).shape == (1, 5)
        # Wider arrays are kept, not trimmed.
        wide = evidence_rows(np.array([[1, 0, 1]]), n_vars=2)
        assert wide.shape == (1, 3)

    def test_negative_evidence_variable_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            evidence_rows({-2: 1})

    def test_conditional_conflict_rejected(self):
        with pytest.raises(ValueError, match="disagree on variable 0"):
            Conditional(evidence={0: 0}, query={0: 1})

    def test_conditional_rejects_positional_assignments(self):
        # query/evidence must be keyword arguments: a positional call could
        # silently bind them swapped and compute the inverse conditional.
        with pytest.raises(TypeError):
            Conditional({0: 1}, {1: 0})

    def test_conditional_row_count_mismatch_rejected(self, rows):
        with pytest.raises(ValueError, match="row counts differ"):
            Conditional(evidence=rows[:3], query=rows[:2])

    def test_conditional_requires_query(self, rows):
        with pytest.raises(ValueError, match="requires a query"):
            Conditional(evidence=rows[:1])

    def test_conditional_joint_merges_query_over_evidence(self):
        cond = Conditional(evidence={1: 0}, query={0: 1})
        assert cond.joint[0].tolist() == [1, 0]

    def test_group_key_separates_flag_variants(self, rows):
        plain = Marginal(rows)
        normalized = Marginal(rows, normalize=True)
        assert plain.group_key() != normalized.group_key()
        assert plain.group_key() == Marginal(rows[:1]).group_key()

    def test_value_equality_and_hashability(self, rows):
        # ndarray fields must not break ==/hash: equality is by value
        # (array contents + flags), hashing stays identity-based.
        assert Likelihood(rows) == Likelihood(np.array(rows, copy=True))
        assert Likelihood(rows) != Likelihood(rows[:1])
        assert Marginal(rows) != Marginal(rows, normalize=True)
        assert Likelihood(rows) != LogLikelihood(rows)
        cond = conditional_batch(rows)
        same = Conditional(evidence=cond.evidence.copy(), query=cond.query.copy())
        assert cond == same
        assert cond != Conditional(evidence=cond.evidence, query=cond.query, log=True)
        {cond: "hashable"}  # identity hash: must not raise

    def test_split_join_round_trip(self, rows):
        q = conditional_batch(rows)
        rebuilt = Conditional.join_rows(q.split_rows(), **q.params())
        assert np.array_equal(rebuilt.evidence, q.evidence)
        assert np.array_equal(rebuilt.query, q.query)


# --------------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------------- #
class TestSerialization:
    def queries(self, rows):
        return [
            Likelihood(rows),
            LogLikelihood(rows[:1]),
            Marginal(rows, log=True, normalize=True),
            conditional_batch(rows),
            MPE(rows[:2], refine=False),
        ]

    def test_json_round_trip_is_bit_identical(self, rows):
        for query in self.queries(rows):
            payload = json.loads(json.dumps(serialize_query(query)))
            restored = deserialize_query(payload)
            assert type(restored) is type(query)
            assert np.array_equal(restored.evidence, query.evidence)
            assert restored.params() == query.params()
            if isinstance(query, Conditional):
                assert np.array_equal(restored.query, query.query)

    def test_round_trip_executes_identically(self, session, rows):
        for query in self.queries(rows):
            restored = deserialize_query(json.loads(json.dumps(serialize_query(query))))
            expected = session.run(query)
            got = session.run(restored)
            if isinstance(query, MPE):
                assert got == expected
            else:
                assert np.array_equal(got, expected)

    def test_empty_batch_round_trip_preserves_shape(self, session):
        # Regression: a (0, n) batch serializes to [], which alone cannot
        # be told apart from a (1, 0) row — the payload's explicit shape
        # keeps zero-row queries lossless end to end.
        empty = np.zeros((0, N_VARS), dtype=np.int64)
        for query in (Likelihood(empty), Conditional(evidence=empty, query=empty)):
            payload = json.loads(json.dumps(serialize_query(query)))
            restored = deserialize_query(payload)
            assert restored.evidence.shape == (0, N_VARS)
            assert session.run(restored).shape == (0,)

    def test_payload_without_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            deserialize_query({"evidence": [[1, 0]]})

    def test_corrupt_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            deserialize_query({"kind": "gradient", "evidence": [[1, 0]]})


# --------------------------------------------------------------------------- #
# Planning (the minimal-evaluations contract)
# --------------------------------------------------------------------------- #
class TestPlanning:
    def test_value_kinds_plan_one_pass(self, session, rows):
        assert session.plan(Likelihood(rows)).n_evaluations == 1
        assert session.plan(LogLikelihood(rows)).n_evaluations == 1
        assert session.plan(Marginal(rows)).n_evaluations == 1
        assert session.plan(Marginal(rows, log=True)).n_evaluations == 1

    def test_normalized_marginal_plans_partition_pass_once(self, spn, rows):
        session = InferenceSession(spn)
        assert session.plan(Marginal(rows, normalize=True)).n_evaluations == 2
        session.run(Marginal(rows, normalize=True))  # caches log Z
        assert session.plan(Marginal(rows, normalize=True)).n_evaluations == 1

    def test_conditional_plans_exactly_two_passes(self, session, rows):
        plan = session.plan(conditional_batch(rows))
        assert plan.n_evaluations == 2
        assert [p.operand for p in plan.passes] == ["joint", "evidence"]
        assert all(p.domain == "log" for p in plan.passes)

    def test_conditional_executes_exactly_two_passes_per_batch(self, spn, rows):
        # The acceptance-criterion hook: a Conditional batch is 2 tape
        # evaluations regardless of the row count — never 2 * n_rows.
        observed = []
        session = InferenceSession(spn)
        session.on_evaluate = lambda domain, n: observed.append((domain, n))
        for batch in (rows[:1], rows[:5], rows):
            observed.clear()
            before = session.evaluations
            session.run(conditional_batch(batch))
            assert session.evaluations - before == 2
            assert observed == [("log", len(batch)), ("log", len(batch))]

    def test_partition_pass_is_cached_across_runs(self, spn, rows):
        session = InferenceSession(spn)
        before = session.evaluations
        session.run(Marginal(rows, normalize=True))
        assert session.evaluations - before == 2  # evidence + partition
        before = session.evaluations
        session.run(Marginal(rows, log=True, normalize=True))
        assert session.evaluations - before == 1  # partition served from cache

    def test_unknown_query_type_rejected(self, session):
        with pytest.raises(TypeError):
            session.plan(object())
        with pytest.raises(TypeError):
            session.run({"not": "a query"})


# --------------------------------------------------------------------------- #
# Execution semantics
# --------------------------------------------------------------------------- #
class TestExecution:
    def test_likelihood_matches_evaluate_batch(self, spn, session, rows):
        assert np.array_equal(
            session.run(Likelihood(rows)), evaluate_batch(spn, rows, engine="vectorized")
        )

    def test_log_likelihood_matches_evaluate_log_batch(self, spn, session, rows):
        assert np.array_equal(
            session.run(LogLikelihood(rows)),
            evaluate_log_batch(spn, rows, engine="vectorized"),
        )

    def test_marginal_flags(self, spn, session, rows):
        linear = session.run(Marginal(rows))
        assert np.array_equal(linear, session.run(Likelihood(rows)))
        log = session.run(Marginal(rows, log=True))
        assert np.allclose(np.exp(log), linear, rtol=1e-12)
        log_z = session.log_partition()
        normalized = session.run(Marginal(rows, log=True, normalize=True))
        assert np.allclose(normalized, log - log_z, rtol=1e-12)
        linear_normalized = session.run(Marginal(rows, normalize=True))
        assert np.array_equal(linear_normalized, np.exp(normalized))

    def test_conditional_matches_ratio_of_marginals(self, spn, session, rows):
        cond = conditional_batch(rows)
        got = session.run(cond)
        joint = evaluate_log_batch(spn, cond.joint, engine="vectorized")
        evidence = evaluate_log_batch(spn, cond.evidence, engine="vectorized")
        assert np.array_equal(got, np.exp(joint - evidence))
        log_got = session.run(
            Conditional(evidence=cond.evidence, query=cond.query, log=True)
        )
        assert np.array_equal(log_got, joint - evidence)

    def test_conditional_distribution_sums_to_one(self, session, rows):
        total = sum(
            session.run(conditional_batch(rows, value=v)) for v in (0, 1)
        )
        assert np.allclose(total, 1.0)

    def test_conditional_zero_probability_evidence_is_nan(self):
        from repro.spn.graph import SPN

        spn = SPN()
        x0 = spn.add_sum([spn.add_indicator(0, 1)], weights=[1.0])
        x1 = SPN.bernoulli_leaf(spn, 1, 0.5)
        spn.set_root(spn.add_product([x0, x1]))
        session = InferenceSession(spn)
        value = session.run(Conditional(evidence={0: 0}, query={1: 1}))
        assert math.isnan(value[0])

    def test_mpe_matches_mpe_row(self, spn, session, rows):
        from repro.spn.evaluate import row_evidence

        got = session.run(MPE(rows[:4]))
        assert got == [mpe_row(spn, row_evidence(row)) for row in rows[:4]]

    def test_mpe_refine_flag_passes_through(self, spn, rows):
        session = InferenceSession(spn)
        unrefined = session.run(MPE(rows[:2], refine=False))
        from repro.spn.evaluate import row_evidence

        assert unrefined == [
            mpe_row(spn, row_evidence(row), refine=False) for row in rows[:2]
        ]

    def test_single_row_and_batched_execution_bit_identical(self, session, rows):
        batched = session.run(Likelihood(rows))
        singles = [session.run(Likelihood(rows[i]))[0] for i in range(len(rows))]
        assert np.array_equal(np.array(singles), batched)
        cond = conditional_batch(rows)
        cond_batched = session.run(cond)
        cond_singles = [
            session.run(Conditional(evidence=cond.evidence[i], query=cond.query[i]))[0]
            for i in range(len(rows))
        ]
        assert np.array_equal(np.array(cond_singles), cond_batched)

    def test_empty_batch(self, session):
        empty = np.zeros((0, N_VARS), dtype=np.int64)
        assert session.run(Likelihood(empty)).shape == (0,)
        assert session.run(MPE(empty)) == []

    def test_every_kind_on_every_engine(self, spn, rows):
        """All five query kinds execute batched on every functional engine."""
        results = {}
        for engine in ("python", "vectorized"):
            session = InferenceSession(spn, engine=engine)
            results[engine] = {
                "likelihood": session.run(Likelihood(rows)),
                "log_likelihood": session.run(LogLikelihood(rows)),
                "marginal": session.run(Marginal(rows, log=True, normalize=True)),
                "conditional": session.run(conditional_batch(rows)),
                "mpe": session.run(MPE(rows[:3])),
            }
        for kind in ("likelihood", "log_likelihood", "marginal", "conditional"):
            assert np.allclose(
                results["python"][kind], results["vectorized"][kind], rtol=1e-9
            ), kind
        assert results["python"]["mpe"] == results["vectorized"]["mpe"]

    def test_check_mode_cross_checks(self, spn, rows):
        session = InferenceSession(spn, check=True)
        assert np.array_equal(
            session.run(Likelihood(rows)),
            evaluate_batch(spn, rows, engine="vectorized"),
        )


# --------------------------------------------------------------------------- #
# Session binding, encoding and caching
# --------------------------------------------------------------------------- #
class TestSession:
    def test_suite_name_binding(self):
        session = InferenceSession("Banknote")
        assert session.name == "Banknote"
        assert session.n_vars == 4
        value = session.run(Likelihood({0: 1}))
        from repro.suite.registry import build_benchmark

        row = np.full((1, 4), MARGINALIZED, dtype=np.int64)
        row[0, 0] = 1
        assert value[0] == evaluate_batch(
            build_benchmark("Banknote"), row, engine="vectorized"
        )[0]

    def test_unknown_suite_name_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            InferenceSession("NoSuchModel")

    def test_unknown_engine_raises(self, spn):
        with pytest.raises(ValueError, match="unknown engine"):
            InferenceSession(spn, engine="cuda")

    def test_encode_pads_and_keeps_wide_rows(self, session):
        padded = session.encode({1: 1})
        assert padded.shape == (1, N_VARS)
        wide = session.encode(np.zeros((2, N_VARS + 3), dtype=np.int64))
        assert wide.shape == (2, N_VARS + 3)

    def test_out_of_range_evidence_survives_into_mpe(self, spn):
        session = InferenceSession(spn)
        completion = session.run(MPE({N_VARS + 2: 1}))[0]
        assert completion[N_VARS + 2] == 1

    def test_warm_session_pins_tape(self, spn):
        assert InferenceSession(spn, warm=True).tape is not None
        assert InferenceSession(spn).tape is None
        assert InferenceSession(spn, engine="python", warm=True).tape is None

    def test_log_partition_matches_reference(self, spn):
        session = InferenceSession(spn)
        assert session.log_partition() == pytest.approx(evaluate_log(spn, {}))

    def test_session_for_is_cached_per_model_and_engine(self, spn):
        assert session_for(spn) is session_for(spn)
        assert session_for(spn) is not session_for(spn, engine="python")
        from repro.suite.registry import benchmark_session

        assert session_for("Banknote") is benchmark_session("Banknote")

    def test_session_for_cache_is_bounded(self):
        # Regression: sessions strongly reference their models, so the
        # wrapper cache must be LRU-bounded — a model-churning caller
        # (structure search scoring many candidate SPNs) must not leak
        # every SPN it ever touched.
        import gc
        import weakref

        from repro.api.session import _SESSION_CACHE, _SESSION_CACHE_CAPACITY

        refs = []
        for seed in range(_SESSION_CACHE_CAPACITY + 8):
            model = generate_rat_spn(
                RatSpnConfig(n_vars=3, depth=3, repetitions=1, n_sums=1, seed=seed)
            )
            refs.append(weakref.ref(model))
            session_for(model)
        assert len(_SESSION_CACHE) <= _SESSION_CACHE_CAPACITY
        del model
        gc.collect()
        # The evicted early models are collectable again.
        assert any(ref() is None for ref in refs[:8])

    def test_throughput_on_every_registered_platform(self):
        session = InferenceSession("Banknote")
        for platform in available_platforms():
            result = session.throughput(platform)
            assert result.ops_per_cycle > 0
            assert result.cycles > 0

    def test_throughput_accepts_configured_engine(self):
        from repro.platforms import PLATFORM_GPU, get_engine

        session = InferenceSession("Banknote")
        slow = session.throughput(get_engine(PLATFORM_GPU).configured(n_threads=1))
        fast = session.throughput(get_engine(PLATFORM_GPU).configured(n_threads=256))
        assert fast.ops_per_cycle > slow.ops_per_cycle

    def test_object_model_throughput(self, spn):
        session = InferenceSession(spn)
        assert session.throughput("CPU").ops_per_cycle > 0


# --------------------------------------------------------------------------- #
# Scalar wrappers are single-row sessions
# --------------------------------------------------------------------------- #
class TestScalarWrappers:
    def test_wrappers_equal_single_row_sessions(self, spn):
        import warnings

        from repro.spn.queries import (
            conditional,
            log_marginal,
            marginal,
            most_probable_explanation,
        )

        session = InferenceSession(spn)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert marginal(spn, {0: 1}) == session.run(Marginal({0: 1}))[0]
            assert log_marginal(spn, {0: 1}) == session.run(Marginal({0: 1}, log=True))[0]
            assert (
                conditional(spn, {0: 1}, {1: 0})
                == session.run(Conditional(evidence={1: 0}, query={0: 1}))[0]
            )
            assert most_probable_explanation(spn, {0: 1}) == session.run(MPE({0: 1}))[0]

    def test_wrappers_emit_deprecation_warning(self, spn):
        from repro.spn.queries import marginal

        with pytest.warns(DeprecationWarning, match="deprecated"):
            marginal(spn, {0: 1})

    def test_marginal_still_matches_reference_evaluate(self, spn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.spn.queries import marginal

            assert marginal(spn, {0: 1}) == pytest.approx(evaluate(spn, {0: 1}))
