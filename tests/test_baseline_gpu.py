"""Tests for the GPU (SIMT) execution model and its functional emulation."""

import pytest

from repro.baselines.gpu import GpuConfig, execute_gpu_kernel, simulate_gpu, thread_sweep
from repro.spn.evaluate import evaluate
from repro.spn.linearize import linearize
from repro.suite.registry import benchmark_operation_list, build_benchmark


class TestGpuConfig:
    def test_defaults_are_valid(self):
        GpuConfig()

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            GpuConfig(n_threads=0)

    def test_invalid_allocation(self):
        with pytest.raises(ValueError):
            GpuConfig(bank_allocation="random")

    def test_invalid_hiding_warps(self):
        with pytest.raises(ValueError):
            GpuConfig(latency_hiding_warps=0)


class TestFunctionalKernel:
    def test_matches_reference_on_fixture(self, mixture_spn):
        ops = linearize(mixture_spn)
        for evidence in ({}, {0: 1}, {0: 0, 1: 1}):
            expected = evaluate(mixture_spn, evidence)
            got = execute_gpu_kernel(ops, ops.input_vector(evidence))
            assert got == pytest.approx(expected)

    def test_matches_reference_on_benchmark(self, rng):
        spn = build_benchmark("Banknote")
        ops = benchmark_operation_list("Banknote")
        for _ in range(3):
            evidence = {v: int(rng.integers(0, 2)) for v in spn.variables()}
            got = execute_gpu_kernel(ops, ops.input_vector(evidence))
            assert got == pytest.approx(evaluate(spn, evidence))

    def test_thread_count_does_not_change_result(self, small_rat_ops):
        vec = small_rat_ops.input_vector({0: 1, 1: 0})
        results = {
            t: execute_gpu_kernel(small_rat_ops, vec, GpuConfig(n_threads=t))
            for t in (1, 32, 256)
        }
        assert len({round(v, 12) for v in results.values()}) == 1


class TestGpuTiming:
    def test_empty_operation_list(self):
        from repro.spn.graph import SPN

        spn = SPN()
        spn.set_root(spn.add_indicator(0, 1))
        result = simulate_gpu(linearize(spn))
        assert result.cycles == 0

    def test_multithread_beats_single_thread(self):
        # Use a benchmark-sized SPN: on very small networks the per-group
        # synchronization overhead makes a 256-thread block slower than a
        # single thread, which is consistent with the model's assumptions.
        ops = benchmark_operation_list("MSNBC")
        single = simulate_gpu(ops, GpuConfig(n_threads=1))
        block = simulate_gpu(ops, GpuConfig(n_threads=256))
        assert block.ops_per_cycle > single.ops_per_cycle

    def test_sublinear_scaling(self):
        """256 threads must NOT be 256x faster than one thread (Fig. 2c)."""
        ops = benchmark_operation_list("MSNBC")
        sweep = thread_sweep(ops, (1, 256))
        scaling = sweep[256].ops_per_cycle / sweep[1].ops_per_cycle
        assert 1.5 < scaling < 20.0

    def test_thread_sweep_monotone_on_wide_benchmark(self):
        ops = benchmark_operation_list("Audio")
        sweep = thread_sweep(ops)
        values = [sweep[t].ops_per_cycle for t in (1, 32, 64, 128, 256)]
        assert all(b >= a * 0.95 for a, b in zip(values, values[1:]))

    def test_throughput_in_paper_regime(self):
        """GPU peak throughput is of order one operation per cycle."""
        result = simulate_gpu(benchmark_operation_list("Audio"))
        assert 0.2 <= result.ops_per_cycle <= 2.5

    def test_divergent_warps_counted(self, small_rat_ops):
        result = simulate_gpu(small_rat_ops)
        assert result.n_divergent_warps >= 0
        assert result.n_transactions > 0

    def test_coloring_not_worse_than_interleaved(self):
        ops = benchmark_operation_list("Banknote")
        colored = simulate_gpu(ops, GpuConfig(bank_allocation="coloring"))
        interleaved = simulate_gpu(ops, GpuConfig(bank_allocation="interleaved"))
        assert colored.n_conflict_transactions <= interleaved.n_conflict_transactions

    def test_higher_sync_cost_is_slower(self, small_rat_ops):
        cheap = simulate_gpu(small_rat_ops, GpuConfig(sync_cost=5))
        expensive = simulate_gpu(small_rat_ops, GpuConfig(sync_cost=100))
        assert expensive.cycles > cheap.cycles

    def test_groups_reported(self, small_rat_ops):
        result = simulate_gpu(small_rat_ops)
        assert result.n_groups == small_rat_ops.depth()
