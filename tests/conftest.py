"""Shared fixtures for the test suite: small deterministic SPNs and machines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.processor.config import ptree_config, pvect_config


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "lifecycle: model-lifecycle tests (AOT artifacts, registry, hot-swap)",
    )
    config.addinivalue_line(
        "markers",
        "statics: static-verification tests (IR verifier, abstract "
        "interpretation, project lint)",
    )
from repro.spn.generate import GeneratorConfig, RatSpnConfig, generate_rat_spn, generate_spn
from repro.spn.graph import SPN
from repro.spn.linearize import linearize


@pytest.fixture()
def tiny_spn() -> SPN:
    """A hand-built two-variable SPN with known probabilities.

    P(X0, X1) with X0 ~ Bernoulli(0.3) and X1 ~ Bernoulli(0.8), independent.
    """
    spn = SPN()
    x0_0 = spn.add_indicator(0, 0)
    x0_1 = spn.add_indicator(0, 1)
    x1_0 = spn.add_indicator(1, 0)
    x1_1 = spn.add_indicator(1, 1)
    d0 = spn.add_sum([x0_0, x0_1], weights=[0.7, 0.3])
    d1 = spn.add_sum([x1_0, x1_1], weights=[0.2, 0.8])
    root = spn.add_product([d0, d1])
    spn.set_root(root)
    return spn


@pytest.fixture()
def mixture_spn() -> SPN:
    """A two-component mixture over two binary variables (not factorized)."""
    spn = SPN()
    x0_0 = spn.add_indicator(0, 0)
    x0_1 = spn.add_indicator(0, 1)
    x1_0 = spn.add_indicator(1, 0)
    x1_1 = spn.add_indicator(1, 1)
    c0 = spn.add_product(
        [spn.add_sum([x0_0, x0_1], weights=[0.9, 0.1]),
         spn.add_sum([x1_0, x1_1], weights=[0.9, 0.1])]
    )
    c1 = spn.add_product(
        [spn.add_sum([x0_0, x0_1], weights=[0.1, 0.9]),
         spn.add_sum([x1_0, x1_1], weights=[0.1, 0.9])]
    )
    root = spn.add_sum([c0, c1], weights=[0.4, 0.6])
    spn.set_root(root)
    return spn


@pytest.fixture()
def small_random_spn() -> SPN:
    """A deterministic recursive random SPN over 8 variables."""
    return generate_spn(GeneratorConfig(n_vars=8, max_depth=6, seed=7))


@pytest.fixture()
def small_rat_spn() -> SPN:
    """A deterministic region-graph SPN over 10 variables (vtree-shaped)."""
    return generate_rat_spn(
        RatSpnConfig(n_vars=10, depth=10, repetitions=2, n_sums=2, split_balance=0.2, seed=3)
    )


@pytest.fixture()
def small_rat_ops(small_rat_spn):
    """The small RAT SPN lowered to an operation list."""
    return linearize(small_rat_spn)


@pytest.fixture()
def ptree():
    """The paper's Ptree configuration."""
    return ptree_config()


@pytest.fixture()
def pvect():
    """The paper's Pvect configuration."""
    return pvect_config()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
