"""Tests for the vectorized tape engine (:mod:`repro.spn.compiled`)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.cpu import execute_baseline
from repro.spn.compiled import (
    ENGINES,
    CompiledTape,
    EngineMismatchError,
    cached_tape,
    compile_tape,
    resolve_engine,
)
from repro.spn.evaluate import (
    MARGINALIZED,
    evaluate_batch,
    evaluate_log,
    evaluate_log_batch,
)
from repro.spn.generate import generate_rat_spn, random_evidence
from repro.spn.graph import SPN
from repro.spn.linearize import linearize
from strategies import wide_rat_configs as rat_configs

_SETTINGS = settings(max_examples=25, deadline=None)


class TestEngineAgreement:
    """Property: the vectorized engine matches the Python reference."""

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_linear_domain_matches_reference(self, config, seed):
        spn = generate_rat_spn(config)
        data = random_evidence(
            config.n_vars, observed_fraction=0.7, seed=seed, n_samples=16
        )
        reference = evaluate_batch(spn, data, engine="python")
        vectorized = evaluate_batch(spn, data, engine="vectorized")
        np.testing.assert_allclose(vectorized, reference, rtol=1e-9)

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_log_domain_matches_reference(self, config, seed):
        spn = generate_rat_spn(config)
        data = random_evidence(
            config.n_vars, observed_fraction=0.7, seed=seed, n_samples=8
        )
        reference = evaluate_log_batch(spn, data, engine="python")
        vectorized = evaluate_log_batch(spn, data, engine="vectorized")
        np.testing.assert_allclose(vectorized, reference, rtol=1e-9, atol=1e-12)

    def test_log_domain_handles_zero_probability_rows(self):
        # An indicator-only network where evidence can contradict the model.
        spn = SPN()
        x0 = spn.add_indicator(0, 0)
        x1 = spn.add_indicator(1, 0)
        spn.set_root(spn.add_product([x0, x1]))
        data = np.array([[0, 0], [1, 0], [0, 1]])
        result = evaluate_log_batch(spn, data, engine="vectorized")
        assert result[0] == pytest.approx(0.0)
        assert result[1] == -math.inf
        assert result[2] == -math.inf

    def test_check_flag_runs_clean(self, small_rat_spn):
        data = random_evidence(10, observed_fraction=0.5, seed=2, n_samples=12)
        evaluate_batch(small_rat_spn, data, engine="vectorized", check=True)
        evaluate_log_batch(small_rat_spn, data, engine="vectorized", check=True)

    def test_slotwise_cross_check_against_operation_list(self, small_rat_ops):
        tape = compile_tape(small_rat_ops)
        evidence = {0: 1, 3: 0, 7: 1}
        reference = small_rat_ops.execute_values(small_rat_ops.input_vector(evidence))
        row = np.full((1, 10), MARGINALIZED, dtype=np.int64)
        for var, value in evidence.items():
            row[0, var] = value
        slots = tape.execute_slots(row)[:, 0]
        for source_slot in range(small_rat_ops.n_slots):
            assert slots[tape.slot_map[source_slot]] == pytest.approx(
                reference[source_slot], rel=1e-12
            )

    def test_execute_matches_operation_list_execute(self, small_rat_ops):
        tape = compile_tape(small_rat_ops)
        for evidence in ({}, {0: 1}, {1: 0, 2: 1, 9: 0}):
            assert tape.execute(evidence) == pytest.approx(
                small_rat_ops.execute(evidence), rel=1e-12
            )
            assert tape.execute(evidence, log_domain=True) == pytest.approx(
                math.log(small_rat_ops.execute(evidence)), rel=1e-9
            )


class TestTapeStructure:
    def test_kernels_write_contiguous_monotonic_ranges(self, small_rat_ops):
        tape = compile_tape(small_rat_ops)
        expected_start = tape.n_inputs
        previous_level = 0
        for kernel in tape.kernels:
            assert kernel.dest_start == expected_start
            assert kernel.width == len(kernel.arg0) == len(kernel.arg1)
            assert kernel.level >= previous_level
            # Operands are always produced before the kernel runs.
            assert int(kernel.arg0.max()) < kernel.dest_start
            assert int(kernel.arg1.max()) < kernel.dest_start
            expected_start = kernel.dest_stop
            previous_level = kernel.level
        assert expected_start == tape.n_slots

    def test_shape_is_preserved(self, small_rat_ops):
        tape = compile_tape(small_rat_ops)
        assert tape.n_inputs == small_rat_ops.n_inputs
        assert tape.n_operations == small_rat_ops.n_operations
        assert tape.n_slots == small_rat_ops.n_slots
        assert tape.n_levels == small_rat_ops.depth()

    def test_compile_from_spn_equals_compile_from_ops(self, small_rat_spn):
        from_spn = compile_tape(small_rat_spn)
        from_ops = compile_tape(linearize(small_rat_spn))
        data = random_evidence(10, observed_fraction=0.6, seed=4, n_samples=5)
        np.testing.assert_array_equal(
            from_spn.execute_batch(data), from_ops.execute_batch(data)
        )

    def test_single_leaf_network(self):
        spn = SPN()
        spn.set_root(spn.add_indicator(0, 1))
        tape = compile_tape(spn)
        assert tape.n_kernels == 0
        data = np.array([[1], [0], [MARGINALIZED]])
        np.testing.assert_allclose(tape.execute_batch(data), [1.0, 0.0, 1.0])


class TestConventionsAndErrors:
    def test_unknown_engine_is_rejected(self, tiny_spn):
        data = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(ValueError, match="unknown engine"):
            evaluate_batch(tiny_spn, data, engine="cuda")
        with pytest.raises(ValueError, match="unknown engine"):
            evaluate_log_batch(tiny_spn, data, engine="cuda")
        assert resolve_engine("python") == "python"
        assert set(ENGINES) == {"python", "vectorized"}

    def test_non_2d_evidence_is_rejected(self, tiny_spn):
        with pytest.raises(ValueError, match="2-D"):
            evaluate_batch(tiny_spn, np.zeros(3, dtype=np.int64), engine="vectorized")

    def test_out_of_range_variables_marginalize(self, small_rat_spn):
        # Evidence with fewer columns than variables: the missing variables
        # are unobserved, exactly as in the reference engine.
        data = random_evidence(4, observed_fraction=1.0, seed=0, n_samples=6)
        reference = evaluate_batch(small_rat_spn, data, engine="python")
        vectorized = evaluate_batch(small_rat_spn, data, engine="vectorized")
        np.testing.assert_allclose(vectorized, reference, rtol=1e-9)

    def test_execute_baseline_engines_agree(self, small_rat_ops):
        data = random_evidence(10, observed_fraction=0.7, seed=9, n_samples=10)
        reference = execute_baseline(small_rat_ops, data, engine="python")
        vectorized = execute_baseline(
            small_rat_ops, data, engine="vectorized", check=True
        )
        np.testing.assert_allclose(vectorized, reference, rtol=1e-9)

    def test_mismatch_error_is_raised_on_corrupted_tape(self, small_rat_ops, monkeypatch):
        data = random_evidence(10, observed_fraction=0.7, seed=9, n_samples=4)
        monkeypatch.setattr(
            CompiledTape,
            "execute_batch",
            lambda self, d, log_domain=False: np.zeros(len(d)) + 0.123,
        )
        with pytest.raises(EngineMismatchError):
            execute_baseline(small_rat_ops, data, engine="vectorized", check=True)

    def test_any_negative_value_marginalizes_in_every_engine(self, small_rat_spn):
        # The MARGINALIZED convention: every negative value means "not
        # observed", not just the -1 sentinel, in all engines alike.
        small_rat_ops = linearize(small_rat_spn)
        data = random_evidence(10, observed_fraction=0.6, seed=3, n_samples=8)
        odd = data.copy()
        odd[odd == MARGINALIZED] = -7
        expected = evaluate_batch(small_rat_spn, data, engine="python")
        for values in (
            evaluate_batch(small_rat_spn, odd, engine="python"),
            evaluate_batch(small_rat_spn, odd, engine="vectorized"),
            execute_baseline(small_rat_ops, odd, engine="python"),
            execute_baseline(small_rat_ops, odd, engine="vectorized"),
        ):
            np.testing.assert_allclose(values, expected, rtol=1e-12)


class TestCachedTape:
    def test_same_object_reuses_the_tape(self, small_rat_spn):
        assert cached_tape(small_rat_spn) is cached_tape(small_rat_spn)
        ops = linearize(small_rat_spn)
        assert cached_tape(ops) is cached_tape(ops)
        assert cached_tape(ops) is not cached_tape(small_rat_spn)

    def test_mutated_operation_list_recompiles_despite_id_reuse(self, small_rat_spn):
        # The cache pins the fingerprinted children, so a replacement object
        # can never reuse a cached child's memory address — an id collision
        # masquerading as "unchanged" is impossible.
        from repro.spn.linearize import Operation

        ops = linearize(small_rat_spn)
        first = cached_tape(ops)
        expected = ops.execute({})
        old = ops.operations[-1]
        ops.operations[-1] = Operation(
            index=old.index, op=old.op, arg0=old.arg1, arg1=old.arg0
        )
        del old
        second = cached_tape(ops)
        assert second is not first
        assert second.execute({}) == pytest.approx(expected)

    def test_mutated_network_recompiles(self):
        spn = SPN()
        a = spn.add_indicator(0, 0)
        b = spn.add_indicator(0, 1)
        spn.set_root(spn.add_sum([a, b], [0.25, 0.75]))
        first = cached_tape(spn)
        spn.set_root(spn.add_sum([a, b], [0.5, 0.5]))
        second = cached_tape(spn)
        assert second is not first
        data = np.full((1, 1), MARGINALIZED, dtype=np.int64)
        assert second.execute_batch(data)[0] == pytest.approx(1.0)
