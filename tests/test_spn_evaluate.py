"""Tests for exact SPN evaluation (linear, log, batched)."""

import math

import numpy as np
import pytest

from repro.spn.evaluate import (
    MARGINALIZED,
    as_evidence_array,
    evaluate,
    evaluate_batch,
    evaluate_log,
    evaluate_log_batch,
    evaluate_nodes,
    partition_function,
    row_evidence,
)


class TestTinySpn:
    """The tiny fixture factorizes as P(X0) * P(X1) with known parameters."""

    def test_joint_probability(self, tiny_spn):
        assert evaluate(tiny_spn, {0: 1, 1: 1}) == pytest.approx(0.3 * 0.8)
        assert evaluate(tiny_spn, {0: 0, 1: 0}) == pytest.approx(0.7 * 0.2)

    def test_marginal_by_omission(self, tiny_spn):
        assert evaluate(tiny_spn, {0: 1}) == pytest.approx(0.3)
        assert evaluate(tiny_spn, {1: 0}) == pytest.approx(0.2)

    def test_marginal_sentinel(self, tiny_spn):
        assert evaluate(tiny_spn, {0: 1, 1: MARGINALIZED}) == pytest.approx(0.3)

    def test_partition_function_is_one(self, tiny_spn):
        assert partition_function(tiny_spn) == pytest.approx(1.0)

    def test_evaluate_nodes_includes_all_reachable(self, tiny_spn):
        values = evaluate_nodes(tiny_spn, {0: 1, 1: 1})
        assert set(values) == set(tiny_spn.topological_order())
        assert values[tiny_spn.root] == pytest.approx(0.24)


class TestMixture:
    def test_mixture_probability(self, mixture_spn):
        # P(0,0) = 0.4*0.81 + 0.6*0.01
        assert evaluate(mixture_spn, {0: 0, 1: 0}) == pytest.approx(0.4 * 0.81 + 0.6 * 0.01)

    def test_all_assignments_sum_to_one(self, mixture_spn):
        total = sum(
            evaluate(mixture_spn, {0: a, 1: b}) for a in (0, 1) for b in (0, 1)
        )
        assert total == pytest.approx(1.0)


class TestLogDomain:
    def test_matches_linear(self, mixture_spn):
        for evidence in ({0: 0}, {0: 1, 1: 1}, {}):
            linear = evaluate(mixture_spn, evidence)
            assert evaluate_log(mixture_spn, evidence) == pytest.approx(math.log(linear))

    def test_zero_probability_is_minus_inf(self):
        from repro.spn.graph import SPN

        spn = SPN()
        i = spn.add_indicator(0, 1)
        root = spn.add_sum([i], weights=[1.0])
        spn.set_root(root)
        assert evaluate_log(spn, {0: 0}) == -math.inf

    def test_deep_network_does_not_underflow(self):
        from repro.spn.graph import SPN

        spn = SPN()
        leaves = [SPN.bernoulli_leaf(spn, v, 0.001) for v in range(300)]
        root = spn.add_product(leaves)
        spn.set_root(root)
        evidence = {v: 1 for v in range(300)}
        assert evaluate(spn, evidence) == pytest.approx(0.0)
        assert evaluate_log(spn, evidence) == pytest.approx(300 * math.log(0.001))

    def test_random_spn_log_matches_linear(self, small_random_spn):
        value = evaluate(small_random_spn, {0: 1, 3: 0})
        assert evaluate_log(small_random_spn, {0: 1, 3: 0}) == pytest.approx(math.log(value))


class TestBatchEvaluation:
    def test_matches_scalar(self, mixture_spn, rng):
        data = rng.integers(0, 2, size=(16, 2))
        batch = evaluate_batch(mixture_spn, data)
        for row, value in zip(data, batch):
            assert value == pytest.approx(evaluate(mixture_spn, dict(enumerate(row))))

    def test_marginalized_entries(self, mixture_spn):
        data = np.array([[MARGINALIZED, 1], [0, MARGINALIZED], [MARGINALIZED, MARGINALIZED]])
        batch = evaluate_batch(mixture_spn, data)
        assert batch[0] == pytest.approx(evaluate(mixture_spn, {1: 1}))
        assert batch[1] == pytest.approx(evaluate(mixture_spn, {0: 0}))
        assert batch[2] == pytest.approx(1.0)

    def test_missing_columns_marginalize(self, small_random_spn):
        data = np.zeros((3, 2), dtype=int)  # fewer columns than variables
        batch = evaluate_batch(small_random_spn, data)
        for row, value in zip(data, batch):
            assert value == pytest.approx(evaluate(small_random_spn, dict(enumerate(row))))

    def test_requires_2d_input(self, mixture_spn):
        with pytest.raises(ValueError):
            evaluate_batch(mixture_spn, np.zeros(4, dtype=int))


class TestEvidenceDtypeValidation:
    """Float evidence is coerced exactly or rejected — never truncated."""

    def test_integer_arrays_pass_through(self):
        data = np.array([[1, 0, MARGINALIZED]], dtype=np.int64)
        assert as_evidence_array(data) is data

    def test_integral_floats_coerce_exactly(self, mixture_spn):
        ints = np.array([[1, 0], [0, MARGINALIZED]])
        floats = ints.astype(np.float64)
        coerced = as_evidence_array(floats)
        assert coerced.dtype.kind == "i"
        assert np.array_equal(coerced, ints)
        for engine in ("python", "vectorized"):
            assert np.array_equal(
                evaluate_batch(mixture_spn, floats, engine=engine),
                evaluate_batch(mixture_spn, ints, engine=engine),
            )
            assert np.array_equal(
                evaluate_log_batch(mixture_spn, floats, engine=engine),
                evaluate_log_batch(mixture_spn, ints, engine=engine),
            )

    @pytest.mark.parametrize("bad", [0.7, np.nan, np.inf])
    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_non_integral_floats_rejected(self, mixture_spn, bad, engine):
        data = np.array([[bad, 1.0]])
        with pytest.raises(ValueError, match="MARGINALIZED"):
            evaluate_batch(mixture_spn, data, engine=engine)
        with pytest.raises(ValueError, match="MARGINALIZED"):
            evaluate_log_batch(mixture_spn, data, engine=engine)

    def test_row_evidence_rejects_fractional_rows(self):
        with pytest.raises(ValueError, match="MARGINALIZED"):
            row_evidence(np.array([0.7, 1.0]))
        assert row_evidence(np.array([1.0, -1.0, 0.0])) == {0: 1, 2: 0}

    def test_huge_unsigned_values_rejected(self):
        # uint64 >= 2**63 would wrap negative on a downstream int64 cast
        # and silently read as MARGINALIZED.
        with pytest.raises(ValueError, match="int64 range"):
            as_evidence_array(np.array([[2**64 - 1, 1]], dtype=np.uint64))
        small = np.array([[3, 1]], dtype=np.uint32)
        assert as_evidence_array(small) is small

    def test_huge_integral_floats_rejected(self, mixture_spn):
        # 1e19 is finite and integral but wraps negative on the int64 cast,
        # which would silently read as MARGINALIZED.
        with pytest.raises(ValueError, match="int64 range"):
            evaluate_batch(mixture_spn, np.array([[1e19, 1.0]]))

    def test_non_numeric_dtype_rejected(self):
        with pytest.raises(ValueError, match="integer array"):
            as_evidence_array(np.array([["a", "b"]]))

    def test_booleans_coerce(self):
        coerced = as_evidence_array(np.array([[True, False]]))
        assert coerced.dtype == np.int64
        assert np.array_equal(coerced, [[1, 0]])
