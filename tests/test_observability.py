"""Tests for the observability subsystem: metrics, tracing, profiling.

Covers the three pillars in isolation (registry semantics, span trees,
per-kernel profiles), their integration into the session and the tape
executors (bit-identical results with the profiler on), the serving-layer
trace propagation contract — one trace id from admission to response even
when a request's rows scatter across micro-batches and worker threads —
and the ``python -m repro.observability`` CLI.
"""

import json
import threading

import numpy as np
import pytest

from repro import observability
from repro.api import InferenceSession, LogLikelihood
from repro.observability import (
    LATENCY_BUCKETS,
    REGISTRY,
    TRACER,
    MetricsRegistry,
    TapeProfiler,
    TraceContext,
    Tracer,
    active_profiler,
    current_trace_id,
    observability_scope,
)
from repro.observability.__main__ import main as obs_main
from repro.serving import BatchingPolicy, InferenceClient, InferenceServer
from repro.spn.generate import random_evidence
from repro.spn.memplan import ExecutionOptions
from repro.suite.registry import benchmark_n_vars, benchmark_tape

BENCHMARK = "Banknote"


@pytest.fixture(autouse=True)
def _clean_observability():
    """Every test starts from the default switchboard and empty stores."""
    TRACER.clear()
    REGISTRY.clear()
    observability.configure(metrics=True, tracing=False)
    yield
    TRACER.clear()
    REGISTRY.clear()
    observability.configure(metrics=True, tracing=False)


@pytest.fixture(scope="module")
def tape():
    return benchmark_tape(BENCHMARK)


@pytest.fixture(scope="module")
def evidence():
    return random_evidence(
        benchmark_n_vars(BENCHMARK), observed_fraction=0.5, seed=7, n_samples=64
    )


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_get_or_create_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", model="A", kind="ll")
        b = registry.counter("requests_total", kind="ll", model="A")
        assert a is b  # label order is canonicalized
        a.inc()
        a.inc(2.5)
        assert registry.counter("requests_total", model="B").value == 0.0
        snap = registry.snapshot()
        assert snap['requests_total{kind="ll",model="A"}'] == 3.5

    def test_counter_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("n")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 3.0

    def test_histogram_quantiles_match_numpy(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", window=100)
        samples = [0.001, 0.004, 0.02, 0.5, 1.7]
        for s in samples:
            hist.observe(s)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert hist.quantile(q) == pytest.approx(np.quantile(samples, q))

    def test_histogram_empty_quantile_is_none(self):
        assert MetricsRegistry().histogram("lat").quantile(0.5) is None

    def test_histogram_window_is_bounded(self):
        hist = MetricsRegistry().histogram("lat", window=4)
        for s in (1.0, 2.0, 3.0, 4.0, 100.0):
            hist.observe(s)
        # The rolling window dropped the 1.0; count keeps all of history.
        assert hist.quantile(0.0) == pytest.approx(2.0)
        assert hist.snapshot_value()["count"] == 5

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("a", x="1").inc()
        registry.gauge("b").set(2.5)
        registry.histogram("c").observe(0.1)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", path="/x").inc(3)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{path="/x"} 3' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_latency_buckets_are_sorted_and_subsecond_first(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert LATENCY_BUCKETS[0] < 0.001


# --------------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("work", n=1) as span:
            span.set(more=2)  # the null span absorbs attributes
        assert tracer.spans() == []
        assert current_trace_id() is None

    def test_span_tree_shares_one_trace(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("outer"):
            outer_trace = tracer.current().trace_id
            with tracer.span("inner"):
                assert tracer.current().trace_id == outer_trace
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].duration_s >= spans["inner"].duration_s >= 0.0

    def test_error_spans_are_flagged(self):
        tracer = Tracer()
        tracer.enabled = True
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"

    def test_activate_carries_context_across_threads(self):
        tracer = Tracer()
        tracer.enabled = True
        seen = {}

        with tracer.span("admission"):
            context = tracer.current()

        def worker():
            # A fresh thread has no ambient context...
            seen["before"] = tracer.current()
            with tracer.activate(context):
                with tracer.span("execute"):
                    seen["inside"] = tracer.current().trace_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["before"] is None
        assert seen["inside"] == context.trace_id
        execute = next(s for s in tracer.spans() if s.name == "execute")
        assert execute.parent_id == context.span_id

    def test_event_always_bypasses_the_switch(self):
        tracer = Tracer()
        assert tracer.enabled is False
        tracer.event("lifecycle.swap", always=True, model="M")
        tracer.event("ignored")
        (event,) = tracer.spans()
        assert event.name == "lifecycle.swap"
        assert event.duration_s == 0.0

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=8)
        tracer.enabled = True
        for i in range(20):
            with tracer.span(f"s{i}"):
                pass
        spans = tracer.spans()
        assert len(spans) == 8
        assert spans[-1].name == "s19"

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("a", k=1):
            pass
        path = tmp_path / "spans.jsonl"
        tracer.export_jsonl(path)
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert record["name"] == "a"
        assert record["attrs"] == {"k": 1}

    def test_observability_scope_restores_switches(self):
        assert observability.metrics_enabled()
        assert not observability.tracing_enabled()
        with observability_scope(metrics=False, tracing=True):
            assert not observability.metrics_enabled()
            assert observability.tracing_enabled()
        assert observability.metrics_enabled()
        assert not observability.tracing_enabled()


# --------------------------------------------------------------------------- #
# Per-kernel profiler
# --------------------------------------------------------------------------- #
class TestTapeProfiler:
    @pytest.mark.parametrize("execution", ["planned", "sharded", "legacy"])
    def test_profiled_execution_is_bit_identical(self, tape, evidence, execution):
        options = (
            ExecutionOptions(mode="sharded", threads=2, min_shard_rows=1)
            if execution == "sharded"
            else execution
        )
        reference = tape.execute_batch(evidence, execution=options)
        with TapeProfiler() as profiler:
            profiled = tape.execute_batch(evidence, execution=options)
        assert np.array_equal(profiled, reference)
        assert profiler.total_elapsed_s > 0.0
        assert profiler.total_bytes > 0

    def test_profile_accounts_for_most_of_the_pass(self, tape):
        # A batch large enough that kernel time dominates the per-kernel
        # clock reads (the regime profiling is for; the benchmark gate
        # measures the same bound on the sweep workload).
        big = random_evidence(
            benchmark_n_vars(BENCHMARK), observed_fraction=0.5, seed=3, n_samples=4096
        )
        with TapeProfiler() as profiler:
            for _ in range(5):
                tape.execute_batch(big)
        # Acceptance gate: per-kernel elapsed explains >=90% of wall time.
        assert profiler.coverage() >= 0.90

    def test_profiler_only_active_inside_context(self, tape, evidence):
        assert active_profiler() is None
        with TapeProfiler() as profiler:
            assert active_profiler() is profiler
        assert active_profiler() is None

    def test_table_rows_and_rendering(self, tape, evidence):
        with TapeProfiler() as profiler:
            tape.execute_batch(evidence)
        rows = profiler.table()
        assert rows  # at least the encode pseudo-kernel and one kernel
        keys = {row["kernel"] for row in rows}
        assert any(key.endswith(".encode") for key in keys)
        shares = [row["share"] for row in rows]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)
        rendered = profiler.render(top=5)
        assert "share" in rendered and "GB/s" in rendered
        assert "of pass wall time" in rendered

    def test_rows_and_bytes_accounting(self, tape, evidence):
        with TapeProfiler() as profiler:
            tape.execute_batch(evidence)
        n_rows = evidence.shape[0]
        for row in profiler.table():
            assert row["rows"] % n_rows == 0
            assert row["bytes"] > 0


# --------------------------------------------------------------------------- #
# Session spans
# --------------------------------------------------------------------------- #
class TestSessionSpans:
    def test_plan_run_and_tape_passes_nest(self, evidence):
        session = InferenceSession(BENCHMARK)
        with observability_scope(tracing=True):
            session.run(LogLikelihood(evidence=evidence))
        spans = {span.name: span for span in TRACER.spans()}
        run = spans["session.run"]
        tape_pass = spans["session.tape_pass"]
        assert run.attrs["kind"] == "log_likelihood"
        assert run.attrs["n_rows"] == evidence.shape[0]
        assert run.attrs["passes"] >= 1
        assert tape_pass.parent_id == run.span_id
        assert tape_pass.trace_id == run.trace_id

    def test_disabled_tracing_leaves_no_spans(self, evidence):
        session = InferenceSession(BENCHMARK)
        session.run(LogLikelihood(evidence=evidence))
        assert TRACER.spans() == []


# --------------------------------------------------------------------------- #
# Serving trace propagation (admission -> queue -> execute -> respond)
# --------------------------------------------------------------------------- #
class TestServingTracePropagation:
    def test_one_trace_id_across_worker_threads_and_micro_batches(self):
        # max_batch_size=2 forces a 7-row request to split across at least
        # four micro-batches; every span must still join the admission
        # trace, spanning submitter and worker threads.
        policy = BatchingPolicy(max_batch_size=2, max_wait_s=0.001)
        with observability_scope(tracing=True):
            with InferenceServer(models=[BENCHMARK], policy=policy) as server:
                client = InferenceClient(server, model=BENCHMARK)
                rows = [[1, -1, -1, -1]] * 7
                result = client.submit(rows, kind="log_likelihood").result()
        assert len(result) == 7
        # Model registration leaves its own lifecycle.publish event
        # (a separate always-on trace); the request spans are the story.
        spans = [s for s in TRACER.spans() if not s.name.startswith("lifecycle.")]
        trace_ids = {span.trace_id for span in spans}
        assert len(trace_ids) == 1  # one request, one story
        names = [span.name for span in spans]
        assert names.count("serving.admission") == 1
        assert names.count("serving.respond") == 1
        assert names.count("serving.queue_wait") == 7  # one per row
        assert names.count("serving.batch_execute") >= 4  # ceil(7/2)
        assert names.count("session.run") == names.count("serving.batch_execute")
        # The engine spans nest under the batch-execute spans.
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.name == "session.run":
                assert by_id[span.parent_id].name == "serving.batch_execute"

    def test_concurrent_requests_keep_distinct_traces(self):
        with observability_scope(tracing=True):
            with InferenceServer(models=[BENCHMARK]) as server:
                client = InferenceClient(server, model=BENCHMARK)
                futures = [
                    client.submit({0: value}, kind="log_likelihood")
                    for value in (0, 1)
                ]
                for future in futures:
                    future.result()
        admissions = [s for s in TRACER.spans() if s.name == "serving.admission"]
        assert len(admissions) == 2
        assert len({s.trace_id for s in admissions}) == 2
        responds = [s for s in TRACER.spans() if s.name == "serving.respond"]
        assert {s.trace_id for s in responds} == {s.trace_id for s in admissions}

    def test_untraced_serving_records_no_request_spans(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            server.query(BENCHMARK, {0: 1}, kind="log_likelihood")
        # Only the always-on lifecycle.publish from model registration —
        # no admission/queue/execute/respond spans while tracing is off.
        assert [s.name for s in TRACER.spans()] == ["lifecycle.publish"]


# --------------------------------------------------------------------------- #
# Serving metrics integration
# --------------------------------------------------------------------------- #
class TestServingMetricsIntegration:
    def test_process_wide_counters_by_model_and_kind(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            server.query(BENCHMARK, {0: 1}, kind="log_likelihood")
            server.query(BENCHMARK, {0: 1}, kind="likelihood")
        snap = REGISTRY.snapshot()
        key = f'serving_requests_total{{kind="log_likelihood",model="{BENCHMARK}"}}'
        assert snap[key] == 1.0
        key = f'serving_rows_total{{kind="likelihood",model="{BENCHMARK}"}}'
        assert snap[key] == 1.0

    def test_metrics_disabled_records_nothing(self):
        with observability_scope(metrics=False):
            with InferenceServer(models=[BENCHMARK]) as server:
                server.query(BENCHMARK, {0: 1}, kind="log_likelihood")
                snap = server.metrics.snapshot()
        assert snap["requests"] == 0
        assert snap["latency_p50_ms"] is None
        assert "serving_requests_total" not in str(REGISTRY.snapshot())

    def test_queue_depth_and_wait_instruments(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            server.query(BENCHMARK, [[1, -1, -1, -1]] * 3, kind="log_likelihood")
            registry = server.metrics.registry.snapshot()
        assert registry["serving_queue_depth"] == 0.0  # drained
        assert registry["serving_queue_wait_seconds"]["count"] >= 3

    def test_slow_query_warning_and_counter(self, caplog):
        with caplog.at_level("WARNING", logger="repro.serving"):
            with InferenceServer(models=[BENCHMARK], slow_query_s=0.0) as server:
                server.query(BENCHMARK, {0: 1}, kind="log_likelihood")
                registry = server.metrics.registry.snapshot()
        assert registry["serving_slow_requests_total"] == 1.0
        assert any("slow query" in record.message for record in caplog.records)

    def test_no_slow_query_log_by_default(self, caplog):
        with caplog.at_level("WARNING", logger="repro.serving"):
            with InferenceServer(models=[BENCHMARK]) as server:
                server.query(BENCHMARK, {0: 1}, kind="log_likelihood")
        assert not any("slow query" in r.message for r in caplog.records)


# --------------------------------------------------------------------------- #
# Lifecycle structured events
# --------------------------------------------------------------------------- #
class TestLifecycleEvents:
    def test_publish_swap_and_rollback_events(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            server.publish(BENCHMARK, "1", BENCHMARK, validate=True)
            server.rollback(BENCHMARK)
        events = {s.name: s for s in TRACER.spans()}
        publish = events["lifecycle.publish"]
        assert publish.attrs["model"] == BENCHMARK
        assert publish.attrs["validated"] is True
        assert publish.attrs["deviation"] == 0.0
        assert publish.attrs["duration_ms"] > 0.0
        rollback = events["lifecycle.rollback"]
        assert rollback.attrs["version"] == "0"
        assert rollback.attrs["previous"] == "1"
        snap = REGISTRY.snapshot()
        assert snap[f'lifecycle_publish_total{{model="{BENCHMARK}"}}'] == 2.0
        assert snap[f'lifecycle_rollback_total{{model="{BENCHMARK}"}}'] == 1.0

    def test_failed_shadow_validation_event(self):
        from repro.serving import ShadowValidationError
        from repro.suite.registry import build_benchmark

        with InferenceServer(models=[BENCHMARK]) as server:
            other = build_benchmark("EEG-eye")
            with pytest.raises(ShadowValidationError):
                server.publish(BENCHMARK, "2", other, validate=True)
        failures = [
            s for s in TRACER.spans() if s.name == "lifecycle.shadow_validation_failed"
        ]
        assert len(failures) == 1
        assert failures[0].attrs["deviation"] > 0.0
        key = f'lifecycle_shadow_validation_failed_total{{model="{BENCHMARK}"}}'
        assert REGISTRY.snapshot()[key] == 1.0

    def test_events_recorded_even_with_tracing_off(self):
        assert not observability.tracing_enabled()
        with InferenceServer(models=[BENCHMARK]):
            pass  # add_model publishes version "0"
        assert any(s.name == "lifecycle.publish" for s in TRACER.spans())


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCli:
    def test_snapshot_demo_json(self, capsys):
        assert obs_main(["snapshot", "--demo"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(key.startswith("serving_requests_total") for key in payload)

    def test_snapshot_prometheus(self, capsys):
        REGISTRY.counter("smoke_total").inc()
        assert obs_main(["snapshot", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE smoke_total counter" in out
        assert "smoke_total 1" in out

    def test_trace_summary(self, tmp_path, capsys, evidence):
        session = InferenceSession(BENCHMARK)
        with observability_scope(tracing=True):
            session.run(LogLikelihood(evidence=evidence))
        path = tmp_path / "spans.jsonl"
        TRACER.export_jsonl(path)
        assert obs_main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "session.run" in out
        assert "slowest traces" in out

    def test_trace_missing_file(self, capsys):
        assert obs_main(["trace", "/nonexistent/spans.jsonl"]) == 2
