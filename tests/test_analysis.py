"""Tests for the metrics and plain-text reporting helpers."""

import pytest

from repro.analysis.metrics import PlatformResult, geometric_mean, normalize, peak, speedup
from repro.analysis.report import format_bar_chart, format_table


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_speedup_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_peak(self):
        assert peak([0.3, 1.2, 0.9]) == pytest.approx(1.2)

    def test_peak_empty(self):
        with pytest.raises(ValueError):
            peak([])

    def test_geometric_mean_of_equal_values(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalize(self):
        values = {"CPU": 0.5, "Ptree": 10.0}
        normalized = normalize(values, "CPU")
        assert normalized == {"CPU": 1.0, "Ptree": 20.0}

    def test_normalize_missing_reference(self):
        with pytest.raises(KeyError):
            normalize({"CPU": 1.0}, "GPU")

    def test_platform_result_properties(self):
        result = PlatformResult("CPU", "MSNBC", ops_per_cycle=0.5, cycles=100, n_operations=50)
        assert result.cycles_per_evaluation == 100


class TestReport:
    def test_table_contains_all_cells(self):
        text = format_table(["name", "value"], [("a", 1.5), ("bb", 2)], title="T")
        assert "T" in text and "name" in text and "a" in text and "1.500" in text and "2" in text

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_table_alignment(self):
        text = format_table(["x"], [("longer-cell",)])
        lines = text.splitlines()
        assert len(lines[1]) >= len("longer-cell")

    def test_bar_chart_scales_to_peak(self):
        text = format_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = {ln.split()[0]: ln for ln in text.splitlines()}
        assert lines["b"].count("#") == 10
        assert lines["a"].count("#") == 5

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart({})

    def test_bar_chart_zero_values(self):
        text = format_bar_chart({"a": 0.0})
        assert "#" not in text
