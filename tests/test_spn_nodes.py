"""Unit tests for the SPN node value objects."""

import pytest

from repro.spn.nodes import (
    IndicatorLeaf,
    ParameterLeaf,
    ProductNode,
    SumNode,
    is_internal,
    is_leaf,
    normalized_weights,
)


class TestIndicatorLeaf:
    def test_kind(self):
        leaf = IndicatorLeaf(id=0, var=3, value=1)
        assert leaf.kind == "indicator"

    def test_has_no_children(self):
        assert IndicatorLeaf(id=0, var=0, value=0).children == ()

    def test_is_leaf(self):
        assert is_leaf(IndicatorLeaf(id=0, var=0, value=0))
        assert not is_internal(IndicatorLeaf(id=0, var=0, value=0))


class TestParameterLeaf:
    def test_kind(self):
        assert ParameterLeaf(id=1, prob=0.25).kind == "parameter"

    def test_default_probability(self):
        assert ParameterLeaf(id=1).prob == 1.0

    def test_is_leaf(self):
        assert is_leaf(ParameterLeaf(id=1, prob=0.5))


class TestSumNode:
    def test_kind_and_children(self):
        node = SumNode(id=2, child_ids=(0, 1), weights=(0.4, 0.6))
        assert node.kind == "sum"
        assert node.children == (0, 1)
        assert node.is_weighted

    def test_unweighted_sum(self):
        node = SumNode(id=2, child_ids=(0, 1))
        assert not node.is_weighted
        assert node.weights is None

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            SumNode(id=2, child_ids=(0, 1), weights=(1.0,))

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            SumNode(id=2, child_ids=())

    def test_is_internal(self):
        assert is_internal(SumNode(id=2, child_ids=(0,)))


class TestProductNode:
    def test_kind_and_children(self):
        node = ProductNode(id=3, child_ids=(0, 1, 2))
        assert node.kind == "product"
        assert node.children == (0, 1, 2)

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            ProductNode(id=3, child_ids=())

    def test_is_internal(self):
        assert is_internal(ProductNode(id=3, child_ids=(0,)))


class TestNormalizedWeights:
    def test_normalizes_to_one(self):
        weights = normalized_weights([1.0, 3.0])
        assert weights == (0.25, 0.75)

    def test_already_normalized_unchanged(self):
        assert normalized_weights([0.5, 0.5]) == (0.5, 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalized_weights([0.5, -0.1])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            normalized_weights([0.0, 0.0])

    def test_sums_to_one(self):
        weights = normalized_weights([0.2, 5.0, 1.3])
        assert abs(sum(weights) - 1.0) < 1e-12
