"""Brute-force exact-enumeration oracle for the analysis-query tests.

:class:`BruteForceOracle` tabulates the *entire* joint distribution of a
(small) network — one scalar reference evaluation
(:func:`repro.spn.evaluate.evaluate`, the per-node python walk) per
complete assignment of the indicator domains — and derives every analysis
quantity from that table: evidence probabilities, conditional marginals,
moments, entropies, mutual information matrices and class posteriors.  It
shares **no code path** with the batched engines under test: no tape, no
batching, no log domain, no replacement sweeps.

Exactness contract (the tests' tolerance policy):

* Everything here is a linear-domain sum over the joint table — exact up
  to float summation order.
* The session engines compute the same quantities as ``exp(log-ratio)``
  of two log-domain tape passes, so agreement is asserted with
  ``rtol=1e-9`` (same tolerance the engine-agreement suite uses), not
  bit-equality.
* Zero-probability evidence is ``nan`` everywhere, matching the engine
  convention.

The table has ``prod_v |domain(v)|`` rows, so oracles are built from
``strategies.small_rat_configs`` networks (at most ``2**5`` states).
"""

import itertools

import numpy as np

from repro.spn.evaluate import evaluate
from repro.spn.queries import _indicator_domains


class BruteForceOracle:
    """Exact reference for every analysis query, by full enumeration."""

    def __init__(self, spn):
        self.spn = spn
        raw = _indicator_domains(spn)
        self.variables = sorted(raw)
        self.domains = {v: tuple(sorted(raw[v])) for v in self.variables}
        self.n_vars = (self.variables[-1] + 1) if self.variables else 0
        combos = list(
            itertools.product(*(self.domains[v] for v in self.variables))
        )
        self.assignments = np.array(combos, dtype=np.int64).reshape(
            len(combos), len(self.variables)
        )
        self.probs = np.array([
            evaluate(spn, dict(zip(self.variables, map(int, row))))
            for row in self.assignments
        ])

    # ------------------------------------------------------------------ #
    # Core: consistency masks and evidence probabilities
    # ------------------------------------------------------------------ #
    def _mask(self, row) -> np.ndarray:
        """Which complete assignments are consistent with ``row``.

        ``row`` follows the MARGINALIZED convention (negative =
        unobserved); observed entries beyond the model's variables are
        ignored, exactly as the engines ignore indicator-less columns.
        """
        row = np.asarray(row)
        mask = np.ones(len(self.assignments), dtype=bool)
        for i, var in enumerate(self.variables):
            if var < row.shape[0] and row[var] >= 0:
                mask &= self.assignments[:, i] == row[var]
        return mask

    def prob(self, row) -> float:
        """P(e): the joint table summed over consistent assignments."""
        return float(self.probs[self._mask(row)].sum())

    # ------------------------------------------------------------------ #
    # Conditional distributions and their functionals
    # ------------------------------------------------------------------ #
    def dist(self, row, variables) -> np.ndarray:
        """Joint conditional P(X_vars | e) as an array over state tuples.

        Shape ``(|domain(v1)|, ..., |domain(vk)|)``; ``nan`` throughout
        when the evidence has probability zero.  Variables observed in
        ``row`` come out as point masses (they are part of the
        conditioning event).
        """
        mask = self._mask(row)
        total = self.probs[mask].sum()
        shape = tuple(len(self.domains[v]) for v in variables)
        out = np.full(shape, np.nan)
        if total <= 0:
            return out
        columns = [self.variables.index(v) for v in variables]
        for states in itertools.product(*(range(k) for k in shape)):
            sub = mask.copy()
            for column, v, s in zip(columns, variables, states):
                sub &= self.assignments[:, column] == self.domains[v][s]
            out[states] = self.probs[sub].sum() / total
        return out

    def expectation(self, row, var, moment=1, center=False) -> float:
        dist = self.dist(row, (var,))
        values = np.asarray(self.domains[var], dtype=np.float64)
        if center:
            mean = float(dist @ values)
            return float(((values - mean) ** moment) @ dist)
        return float((values ** moment) @ dist)

    def entropy(self, row, var) -> float:
        dist = self.dist(row, (var,))
        if np.isnan(dist).any():
            return float("nan")
        terms = np.where(dist > 0, dist * np.log(np.where(dist > 0, dist, 1.0)), 0.0)
        return float(-terms.sum())

    def mutual_information(self, row, u, v) -> float:
        """I(X_u; X_v | e) in nats; zero when either variable is observed."""
        row = np.asarray(row)
        for var in (u, v):
            if var < row.shape[0] and row[var] >= 0:
                return 0.0
        pair = self.dist(row, (u, v))
        if np.isnan(pair).any():
            return float("nan")
        pu = pair.sum(axis=1)
        pv = pair.sum(axis=0)
        value = 0.0
        for i in range(pair.shape[0]):
            for j in range(pair.shape[1]):
                if pair[i, j] > 0:
                    value += pair[i, j] * (
                        np.log(pair[i, j]) - np.log(pu[i]) - np.log(pv[j])
                    )
        return float(value)

    def mutual_information_matrix(self, row, variables, normalize=False):
        """The full ``(k, k)`` matrix the MutualInformation kind returns."""
        k = len(variables)
        out = np.zeros((k, k))
        entropies = np.array([self.entropy(row, v) for v in variables])
        for i in range(k):
            for j in range(i + 1, k):
                out[i, j] = out[j, i] = self.mutual_information(
                    row, variables[i], variables[j]
                )
        for i in range(k):
            out[i, i] = entropies[i]
        if normalize:
            denom = np.sqrt(entropies[:, None] * entropies[None, :])
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.where(denom > 0, out / denom, 0.0)
        if np.isnan(entropies).any():
            out[:] = np.nan
        return out

    def classify(self, row, target) -> np.ndarray:
        """P(X_target = s | e) over the target's states, ascending."""
        return self.dist(row, (target,))

    # ------------------------------------------------------------------ #
    # Sampling support
    # ------------------------------------------------------------------ #
    def support(self, row) -> set:
        """Complete assignments with positive probability given ``row``.

        As tuples over the model's variables (ascending var id) — the set
        every conditional sample must fall in.
        """
        mask = self._mask(row) & (self.probs > 0)
        return {tuple(map(int, a)) for a in self.assignments[mask]}
