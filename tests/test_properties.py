"""Property-based tests (hypothesis) on the core data structures and invariants."""

import json
import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import geometric_mean, normalize, speedup
from repro.api import (
    MPE,
    Conditional,
    InferenceSession,
    Likelihood,
    LogLikelihood,
    Marginal,
    deserialize_query,
    serialize_query,
)
from repro.baselines.gpu import GpuConfig, execute_gpu_kernel
from repro.spn import io
from repro.spn.evaluate import evaluate, evaluate_batch, evaluate_log, partition_function
from repro.spn.generate import generate_rat_spn, random_evidence
from repro.spn.linearize import linearize
from repro.spn.queries import most_probable_explanation
from strategies import full_evidence as _full_evidence
from strategies import partial_evidence as _partial_evidence
from strategies import rat_configs

# Keep hypothesis fast and deterministic for CI-style runs.
_SETTINGS = settings(max_examples=25, deadline=None)


# --------------------------------------------------------------------------- #
# SPN semantics
# --------------------------------------------------------------------------- #
class TestSpnProperties:
    @_SETTINGS
    @given(config=rat_configs)
    def test_generated_networks_are_valid_and_normalized(self, config):
        spn = generate_rat_spn(config)
        spn.check_valid()
        assert partition_function(spn) == pytest.approx(1.0)

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_probabilities_are_in_unit_interval(self, config, seed):
        spn = generate_rat_spn(config)
        value = evaluate(spn, _full_evidence(spn, seed))
        assert 0.0 <= value <= 1.0 + 1e-12

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_log_and_linear_evaluation_agree(self, config, seed):
        spn = generate_rat_spn(config)
        evidence = _full_evidence(spn, seed)
        value = evaluate(spn, evidence)
        log_value = evaluate_log(spn, evidence)
        if value > 0:
            assert log_value == pytest.approx(math.log(value))
        else:
            assert log_value == -math.inf

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_marginalizing_one_variable_sums_both_values(self, config, seed):
        spn = generate_rat_spn(config)
        evidence = _full_evidence(spn, seed)
        var = spn.variables()[seed % len(spn.variables())]
        partial = {k: v for k, v in evidence.items() if k != var}
        total = sum(evaluate(spn, {**partial, var: value}) for value in (0, 1))
        assert evaluate(spn, partial) == pytest.approx(total)

    @_SETTINGS
    @given(config=rat_configs)
    def test_full_joint_sums_to_one_over_sampled_subsets(self, config):
        spn = generate_rat_spn(config)
        # Summing the joint over all assignments of the first two variables,
        # marginalizing the rest, must equal the partition function.
        total = sum(
            evaluate(spn, {0: a, 1: b}) for a in (0, 1) for b in (0, 1)
        )
        assert total == pytest.approx(partition_function(spn))

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_mpe_is_no_worse_than_a_random_assignment(self, config, seed):
        spn = generate_rat_spn(config)
        assignment = most_probable_explanation(spn)
        random_assignment = _full_evidence(spn, seed)
        assert evaluate(spn, assignment) >= evaluate(spn, random_assignment) - 1e-12

    @_SETTINGS
    @given(config=rat_configs)
    def test_serialization_round_trip_preserves_semantics(self, config):
        spn = generate_rat_spn(config)
        restored = io.loads(io.dumps(spn))
        evidence = _full_evidence(spn, config.seed)
        assert evaluate(restored, evidence) == pytest.approx(evaluate(spn, evidence))


# --------------------------------------------------------------------------- #
# Lowering and kernel equivalence
# --------------------------------------------------------------------------- #
class TestLoweringProperties:
    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_operation_list_equals_reference(self, config, seed):
        spn = generate_rat_spn(config)
        ops = linearize(spn)
        evidence = _full_evidence(spn, seed)
        assert ops.execute(evidence) == pytest.approx(evaluate(spn, evidence))

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_vector_program_equals_operation_list(self, config, seed):
        spn = generate_rat_spn(config)
        ops = linearize(spn)
        evidence = _full_evidence(spn, seed)
        assert ops.to_vector_program().execute(evidence) == pytest.approx(ops.execute(evidence))

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000), threads=st.sampled_from([1, 32, 256]))
    def test_gpu_kernel_emulation_equals_reference(self, config, seed, threads):
        spn = generate_rat_spn(config)
        ops = linearize(spn)
        evidence = _full_evidence(spn, seed)
        value = execute_gpu_kernel(ops, ops.input_vector(evidence), GpuConfig(n_threads=threads))
        assert value == pytest.approx(evaluate(spn, evidence))

    @_SETTINGS
    @given(config=rat_configs, n_samples=st.integers(1, 8), seed=st.integers(0, 1000))
    def test_batch_evaluation_matches_scalar(self, config, n_samples, seed):
        spn = generate_rat_spn(config)
        data = random_evidence(config.n_vars, n_samples=n_samples, observed_fraction=0.7, seed=seed)
        batch = evaluate_batch(spn, data)
        for row, value in zip(data, batch):
            evidence = {i: int(v) for i, v in enumerate(row) if v >= 0}
            assert value == pytest.approx(evaluate(spn, evidence))

    @_SETTINGS
    @given(config=rat_configs)
    def test_group_decomposition_is_a_topological_partition(self, config):
        ops = linearize(generate_rat_spn(config))
        groups = ops.groups()
        seen = set()
        for group in groups:
            for op_index in group:
                op = ops.operations[op_index]
                for arg in (op.arg0, op.arg1):
                    if arg >= ops.n_inputs:
                        assert (arg - ops.n_inputs) in seen
            seen.update(group)
        assert len(seen) == ops.n_operations


# --------------------------------------------------------------------------- #
# Typed query API: scalar wrappers == single-row sessions, exact round-trips
# --------------------------------------------------------------------------- #
class TestQueryApiProperties:
    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_scalar_marginal_equals_single_row_session_exactly(self, config, seed):
        from repro.spn.queries import log_marginal, marginal

        spn = generate_rat_spn(config)
        session = InferenceSession(spn)
        evidence = _partial_evidence(spn, seed)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert marginal(spn, evidence) == session.run(Marginal(dict(evidence)))[0]
            assert (
                log_marginal(spn, evidence)
                == session.run(Marginal(dict(evidence), log=True))[0]
            )

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_scalar_conditional_equals_single_row_session_exactly(self, config, seed):
        from repro.spn.queries import conditional

        spn = generate_rat_spn(config)
        session = InferenceSession(spn)
        evidence = _partial_evidence(spn, seed)
        rng = np.random.default_rng(seed + 1)
        var = spn.variables()[seed % len(spn.variables())]
        evidence.pop(var, None)
        query = {var: int(rng.integers(0, 2))}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            try:
                scalar = conditional(spn, query, evidence)
            except ZeroDivisionError:
                value = session.run(
                    Conditional(evidence=dict(evidence), query=dict(query))
                )[0]
                assert math.isnan(value)
                return
        assert (
            scalar
            == session.run(Conditional(evidence=dict(evidence), query=dict(query)))[0]
        )

    @_SETTINGS
    @given(config=rat_configs, seed=st.integers(0, 1000))
    def test_scalar_mpe_equals_single_row_session_exactly(self, config, seed):
        spn = generate_rat_spn(config)
        session = InferenceSession(spn)
        evidence = _partial_evidence(spn, seed, keep=0.4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            scalar = most_probable_explanation(spn, evidence)
        assert scalar == session.run(MPE(dict(evidence)))[0]

    @_SETTINGS
    @given(
        config=rat_configs,
        n_samples=st.integers(1, 6),
        seed=st.integers(0, 1000),
        kind=st.sampled_from(["likelihood", "log_likelihood", "marginal", "conditional", "mpe"]),
    )
    def test_served_query_objects_round_trip_bit_identically(
        self, config, n_samples, seed, kind
    ):
        spn = generate_rat_spn(config)
        session = InferenceSession(spn)
        rows = random_evidence(
            config.n_vars, n_samples=n_samples, observed_fraction=0.7, seed=seed
        )
        if kind == "likelihood":
            query = Likelihood(rows)
        elif kind == "log_likelihood":
            query = LogLikelihood(rows)
        elif kind == "marginal":
            query = Marginal(rows, log=bool(seed % 2), normalize=bool(seed % 3))
        elif kind == "conditional":
            q = np.full_like(rows, -1)
            evidence = np.array(rows, copy=True)
            var = seed % config.n_vars
            evidence[:, var] = -1
            q[:, var] = 1
            query = Conditional(evidence=evidence, query=q, log=bool(seed % 2))
        else:
            query = MPE(rows[:2], refine=bool(seed % 2))
        restored = deserialize_query(json.loads(json.dumps(serialize_query(query))))
        assert np.array_equal(restored.evidence, query.evidence)
        assert restored.params() == query.params()
        expected = session.run(query)
        got = session.run(restored)
        if kind == "mpe":
            assert got == expected
        else:
            assert np.array_equal(got, expected)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
class TestMetricProperties:
    @_SETTINGS
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=10))
    def test_geometric_mean_between_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @_SETTINGS
    @given(
        st.dictionaries(
            st.sampled_from(["CPU", "GPU", "Pvect", "Ptree"]),
            st.floats(min_value=0.01, max_value=50.0),
            min_size=1,
            max_size=4,
        )
    )
    def test_normalize_sets_reference_to_one(self, values):
        reference = sorted(values)[0]
        normalized = normalize(values, reference)
        assert normalized[reference] == pytest.approx(1.0)
        for key in values:
            assert normalized[key] == pytest.approx(speedup(values[key], values[reference]))
