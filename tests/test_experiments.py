"""Integration tests for the experiment drivers (fast subsets only)."""

import pytest

from repro.analysis.metrics import PlatformResult
from repro.experiments import claims, fig2c, fig4, sweeps, table1
from repro.experiments.platforms import (
    DEFAULT_PLATFORMS,
    PLATFORM_CPU,
    PLATFORM_GPU,
    PLATFORM_PTREE,
    PLATFORM_PVECT,
    run_benchmark,
    run_platform,
)
from repro.suite.registry import benchmark_operation_list

_FAST = ["Banknote"]


class TestPlatforms:
    def test_run_benchmark_returns_all_platforms(self):
        results = run_benchmark("Banknote")
        assert set(results) == set(DEFAULT_PLATFORMS)
        for platform, result in results.items():
            assert isinstance(result, PlatformResult)
            assert result.benchmark == "Banknote"
            assert result.ops_per_cycle > 0

    def test_unknown_platform_rejected(self):
        ops = benchmark_operation_list("Banknote")
        with pytest.raises(ValueError):
            run_platform("TPU", ops)

    def test_processor_beats_baselines(self):
        results = run_benchmark("Banknote")
        assert results[PLATFORM_PTREE].ops_per_cycle > 5 * results[PLATFORM_CPU].ops_per_cycle
        assert results[PLATFORM_PTREE].ops_per_cycle > 5 * results[PLATFORM_GPU].ops_per_cycle

    def test_cpu_and_gpu_are_comparable(self):
        """The paper's point: an optimized GPU kernel is in the CPU's ballpark."""
        results = run_benchmark("Banknote")
        ratio = results[PLATFORM_GPU].ops_per_cycle / results[PLATFORM_CPU].ops_per_cycle
        assert 0.2 < ratio < 5.0


class TestTable1:
    def test_rows_cover_four_platforms(self):
        entries = table1.rows()
        assert [r[0] for r in entries] == ["CPU", "GPU", "Ours (Pvect)", "Ours (Ptree)"]

    def test_processor_rows_match_config(self):
        entries = {r[0]: r for r in table1.rows()}
        assert entries["Ours (Ptree)"][1] == "30 PEs"
        assert entries["Ours (Pvect)"][1] == "16 PEs"
        assert entries["Ours (Ptree)"][3] == "32"

    def test_main_renders(self):
        text = table1.main()
        assert "Table I" in text and "Ptree" in text


class TestFig2c:
    def test_series_structure(self):
        series = fig2c.run(benchmark="Banknote", thread_counts=(1, 32))
        assert set(series) == {"CPU", "GPU 1 thr", "GPU 32 thr"}

    def test_gpu_scaling_is_sublinear(self):
        series = fig2c.run(benchmark="Banknote", thread_counts=(1, 256))
        scaling = series["GPU 256 thr"] / series["GPU 1 thr"]
        assert 1.0 < scaling < 32.0

    def test_main_mentions_paper_value(self):
        text = fig2c.main(benchmark="Banknote")
        assert "4.1x" in text


class TestFig4:
    def test_run_on_fast_subset(self):
        results = fig4.run(names=_FAST)
        assert set(results) == set(_FAST)
        platforms = results["Banknote"]
        assert set(platforms) == set(DEFAULT_PLATFORMS)
        assert platforms[PLATFORM_PTREE].ops_per_cycle > platforms[PLATFORM_CPU].ops_per_cycle

    def test_naive_allocation_variants_included(self):
        results = fig4.run(names=_FAST, include_naive_allocation=True)
        assert "Ptree (naive alloc)" in results["Banknote"]
        assert (
            results["Banknote"]["Ptree (naive alloc)"].ops_per_cycle
            <= results["Banknote"][PLATFORM_PTREE].ops_per_cycle
        )

    def test_main_renders_table(self):
        text = fig4.main(names=_FAST, include_naive_allocation=False)
        assert "Fig. 4" in text and "Banknote" in text


class TestClaims:
    def test_derive_claims_from_subset(self):
        derived = claims.derive_claims(names=_FAST)
        names = [c.name for c in derived]
        assert "Ptree peak ops/cycle" in names
        by_name = {c.name: c for c in derived}
        assert by_name["Ptree speedup over CPU (geomean)"].measured_value > 5.0
        assert by_name["CPU peak ops/cycle"].paper_value == pytest.approx(0.55)

    def test_claim_ratio(self):
        claim = claims.Claim("x", paper_value=2.0, measured_value=3.0)
        assert claim.ratio == pytest.approx(1.5)


class TestSweeps:
    def test_tree_arrangement_sweep(self):
        results = sweeps.tree_arrangement_sweep("Banknote")
        assert len(results) == len(sweeps.TREE_ARRANGEMENTS)
        assert all(v > 0 for v in results.values())

    def test_allocation_ablation(self):
        results = sweeps.allocation_ablation("Banknote")
        assert results["naive"]["Pvect"] <= results["conflict-aware"]["Pvect"] + 1e-9

    def test_packing_ablation(self):
        results = sweeps.packing_ablation("Banknote")
        assert results["packing on"] >= results["packing off"]

    def test_gpu_bank_allocation_ablation(self):
        results = sweeps.gpu_bank_allocation_ablation("Banknote")
        assert set(results) == {"graph coloring", "interleaved"}
