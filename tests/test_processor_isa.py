"""Tests for the ISA data structures and the assembler round-trip."""

import pytest

from repro.processor.assembler import assemble, disassemble
from repro.processor.config import ptree_config
from repro.processor.isa import (
    OP_ADD,
    OP_MUL,
    OP_NOP,
    Instruction,
    MemOp,
    Program,
    ReadSpec,
    WriteSpec,
)
from repro.processor.simulator import Simulator
from repro.compiler.driver import compile_spn


class TestInstruction:
    def test_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            Instruction(pe_ops={(0, 0, 0): "divide"})

    def test_arith_op_count_ignores_passes(self):
        instr = Instruction(
            pe_ops={(0, 0, 0): OP_ADD, (0, 0, 1): OP_MUL, (0, 1, 0): "pass_a", (0, 1, 1): OP_NOP}
        )
        assert instr.n_arith_ops == 2

    def test_idle_detection(self):
        assert Instruction().is_idle
        assert not Instruction(pe_ops={(0, 0, 0): OP_ADD}).is_idle

    def test_bank_listings(self):
        instr = Instruction(
            reads=[ReadSpec(port=(0, 0), bank=3, reg=1)],
            writes=[WriteSpec(pe=(0, 0, 0), bank=7, reg=2)],
        )
        assert instr.read_banks() == [3]
        assert instr.write_banks() == [7]


class TestMemOp:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MemOp(kind="copy", row=0, reg=0)


class TestProgramCounters:
    def test_counts(self):
        program = Program(
            instructions=[
                Instruction(pe_ops={(0, 0, 0): OP_ADD}),
                Instruction(mem=MemOp(kind="load", row=0, reg=0)),
                Instruction(mem=MemOp(kind="store", row=0, reg=0)),
            ],
            n_operations=1,
        )
        assert program.n_instructions == 3
        assert program.n_arith_ops == 1
        assert program.n_loads == 1
        assert program.n_stores == 1


class TestAssembler:
    def test_round_trip_of_compiled_program(self, mixture_spn):
        kernel = compile_spn(mixture_spn, ptree_config())
        text = disassemble(kernel.program)
        restored = assemble(text)
        assert restored.n_instructions == kernel.program.n_instructions
        assert restored.n_arith_ops == kernel.program.n_arith_ops
        assert restored.result_location == kernel.program.result_location
        assert restored.dmem_image == [list(r) for r in kernel.program.dmem_image]

    def test_round_trip_executes_identically(self, mixture_spn):
        kernel = compile_spn(mixture_spn, ptree_config())
        restored = assemble(disassemble(kernel.program))
        vec = kernel.ops.input_vector({0: 1, 1: 0})
        # Strict slot annotations for loads are not preserved by the text
        # format, so run the restored program in non-strict mode.
        sim = Simulator(ptree_config(), strict=False)
        original = sim.run(kernel.program, vec).value
        again = sim.run(restored, vec).value
        assert again == pytest.approx(original)

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            assemble("instr\nend\n")

    def test_unterminated_block_rejected(self):
        with pytest.raises(ValueError):
            assemble("program v1 ops=0 result=- result_slot=0\ninstr\n")

    def test_unknown_directive_rejected(self):
        text = "program v1 ops=0 result=- result_slot=0\ninstr\n  jump 3\nend\n"
        with pytest.raises(ValueError):
            assemble(text)

    def test_disassembly_is_readable(self, mixture_spn):
        kernel = compile_spn(mixture_spn, ptree_config())
        text = disassemble(kernel.program)
        assert "program v1" in text
        assert "instr" in text and "end" in text
