"""End-to-end compiler tests: compile, simulate in strict mode, verify."""

import pytest

from repro.compiler.driver import compile_operation_list, compile_spn, verify_program
from repro.compiler.scheduler import ScheduleOptions
from repro.processor.config import ProcessorConfig, ptree_config, pvect_config
from repro.processor.errors import ResourceError
from repro.spn.evaluate import evaluate
from repro.spn.generate import RatSpnConfig, generate_rat_spn
from repro.spn.linearize import linearize
from repro.suite.registry import benchmark_operation_list


@pytest.fixture(params=["Ptree", "Pvect"])
def machine(request):
    return ptree_config() if request.param == "Ptree" else pvect_config()


class TestEndToEnd:
    def test_tiny_spn(self, tiny_spn, machine):
        kernel = compile_spn(tiny_spn, machine)
        assert verify_program(kernel, [None, {0: 1}, {0: 0, 1: 1}, {0: 1, 1: 0}])

    def test_mixture_spn(self, mixture_spn, machine):
        kernel = compile_spn(mixture_spn, machine)
        assert verify_program(kernel, [None, {0: 0, 1: 0}, {0: 1, 1: 1}])

    def test_random_rat_spn(self, small_rat_spn, machine, rng):
        kernel = compile_spn(small_rat_spn, machine)
        samples = [
            {v: int(rng.integers(0, 2)) for v in small_rat_spn.variables()} for _ in range(3)
        ]
        assert verify_program(kernel, [None] + samples)

    def test_recursive_random_spn(self, small_random_spn, machine):
        kernel = compile_spn(small_random_spn, machine)
        assert verify_program(kernel, [None, {0: 1, 1: 0, 2: 1}])

    def test_benchmark_banknote(self, machine):
        ops = benchmark_operation_list("Banknote")
        kernel = compile_operation_list(ops, machine)
        result = kernel.run({0: 1, 1: 0, 2: 1, 3: 1})
        assert result.value == pytest.approx(ops.execute({0: 1, 1: 0, 2: 1, 3: 1}))
        assert result.ops_per_cycle > 1.0

    def test_leaf_root_spn(self, machine):
        from repro.spn.graph import SPN

        spn = SPN()
        spn.set_root(spn.add_indicator(0, 1))
        kernel = compile_spn(spn, machine)
        assert kernel.program.n_instructions == 0
        assert kernel.run({0: 1}).value == pytest.approx(1.0)
        assert kernel.run({0: 0}).value == pytest.approx(0.0)

    def test_marginal_queries_match(self, small_rat_spn, machine):
        kernel = compile_spn(small_rat_spn, machine)
        # Partial evidence (marginal inference) exercises indicator handling.
        assert kernel.run({0: 1}).value == pytest.approx(evaluate(small_rat_spn, {0: 1}))
        assert kernel.run({}).value == pytest.approx(1.0)


class TestStatsAndDefaults:
    def test_default_config_is_ptree(self, mixture_spn):
        kernel = compile_spn(mixture_spn)
        assert kernel.config.name == "Ptree"

    def test_stats_are_consistent(self, small_rat_spn):
        kernel = compile_spn(small_rat_spn, ptree_config())
        stats = kernel.stats
        assert stats.n_operations == kernel.ops.n_operations
        assert stats.n_instructions == kernel.program.n_instructions
        assert stats.n_cones == kernel.cone_graph.n_cones
        assert stats.n_loads == kernel.program.n_loads
        assert stats.avg_ops_per_cone == pytest.approx(
            kernel.cone_graph.average_ops_per_cone()
        )

    def test_program_arith_ops_match_source(self, small_rat_spn, machine):
        kernel = compile_spn(small_rat_spn, machine)
        assert kernel.program.n_arith_ops == kernel.ops.n_operations

    def test_ptree_beats_baseline_regime(self):
        """The custom processor is roughly an order of magnitude above 1 op/cycle."""
        ops = benchmark_operation_list("Banknote")
        kernel = compile_operation_list(ops, ptree_config())
        assert kernel.run(None).ops_per_cycle > 4.0

    def test_chain_decomposition_also_compiles(self, mixture_spn, machine):
        kernel = compile_spn(mixture_spn, machine, decompose="chain")
        assert verify_program(kernel, [None, {0: 1, 1: 1}])


class TestSchedulerOptions:
    def test_naive_allocation_is_slower_but_correct(self):
        ops = benchmark_operation_list("Banknote")
        aware = compile_operation_list(ops, ptree_config())
        naive = compile_operation_list(
            ops, ptree_config(), ScheduleOptions(conflict_aware_allocation=False)
        )
        assert verify_program(naive, [None])
        assert naive.run(None).cycles >= aware.run(None).cycles

    def test_packing_disabled_is_slower_but_correct(self):
        ops = benchmark_operation_list("Banknote")
        packed = compile_operation_list(ops, ptree_config())
        unpacked = compile_operation_list(
            ops, ptree_config(), ScheduleOptions(pack_multiple_cones=False)
        )
        assert verify_program(unpacked, [None])
        assert unpacked.run(None).cycles >= packed.run(None).cycles

    def test_stream_rows_must_leave_intermediate_space(self, mixture_spn):
        with pytest.raises(ResourceError):
            compile_spn(mixture_spn, ptree_config(), ScheduleOptions(stream_rows=64))

    def test_too_small_data_memory_detected(self, small_rat_spn):
        tiny_dmem = ptree_config(dmem_rows=1)
        with pytest.raises(ResourceError):
            compile_spn(small_rat_spn, tiny_dmem)

    def test_custom_arrangement_compiles(self, small_rat_spn):
        config = ProcessorConfig(name="P8x2", n_trees=8, n_levels=2, n_banks=32, bank_depth=64)
        kernel = compile_spn(small_rat_spn, config)
        assert verify_program(kernel, [None, {0: 1}])
