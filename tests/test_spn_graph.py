"""Unit tests for the SPN graph container (structure, scopes, validity)."""

import pytest

from repro.spn.graph import SPN, StructureError
from repro.spn.nodes import SumNode


class TestBuilder:
    def test_ids_are_dense(self, tiny_spn):
        assert tiny_spn.node_ids() == list(range(len(tiny_spn)))

    def test_children_must_exist(self):
        spn = SPN()
        with pytest.raises(StructureError):
            spn.add_sum([42], weights=[1.0])

    def test_negative_indicator_rejected(self):
        spn = SPN()
        with pytest.raises(StructureError):
            spn.add_indicator(-1, 0)

    def test_negative_parameter_rejected(self):
        spn = SPN()
        with pytest.raises(StructureError):
            spn.add_parameter(-0.5)

    def test_root_must_exist(self):
        spn = SPN()
        with pytest.raises(StructureError):
            spn.set_root(3)

    def test_root_required_for_queries(self):
        spn = SPN()
        spn.add_indicator(0, 0)
        with pytest.raises(StructureError):
            _ = spn.root

    def test_contains(self, tiny_spn):
        assert 0 in tiny_spn
        assert len(tiny_spn) not in tiny_spn


class TestTopologicalOrder:
    def test_children_before_parents(self, mixture_spn):
        order = mixture_spn.topological_order()
        position = {nid: i for i, nid in enumerate(order)}
        for nid in order:
            for child in mixture_spn.node(nid).children:
                assert position[child] < position[nid]

    def test_root_is_last(self, mixture_spn):
        assert mixture_spn.topological_order()[-1] == mixture_spn.root

    def test_only_reachable_nodes(self):
        spn = SPN()
        a = spn.add_indicator(0, 0)
        b = spn.add_indicator(0, 1)
        spn.add_indicator(5, 0)  # unreachable
        root = spn.add_sum([a, b], weights=[0.5, 0.5])
        spn.set_root(root)
        assert len(spn.topological_order()) == 3

    def test_deep_chain_does_not_recurse(self):
        spn = SPN()
        node = SPN.bernoulli_leaf(spn, 0, 0.5)
        for _ in range(3000):
            node = spn.add_sum([node], weights=[1.0])
        spn.set_root(node)
        assert len(spn.topological_order()) == 3003


class TestScopesAndStats:
    def test_scopes(self, tiny_spn):
        scopes = tiny_spn.scopes()
        assert scopes[tiny_spn.root] == frozenset({0, 1})

    def test_parameter_leaf_scope_empty(self):
        spn = SPN()
        p = spn.add_parameter(0.5)
        i = spn.add_indicator(0, 1)
        root = spn.add_product([p, i])
        spn.set_root(root)
        assert spn.scopes()[p] == frozenset()

    def test_variables(self, mixture_spn):
        assert mixture_spn.variables() == [0, 1]

    def test_num_values(self, mixture_spn):
        assert mixture_spn.num_values() == {0: 2, 1: 2}

    def test_depth(self, tiny_spn):
        assert tiny_spn.depth() == 2

    def test_stats_counts(self, tiny_spn):
        stats = tiny_spn.stats()
        assert stats.n_indicator == 4
        assert stats.n_sum == 2
        assert stats.n_product == 1
        assert stats.n_vars == 2
        assert stats.n_nodes == 7

    def test_stats_binary_ops(self, tiny_spn):
        # Each weighted 2-ary sum is 2 muls + 1 add, the product is 1 mul.
        assert tiny_spn.stats().n_binary_ops == 7

    def test_parents(self, tiny_spn):
        parents = tiny_spn.parents()
        assert parents[tiny_spn.root] == []
        root_children = tiny_spn.node(tiny_spn.root).children
        for child in root_children:
            assert tiny_spn.root in parents[child]


class TestValidity:
    def test_valid_fixture(self, mixture_spn):
        mixture_spn.check_valid()
        assert mixture_spn.is_valid()

    def test_non_smooth_detected(self):
        spn = SPN()
        a = SPN.bernoulli_leaf(spn, 0, 0.5)
        b = SPN.bernoulli_leaf(spn, 1, 0.5)
        root = spn.add_sum([a, b], weights=[0.5, 0.5])
        spn.set_root(root)
        with pytest.raises(StructureError, match="smooth"):
            spn.check_smooth()
        assert not spn.is_valid()

    def test_non_decomposable_detected(self):
        spn = SPN()
        a = SPN.bernoulli_leaf(spn, 0, 0.5)
        b = SPN.bernoulli_leaf(spn, 0, 0.7)
        root = spn.add_product([a, b])
        spn.set_root(root)
        with pytest.raises(StructureError, match="decomposable"):
            spn.check_decomposable()

    def test_generated_spns_are_valid(self, small_random_spn, small_rat_spn):
        small_random_spn.check_valid()
        small_rat_spn.check_valid()

    def test_bernoulli_leaf_probability_range(self):
        spn = SPN()
        with pytest.raises(StructureError):
            SPN.bernoulli_leaf(spn, 0, 1.5)

    def test_copy_is_independent(self, tiny_spn):
        clone = tiny_spn.copy()
        clone.add_indicator(9, 0)
        assert len(clone) == len(tiny_spn) + 1
