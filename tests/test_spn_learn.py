"""Tests for the LearnSPN-style structure learner and the synthetic datasets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spn.datasets import DatasetSpec, empirical_loglik, generate_dataset, train_test_split
from repro.spn.evaluate import MARGINALIZED, evaluate_batch, partition_function
from repro.spn.learn import LearnConfig, learn_spn, pairwise_mutual_information
from repro.spn.queries import log_likelihood

from oracle import BruteForceOracle
from strategies import learn_configs


class TestDatasets:
    def test_shape_and_values(self):
        data = generate_dataset(DatasetSpec(n_vars=12, n_rows=200, seed=1))
        assert data.shape == (200, 12)
        assert set(np.unique(data)) <= {0, 1}

    def test_deterministic(self):
        spec = DatasetSpec(n_vars=6, n_rows=50, seed=9)
        assert np.array_equal(generate_dataset(spec), generate_dataset(spec))

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            DatasetSpec(n_vars=0, n_rows=10)
        with pytest.raises(ValueError):
            DatasetSpec(n_vars=5, n_rows=10, noise=0.9)

    def test_noise_half_gives_independent_columns(self):
        data = generate_dataset(DatasetSpec(n_vars=4, n_rows=4000, n_clusters=2, noise=0.5, seed=2))
        mi = pairwise_mutual_information(data)
        assert mi.max() < 0.01

    def test_low_noise_gives_correlated_clusters(self):
        data = generate_dataset(DatasetSpec(n_vars=4, n_rows=4000, n_clusters=2, noise=0.05, seed=2))
        mi = pairwise_mutual_information(data)
        # Variables 0 and 2 share a cluster (round-robin assignment).
        assert mi[0, 2] > 0.2

    def test_train_test_split(self):
        data = generate_dataset(DatasetSpec(n_vars=5, n_rows=100, seed=3))
        train, test = train_test_split(data, test_fraction=0.25, seed=0)
        assert train.shape[0] + test.shape[0] == 100
        assert test.shape[0] == 25

    def test_train_test_split_validation(self):
        data = np.zeros((10, 3), dtype=int)
        with pytest.raises(ValueError):
            train_test_split(data, test_fraction=0.0)

    def test_empirical_loglik(self):
        assert empirical_loglik([-1.0, -3.0]) == pytest.approx(-2.0)
        with pytest.raises(ValueError):
            empirical_loglik([])


class TestMutualInformation:
    def test_symmetric_nonnegative(self):
        data = generate_dataset(DatasetSpec(n_vars=5, n_rows=300, seed=4))
        mi = pairwise_mutual_information(data)
        assert np.allclose(mi, mi.T)
        assert (mi >= 0).all()
        assert np.allclose(np.diag(mi), 0.0)

    def test_perfect_correlation_high_mi(self):
        column = np.random.default_rng(0).integers(0, 2, size=500)
        data = np.stack([column, column], axis=1)
        mi = pairwise_mutual_information(data)
        assert mi[0, 1] > 0.5


class TestLearnSpn:
    @pytest.fixture()
    def data(self):
        return generate_dataset(DatasetSpec(n_vars=8, n_rows=400, n_clusters=2, noise=0.1, seed=5))

    def test_learned_structure_is_valid_and_normalized(self, data):
        spn = learn_spn(data)
        spn.check_valid()
        assert partition_function(spn) == pytest.approx(1.0)

    def test_covers_all_variables(self, data):
        spn = learn_spn(data)
        assert spn.variables() == list(range(data.shape[1]))

    def test_better_than_independent_model(self, data):
        dependent = learn_spn(data, LearnConfig(seed=0))
        independent = learn_spn(data, LearnConfig(independence_threshold=1e9, seed=0))
        assert log_likelihood(dependent, data) > log_likelihood(independent, data)

    def test_rejects_non_binary_data(self):
        with pytest.raises(ValueError):
            learn_spn(np.array([[0, 2], [1, 0]]))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            learn_spn(np.array([0, 1, 1]))

    def test_small_dataset_factorizes(self):
        data = np.array([[0, 1], [1, 0], [1, 1]])
        spn = learn_spn(data, LearnConfig(min_instances=10))
        spn.check_valid()
        assert partition_function(spn) == pytest.approx(1.0)

    def test_deterministic_given_seed(self, data):
        a = learn_spn(data, LearnConfig(seed=7))
        b = learn_spn(data, LearnConfig(seed=7))
        assert len(a) == len(b)
        assert log_likelihood(a, data[:50]) == pytest.approx(log_likelihood(b, data[:50]))


class TestLearnedOracleAgreement:
    """Differential property: learned SPNs on the vectorized engine agree
    with the brute-force enumeration oracle on training-domain queries.

    The oracle (``tests/oracle.py``) tabulates the full joint by per-node
    reference walks — no tape, no batching — so agreement here covers the
    whole learn → compile → execute chain with an independent reference.
    Queries span the training domain: raw training rows (fully observed),
    partially marginalized variants, and the all-marginalized row (the
    partition function).
    """

    @settings(max_examples=10, deadline=None)
    @given(config=learn_configs, data_seed=st.integers(min_value=0, max_value=1000))
    def test_vectorized_matches_oracle(self, config, data_seed):
        spec = DatasetSpec(n_vars=4, n_rows=160, seed=data_seed)
        data = generate_dataset(spec)
        spn = learn_spn(data, config)
        oracle = BruteForceOracle(spn)
        rng = np.random.default_rng(data_seed)
        rows = data[:6].astype(np.int64)
        masked = rows.copy()
        masked[rng.random(masked.shape) < 0.4] = MARGINALIZED
        evidence = np.vstack(
            [rows, masked, np.full((1, spec.n_vars), MARGINALIZED, dtype=np.int64)]
        )
        got = evaluate_batch(spn, evidence, engine="vectorized")
        want = np.array([oracle.prob(row) for row in evidence])
        np.testing.assert_allclose(got, want, rtol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(config=learn_configs)
    def test_config_round_trips_through_dict(self, config):
        assert LearnConfig.from_dict(config.as_dict()) == config
