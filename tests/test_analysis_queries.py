"""The analysis-query surface vs. the brute-force enumeration oracle.

Every new analysis kind — ``Sample``, ``Expectation``, ``Entropy``,
``MutualInformation``, ``Classify`` — is property-tested against
:class:`tests.oracle.BruteForceOracle`, an exact joint-table reference
that shares no code with the batched engines (no tape, no log domain, no
replacement sweeps).  Tolerance policy (documented in ``tests/oracle.py``):
the engines compute ``exp(log-ratio)`` of two tape passes, so linear-domain
sums agree to ``rtol=1e-9``; entropies and mutual information additionally
get ``atol=1e-9`` (legitimately tiny values), and *normalized* mutual
information — a ratio of two tiny sums — gets ``atol=1e-6``.

Alongside the oracle properties: the seeded-determinism contract of
``Sample`` (identical draws across planned/sharded/legacy execution and
across serving micro-batch composition), plan-shape guarantees (fixed
pass counts verified against the session's evaluation hook), serialization
round-trips, serving bit-identity, construction-time validation, and the
zero-probability ``nan`` convention.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    Classify,
    Entropy,
    Expectation,
    InferenceSession,
    MutualInformation,
    Sample,
    deserialize_query,
    serialize_query,
)
from repro.serving import BatchingPolicy, InferenceClient, InferenceServer
from repro.spn.evaluate import MARGINALIZED
from repro.spn.generate import generate_rat_spn, random_evidence
from repro.spn.graph import SPN
from repro.spn.memplan import ExecutionOptions
from repro.suite.registry import build_benchmark
from oracle import BruteForceOracle
from strategies import small_rat_configs

_SETTINGS = settings(max_examples=25, deadline=None)

BENCHMARK = "Banknote"
N_VARS = 4

#: Sharding forced on even for tiny batches (mirrors test_memplan).
FORCED_SHARDS = ExecutionOptions(mode="sharded", threads=2, min_shard_rows=1)


def _rows(config, seed, n_rows=4, observed=0.5):
    return random_evidence(
        config.n_vars, observed_fraction=observed, seed=seed, n_samples=n_rows
    )


def _variables(oracle, seed, at_most=3):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, min(at_most, len(oracle.variables)) + 1))
    return tuple(
        int(v)
        for v in rng.choice(oracle.variables, size=size, replace=False)
    )


# --------------------------------------------------------------------------- #
# Oracle agreement: every analysis kind, both engines
# --------------------------------------------------------------------------- #
class TestOracleAgreement:
    @_SETTINGS
    @given(
        config=small_rat_configs,
        seed=st.integers(0, 1000),
        engine=st.sampled_from(["python", "vectorized"]),
    )
    def test_expectation_matches_oracle(self, config, seed, engine):
        spn = generate_rat_spn(config)
        oracle = BruteForceOracle(spn)
        evidence = _rows(config, seed)
        variables = _variables(oracle, seed)
        rng = np.random.default_rng(seed)
        moment = int(rng.integers(1, 4))
        center = bool(rng.integers(2))
        query = Expectation(
            evidence=evidence, variables=variables, moment=moment, center=center
        )
        got = InferenceSession(spn, engine=engine).run(query)
        assert got.shape == (len(evidence), len(variables))
        expected = np.array([
            [oracle.expectation(row, v, moment=moment, center=center) for v in variables]
            for row in evidence
        ])
        # Centered moments cancel to near zero (binary domains, p close to
        # 1/2), so the engines' 1e-9-relative probabilities turn into a
        # 1e-9 *absolute* floor on the moment itself.
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)

    @_SETTINGS
    @given(
        config=small_rat_configs,
        seed=st.integers(0, 1000),
        engine=st.sampled_from(["python", "vectorized"]),
    )
    def test_entropy_matches_oracle(self, config, seed, engine):
        spn = generate_rat_spn(config)
        oracle = BruteForceOracle(spn)
        evidence = _rows(config, seed)
        variables = _variables(oracle, seed)
        got = InferenceSession(spn, engine=engine).run(
            Entropy(evidence=evidence, variables=variables)
        )
        expected = np.array([
            [oracle.entropy(row, v) for v in variables] for row in evidence
        ])
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)
        # Observed variables carry zero residual uncertainty.
        for i, row in enumerate(evidence):
            for j, v in enumerate(variables):
                if row[v] >= 0:
                    assert got[i, j] == pytest.approx(0.0, abs=1e-12)

    @_SETTINGS
    @given(
        config=small_rat_configs,
        seed=st.integers(0, 1000),
        engine=st.sampled_from(["python", "vectorized"]),
        normalize=st.booleans(),
    )
    def test_mutual_information_matches_oracle(self, config, seed, engine, normalize):
        spn = generate_rat_spn(config)
        oracle = BruteForceOracle(spn)
        evidence = _rows(config, seed)
        variables = _variables(oracle, seed)
        got = InferenceSession(spn, engine=engine).run(
            MutualInformation(
                evidence=evidence, variables=variables, normalize=normalize
            )
        )
        k = len(variables)
        assert got.shape == (len(evidence), k, k)
        expected = np.stack([
            oracle.mutual_information_matrix(row, variables, normalize=normalize)
            for row in evidence
        ])
        # Normalized MI is a ratio of two near-zero sums; plain MI and the
        # diagonal entropies agree at the standard tolerance.
        atol = 1e-6 if normalize else 1e-9
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=atol)
        # The matrix is symmetric by construction (nan rows included).
        np.testing.assert_array_equal(got, np.swapaxes(got, 1, 2))

    @_SETTINGS
    @given(
        config=small_rat_configs,
        seed=st.integers(0, 1000),
        engine=st.sampled_from(["python", "vectorized"]),
        log=st.booleans(),
    )
    def test_classify_matches_oracle(self, config, seed, engine, log):
        spn = generate_rat_spn(config)
        oracle = BruteForceOracle(spn)
        evidence = _rows(config, seed)
        target = oracle.variables[seed % len(oracle.variables)]
        evidence[:, target] = MARGINALIZED
        got = InferenceSession(spn, engine=engine).run(
            Classify(evidence=evidence, target=target, log=log)
        )
        assert got.shape == (len(evidence), len(oracle.domains[target]))
        expected = np.array([oracle.classify(row, target) for row in evidence])
        linear = np.exp(got) if log else got  # exp(-inf) == 0 exactly
        np.testing.assert_allclose(linear, expected, rtol=1e-9, atol=1e-12)
        # Posteriors are distributions over the target's states.
        np.testing.assert_allclose(linear.sum(axis=1), 1.0, rtol=1e-9)

    @_SETTINGS
    @given(
        config=small_rat_configs,
        seed=st.integers(0, 1000),
        engine=st.sampled_from(["python", "vectorized"]),
    )
    def test_samples_fall_in_the_oracle_support(self, config, seed, engine):
        spn = generate_rat_spn(config)
        oracle = BruteForceOracle(spn)
        evidence = _rows(config, seed, n_rows=3, observed=0.5)
        query = Sample(evidence=evidence, n_samples=3, seed=seed)
        got = InferenceSession(spn, engine=engine).run(query)
        assert got.shape == (3, 3, config.n_vars)
        assert got.dtype == np.int64
        for i, row in enumerate(evidence):
            support = oracle.support(row)
            for s in range(3):
                drawn = tuple(int(got[i, s, v]) for v in oracle.variables)
                assert drawn in support
                # Observed evidence is echoed verbatim, never resampled.
                for v in oracle.variables:
                    if row[v] >= 0:
                        assert got[i, s, v] == row[v]

    def test_sample_frequencies_match_the_joint(self, mixture_spn):
        # A two-component mixture (correlated variables): the empirical
        # joint over 4000 ancestral samples reproduces the exact joint.
        # Deterministic — fixed seed, fixed draw count.
        oracle = BruteForceOracle(mixture_spn)
        row = np.array([[MARGINALIZED, MARGINALIZED]])
        got = InferenceSession(mixture_spn).run(
            Sample(evidence=row, n_samples=4000, seed=7)
        )
        expected = oracle.dist(row[0], (0, 1))
        empirical = np.zeros_like(expected)
        for a, b in got[0]:
            empirical[a, b] += 1.0
        empirical /= got.shape[1]
        np.testing.assert_allclose(empirical, expected, atol=0.03)

    def test_conditional_sample_frequencies(self, mixture_spn):
        # Conditioning flips the mixture posterior: P(X1 | X0=1) is
        # dominated by the second component.  Frequencies must track the
        # *conditional*, not the marginal.
        oracle = BruteForceOracle(mixture_spn)
        row = np.array([[1, MARGINALIZED]])
        got = InferenceSession(mixture_spn).run(
            Sample(evidence=row, n_samples=4000, seed=13)
        )
        assert (got[0, :, 0] == 1).all()
        expected = oracle.dist(row[0], (1,))
        counts = np.bincount(got[0, :, 1], minlength=2) / got.shape[1]
        np.testing.assert_allclose(counts, expected, atol=0.03)


# --------------------------------------------------------------------------- #
# Seeded determinism (the Sample contract)
# --------------------------------------------------------------------------- #
class TestSampleDeterminism:
    @pytest.fixture(scope="class")
    def spn(self):
        return build_benchmark(BENCHMARK)

    @pytest.fixture(scope="class")
    def query(self):
        evidence = random_evidence(
            N_VARS, observed_fraction=0.5, seed=21, n_samples=6
        )
        return Sample(evidence=evidence, n_samples=3, seed=11)

    def test_identical_across_execution_modes(self, spn, query):
        # Draws depend only on (seed, row_id, variable) — the execution
        # mode (planned / sharded / legacy slots) cannot perturb them.
        planned = InferenceSession(spn, execution="planned").run(query)
        sharded = InferenceSession(spn, execution=FORCED_SHARDS).run(query)
        legacy = InferenceSession(spn, execution="legacy").run(query)
        assert np.array_equal(planned, sharded)
        assert np.array_equal(planned, legacy)

    def test_identical_across_repeat_runs(self, spn, query):
        session = InferenceSession(spn)
        assert np.array_equal(session.run(query), session.run(query))

    def test_single_row_reproduces_its_batch_slice(self, spn, query):
        # row_ids pin the per-row streams: resubmitting any single row
        # with its original id reproduces that row's draws exactly.
        session = InferenceSession(spn)
        batch = session.run(query)
        for i in (0, 3, 5):
            solo = session.run(
                Sample(
                    evidence=query.evidence[i],
                    n_samples=query.n_samples,
                    seed=query.seed,
                    row_ids=np.array([i]),
                )
            )
            assert np.array_equal(solo[0], batch[i])

    def test_batch_composition_is_invisible(self, spn, query):
        # Splitting the batch in two (explicit row_ids) concatenates back
        # to the full-batch result bit-for-bit.
        session = InferenceSession(spn)
        batch = session.run(query)
        first = session.run(
            Sample(
                evidence=query.evidence[:2],
                n_samples=query.n_samples,
                seed=query.seed,
                row_ids=np.arange(2),
            )
        )
        rest = session.run(
            Sample(
                evidence=query.evidence[2:],
                n_samples=query.n_samples,
                seed=query.seed,
                row_ids=np.arange(2, 6),
            )
        )
        assert np.array_equal(np.concatenate([first, rest]), batch)

    def test_served_samples_bit_identical_to_offline(self, spn, query):
        # Micro-batching (3-row batches, two workers) re-scatters the rows
        # across sub-batches; row_ids travel with them, so the served
        # result is the offline result exactly.
        offline = InferenceSession(spn).run(query)
        policy = BatchingPolicy(max_batch_size=3, max_wait_s=0.001)
        with InferenceServer(
            models=[BENCHMARK], policy=policy, n_workers=2
        ) as server:
            served = server.submit(BENCHMARK, query).result(timeout=30)
        assert np.array_equal(served, offline)

    def test_distinct_seeds_decorrelate(self, spn, query):
        session = InferenceSession(spn)
        other = Sample(evidence=query.evidence, n_samples=3, seed=12)
        assert not np.array_equal(session.run(query), session.run(other))

    def test_group_key_excludes_row_ids_but_pins_the_stream(self, query):
        # Micro-batches may merge requests with different row_ids (the
        # draws are per-row), but never requests with different seeds or
        # draw counts.
        same = Sample(
            evidence=query.evidence[:2],
            n_samples=query.n_samples,
            seed=query.seed,
            row_ids=np.array([7, 9]),
        )
        assert same.group_key() == query.group_key()
        reseeded = Sample(evidence=query.evidence, n_samples=3, seed=99)
        widened = Sample(evidence=query.evidence, n_samples=4, seed=11)
        assert reseeded.group_key() != query.group_key()
        assert widened.group_key() != query.group_key()


# --------------------------------------------------------------------------- #
# Plan shapes: fixed pass counts, verified against actual evaluations
# --------------------------------------------------------------------------- #
class TestPlanShapes:
    @pytest.fixture(scope="class")
    def spn(self):
        return build_benchmark(BENCHMARK)

    def _count_evaluations(self, session, query):
        calls = []
        session.on_evaluate = lambda domain, rows: calls.append((domain, rows))
        try:
            session.run(query)
        finally:
            session.on_evaluate = None
        return calls

    def test_classify_is_two_log_passes(self, spn):
        evidence = random_evidence(N_VARS, observed_fraction=0.5, seed=2, n_samples=5)
        evidence[:, 0] = MARGINALIZED
        session = InferenceSession(spn)
        query = Classify(evidence=evidence, target=0)
        plan = session.plan(query)
        assert [(p.domain, p.operand) for p in plan.passes] == [
            ("log", "joint"), ("log", "evidence"),
        ]
        assert len(self._count_evaluations(session, query)) == 2

    def test_expectation_and_entropy_are_two_log_passes(self, spn):
        evidence = random_evidence(N_VARS, observed_fraction=0.5, seed=3, n_samples=5)
        session = InferenceSession(spn)
        for query in (
            Expectation(evidence=evidence, moment=2, center=True),
            Entropy(evidence=evidence),
        ):
            plan = session.plan(query)
            assert [(p.domain, p.operand) for p in plan.passes] == [
                ("log", "state-sweep"), ("log", "evidence"),
            ]
            assert len(self._count_evaluations(session, query)) == 2

    def test_mutual_information_is_three_log_passes(self, spn):
        evidence = random_evidence(N_VARS, observed_fraction=0.3, seed=4, n_samples=5)
        session = InferenceSession(spn)
        query = MutualInformation(evidence=evidence)
        plan = session.plan(query)
        assert [p.operand for p in plan.passes] == [
            "pair-sweep", "state-sweep", "evidence",
        ]
        assert len(self._count_evaluations(session, query)) == 3

    def test_sample_is_one_pass_per_free_variable(self, spn):
        evidence = np.full((3, N_VARS), MARGINALIZED, dtype=np.int64)
        evidence[:, 0] = 1  # observed everywhere: no pass for variable 0
        evidence[1, 2] = 0  # free in *some* row: still a chain pass
        session = InferenceSession(spn)
        query = Sample(evidence=evidence, n_samples=2, seed=0)
        plan = session.plan(query)
        assert [p.operand for p in plan.passes] == ["chain:1", "chain:2", "chain:3"]
        assert len(self._count_evaluations(session, query)) == 3

    def test_fully_observed_sample_needs_no_passes(self, spn):
        evidence = random_evidence(N_VARS, observed_fraction=1.0, seed=5, n_samples=4)
        session = InferenceSession(spn)
        query = Sample(evidence=evidence, n_samples=2, seed=0)
        assert session.plan(query).passes == ()
        assert self._count_evaluations(session, query) == []
        got = session.run(query)
        for s in range(2):
            assert np.array_equal(got[:, s, :], evidence)


# --------------------------------------------------------------------------- #
# Serialization and serving: payload round-trips, bit-identity to offline
# --------------------------------------------------------------------------- #
class TestServingAndSerialization:
    @pytest.fixture(scope="class")
    def spn(self):
        return build_benchmark(BENCHMARK)

    def queries(self):
        evidence = random_evidence(N_VARS, observed_fraction=0.5, seed=31, n_samples=7)
        free = np.array(evidence, copy=True)
        free[:, 1] = MARGINALIZED
        return [
            Sample(evidence=evidence, n_samples=2, seed=5),
            Expectation(evidence=evidence, variables=(0, 2), moment=2, center=True),
            Entropy(evidence=evidence),
            MutualInformation(evidence=evidence, variables=(0, 1, 3), normalize=True),
            Classify(evidence=free, target=1, log=True),
        ]

    def test_payload_round_trip_is_exact(self, spn):
        session = InferenceSession(spn)
        for query in self.queries():
            restored = deserialize_query(
                json.loads(json.dumps(serialize_query(query)))
            )
            assert restored.kind == query.kind
            assert restored.params() == query.params()
            assert np.array_equal(restored.evidence, query.evidence)
            assert np.array_equal(session.run(restored), session.run(query))

    def test_served_analysis_queries_bit_identical_to_offline(self, spn):
        session = InferenceSession(spn)
        policy = BatchingPolicy(max_batch_size=3, max_wait_s=0.001)
        with InferenceServer(
            models=[BENCHMARK], policy=policy, n_workers=2
        ) as server:
            for query in self.queries():
                offline = session.run(query)
                served = server.submit(BENCHMARK, query).result(timeout=30)
                via_payload = server.submit(
                    BENCHMARK, json.loads(json.dumps(serialize_query(query)))
                ).result(timeout=30)
                assert np.array_equal(served, offline), query.kind
                assert np.array_equal(via_payload, offline), query.kind

    def test_client_verbs_serve_the_analysis_kinds(self, spn):
        session = InferenceSession(spn)
        with InferenceServer(models=[BENCHMARK]) as server:
            client = InferenceClient(server, model=BENCHMARK)
            probs = client.classify({0: 1}, target=1)
            entropy = client.entropy({0: 1}, variables=(1,))
            mi = client.mutual_information()
            moments = client.expectation({0: 1}, variables=(1, 2))
            drawn = client.sample({0: 1}, n_samples=3, seed=2)
        free = np.full((1, N_VARS), MARGINALIZED, dtype=np.int64)
        free[0, 0] = 1
        assert np.array_equal(
            probs, session.run(Classify(evidence=free, target=1))[0]
        )
        assert entropy == session.run(Entropy(evidence=free, variables=(1,)))[0, 0]
        assert np.array_equal(mi, session.run(MutualInformation())[0])
        assert np.array_equal(
            moments, session.run(Expectation(evidence=free, variables=(1, 2)))[0]
        )
        assert np.array_equal(
            drawn, session.run(Sample(evidence=free, n_samples=3, seed=2))[0]
        )

    def test_zero_row_batches_resolve_empty(self, spn):
        session = InferenceSession(spn)
        empty = np.zeros((0, N_VARS), dtype=np.int64)
        assert session.run(Sample(evidence=empty, n_samples=2)).shape[0] == 0
        assert session.run(Entropy(evidence=empty)).shape == (0, N_VARS)
        assert session.run(Classify(evidence=empty, target=0)).shape == (0, 2)
        assert session.run(MutualInformation(evidence=empty)).shape == (
            0, N_VARS, N_VARS,
        )


# --------------------------------------------------------------------------- #
# Construction-time validation
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_classify_requires_a_target(self):
        with pytest.raises(ValueError, match="requires a target"):
            Classify(evidence={0: 1})
        with pytest.raises(ValueError, match="non-negative"):
            Classify(evidence={0: 1}, target=-2)

    def test_classify_rejects_observed_target(self):
        with pytest.raises(ValueError, match="observed in evidence row"):
            Classify(evidence={0: 1, 1: 0}, target=1)

    def test_classify_unknown_target_fails_at_run(self, tiny_spn):
        query = Classify(evidence=np.full((1, 9), MARGINALIZED), target=7)
        with pytest.raises(ValueError, match="not a model variable"):
            InferenceSession(tiny_spn).run(query)

    def test_unknown_analysis_variable_fails_at_run(self, tiny_spn):
        session = InferenceSession(tiny_spn)
        for query in (
            Entropy(evidence={}, variables=(7,)),
            Expectation(evidence={}, variables=(7,)),
            MutualInformation(variables=(0, 7)),
        ):
            with pytest.raises(ValueError, match="not a model variable"):
                session.run(query)

    def test_variables_reject_duplicates_and_negatives(self):
        with pytest.raises(ValueError, match="duplicates"):
            Entropy(evidence={}, variables=(1, 1))
        with pytest.raises(ValueError, match="non-negative"):
            Expectation(evidence={}, variables=(-1,))

    def test_sample_parameter_validation(self):
        with pytest.raises(ValueError, match="n_samples"):
            Sample(evidence={}, n_samples=0)
        with pytest.raises(ValueError, match="seed"):
            Sample(evidence={}, seed=-1)
        with pytest.raises(ValueError, match="row_ids"):
            Sample(evidence=np.full((2, 2), MARGINALIZED), row_ids=np.array([0]))
        with pytest.raises(ValueError, match="row_ids"):
            Sample(evidence={}, row_ids=np.array([-3]))

    def test_expectation_moment_validation(self):
        with pytest.raises(ValueError, match="moment"):
            Expectation(evidence={}, moment=0)

    def test_mutual_information_defaults_to_one_marginal_row(self, tiny_spn):
        # MutualInformation() — no evidence at all — analyses the model's
        # prior: one fully-marginalized row over every variable.
        query = MutualInformation()
        assert query.n_rows == 1
        got = InferenceSession(tiny_spn).run(query)
        assert got.shape == (1, 2, 2)
        # tiny_spn's variables are independent: off-diagonal MI vanishes;
        # the diagonal carries the marginal entropies.
        assert got[0, 0, 1] == pytest.approx(0.0, abs=1e-9)
        for i, p in enumerate((0.3, 0.8)):
            h = -(p * math.log(p) + (1 - p) * math.log(1 - p))
            assert got[0, i, i] == pytest.approx(h, rel=1e-9)


# --------------------------------------------------------------------------- #
# Zero-probability evidence: nan results, Sample refuses
# --------------------------------------------------------------------------- #
class TestZeroProbabilityEvidence:
    @pytest.fixture()
    def contradiction(self):
        # P(X0=0) = 1: conditioning on X0=1 is a zero-probability event.
        spn = SPN()
        x0 = spn.add_indicator(0, 0)
        x1_0 = spn.add_indicator(1, 0)
        x1_1 = spn.add_indicator(1, 1)
        spn.set_root(
            spn.add_product([x0, spn.add_sum([x1_0, x1_1], weights=[0.5, 0.5])])
        )
        return spn

    @pytest.fixture()
    def impossible(self):
        return np.array([[1, MARGINALIZED]])

    def test_functionals_are_nan(self, contradiction, impossible):
        session = InferenceSession(contradiction)
        assert np.isnan(
            session.run(Expectation(evidence=impossible, variables=(1,)))
        ).all()
        assert np.isnan(
            session.run(Entropy(evidence=impossible, variables=(1,)))
        ).all()
        assert np.isnan(
            session.run(MutualInformation(evidence=impossible, variables=(0, 1)))
        ).all()
        assert np.isnan(
            session.run(Classify(evidence=impossible, target=1))
        ).all()

    def test_nan_rows_do_not_poison_the_batch(self, contradiction):
        batch = np.array([[0, MARGINALIZED], [1, MARGINALIZED]])
        session = InferenceSession(contradiction)
        got = session.run(Entropy(evidence=batch, variables=(1,)))
        assert got[0, 0] == pytest.approx(math.log(2), rel=1e-9)
        assert np.isnan(got[1, 0])

    def test_sample_refuses_impossible_evidence(self, contradiction, impossible):
        session = InferenceSession(contradiction)
        with pytest.raises(ValueError, match="probability zero"):
            session.run(Sample(evidence=impossible, n_samples=2))

    def test_oracle_agrees_on_the_convention(self, contradiction, impossible):
        oracle = BruteForceOracle(contradiction)
        assert oracle.prob(impossible[0]) == 0.0
        assert np.isnan(oracle.dist(impossible[0], (1,))).all()
        assert oracle.support(impossible[0]) == set()
