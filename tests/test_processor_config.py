"""Tests for the processor machine description."""

import pytest

from repro.processor.config import ProcessorConfig, ptree_config, pvect_config


class TestPaperConfigurations:
    def test_ptree_matches_table1(self):
        config = ptree_config()
        assert config.n_pes == 30
        assert config.n_trees == 2
        assert config.n_levels == 4
        assert config.n_banks == 32
        assert config.bank_depth == 64
        assert config.n_registers == 2048  # "2K 32b registers"

    def test_pvect_matches_table1(self):
        config = pvect_config()
        assert config.n_pes == 16
        assert config.n_levels == 1
        assert config.n_banks == 32
        assert config.n_registers == 2048

    def test_both_have_32_crossbar_ports(self):
        assert ptree_config().n_input_ports == 32
        assert pvect_config().n_input_ports == 32

    def test_data_memory_is_64_kb(self):
        config = ptree_config()
        assert config.dmem_rows * config.n_banks * 4 == 64 * 1024

    def test_overrides(self):
        config = ptree_config(bank_depth=16)
        assert config.bank_depth == 16
        assert config.name == "Ptree"


class TestValidation:
    def test_banks_divisible_by_trees(self):
        with pytest.raises(ValueError):
            ProcessorConfig(n_trees=3, n_levels=2, n_banks=32)

    def test_enough_banks_per_tree(self):
        with pytest.raises(ValueError):
            ProcessorConfig(n_trees=2, n_levels=5, n_banks=32)  # 16 leaf PEs need 32 banks/tree

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            ProcessorConfig(pe_latency=0)

    def test_invalid_bank_depth(self):
        with pytest.raises(ValueError):
            ProcessorConfig(bank_depth=1)


class TestStructure:
    def test_pes_per_level(self):
        config = ptree_config()
        assert [config.pes_at_level(l) for l in range(4)] == [8, 4, 2, 1]

    def test_pes_per_tree(self):
        assert ptree_config().pes_per_tree == 15
        assert pvect_config().pes_per_tree == 1

    def test_tree_bank_ranges_partition_banks(self):
        config = ptree_config()
        covered = []
        for tree in range(config.n_trees):
            lo, hi = config.tree_bank_range(tree)
            covered.extend(range(lo, hi))
        assert covered == list(range(config.n_banks))

    def test_invalid_tree_index(self):
        with pytest.raises(ValueError):
            ptree_config().tree_bank_range(5)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            ptree_config().pes_at_level(9)


class TestWriteWindows:
    def test_leaf_pes_write_two_banks(self):
        config = ptree_config()
        for pos in range(8):
            banks = config.allowed_write_banks(0, 0, pos)
            assert len(banks) == 2

    def test_window_doubles_per_level(self):
        config = ptree_config()
        assert len(config.allowed_write_banks(0, 1, 0)) == 4
        assert len(config.allowed_write_banks(0, 2, 0)) == 8
        assert len(config.allowed_write_banks(0, 3, 0)) == 16

    def test_windows_stay_in_private_slice(self):
        config = ptree_config()
        for tree in range(config.n_trees):
            lo, hi = config.tree_bank_range(tree)
            for level in range(config.n_levels):
                for pos in range(config.pes_at_level(level)):
                    banks = config.allowed_write_banks(tree, level, pos)
                    assert all(lo <= b < hi for b in banks)

    def test_leaf_windows_cover_every_bank(self):
        """Union of all leaf-PE write windows must cover the register file."""
        for config in (ptree_config(), pvect_config()):
            covered = set()
            for tree in range(config.n_trees):
                for pos in range(config.leaf_pes_per_tree):
                    covered.update(config.allowed_write_banks(tree, 0, pos))
            assert covered == set(range(config.n_banks))

    def test_invalid_position(self):
        with pytest.raises(ValueError):
            ptree_config().allowed_write_banks(0, 0, 8)


class TestLatency:
    def test_result_latency_grows_with_depth(self):
        config = ptree_config()
        latencies = [config.result_latency(d) for d in range(1, 5)]
        assert latencies == sorted(latencies)
        assert latencies[0] == config.pe_latency

    def test_result_latency_bounds(self):
        with pytest.raises(ValueError):
            ptree_config().result_latency(0)
        with pytest.raises(ValueError):
            ptree_config().result_latency(5)

    def test_summary_mentions_name(self):
        assert "Ptree" in ptree_config().summary()
