"""Structural tests on the programs emitted by the scheduler.

These tests inspect the generated VLIW code directly (rather than only its
simulated result) to check that the scheduler honours every machine
constraint it is responsible for: crossbar read ports, write windows,
write-port conflicts at commit time, single memory transaction per cycle and
read-after-write latencies.
"""

from collections import defaultdict

import pytest

from repro.compiler.driver import compile_operation_list
from repro.compiler.scheduler import ScheduleOptions
from repro.processor.config import ptree_config, pvect_config
from repro.processor.isa import OP_NOP
from repro.suite.registry import benchmark_operation_list


@pytest.fixture(scope="module", params=["Ptree", "Pvect"])
def compiled(request):
    config = ptree_config() if request.param == "Ptree" else pvect_config()
    ops = benchmark_operation_list("Banknote")
    return compile_operation_list(ops, config)


class TestStructuralInvariants:
    def test_one_read_per_bank_per_cycle(self, compiled):
        for instr in compiled.program.instructions:
            cells_by_bank = defaultdict(set)
            for read in instr.reads:
                cells_by_bank[read.bank].add((read.bank, read.reg))
            for bank, cells in cells_by_bank.items():
                assert len(cells) == 1, f"bank {bank} read at two addresses"

    def test_each_port_driven_at_most_once(self, compiled):
        for instr in compiled.program.instructions:
            ports = [read.port for read in instr.reads]
            assert len(ports) == len(set(ports))

    def test_writes_respect_bank_windows(self, compiled):
        config = compiled.config
        for instr in compiled.program.instructions:
            for write in instr.writes:
                tree, level, pos = write.pe
                allowed = config.allowed_write_banks(tree, level, pos)
                assert write.bank in allowed

    def test_writes_come_from_configured_pes(self, compiled):
        for instr in compiled.program.instructions:
            for write in instr.writes:
                assert instr.pe_ops.get(write.pe, OP_NOP) != OP_NOP

    def test_no_write_port_conflicts_at_commit(self, compiled):
        config = compiled.config
        commits = defaultdict(int)
        for cycle, instr in enumerate(compiled.program.instructions):
            for write in instr.writes:
                level = write.pe[1]
                commit = cycle + config.result_latency(level + 1)
                commits[(commit, write.bank)] += 1
        assert all(count <= 1 for count in commits.values())

    def test_at_most_one_memory_op_per_cycle(self, compiled):
        for instr in compiled.program.instructions:
            assert instr.mem is None or instr.mem.kind in ("load", "store")

    def test_register_indices_in_range(self, compiled):
        config = compiled.config
        for instr in compiled.program.instructions:
            for read in instr.reads:
                assert 0 <= read.bank < config.n_banks
                assert 0 <= read.reg < config.bank_depth
            for write in instr.writes:
                assert 0 <= write.bank < config.n_banks
                assert 0 <= write.reg < config.bank_depth

    def test_reads_only_after_producer_latency(self, compiled):
        """Any slot read at cycle t must have been written at least `latency` earlier."""
        config = compiled.config
        ready_cycle = {}
        for cycle, instr in enumerate(compiled.program.instructions):
            if instr.mem is not None and instr.mem.kind == "load" and instr.mem.slots:
                for slot in instr.mem.slots:
                    if slot is not None:
                        ready_cycle[slot] = cycle + config.load_latency
            for read in instr.reads:
                if read.slot is not None and read.slot in ready_cycle:
                    assert cycle >= ready_cycle[read.slot]
            for write in instr.writes:
                if write.slot is not None:
                    level = write.pe[1]
                    commit = cycle + config.result_latency(level + 1)
                    previous = ready_cycle.get(write.slot)
                    ready_cycle[write.slot] = (
                        commit if previous is None else min(previous, commit)
                    )

    def test_pe_ids_exist_in_machine(self, compiled):
        config = compiled.config
        for instr in compiled.program.instructions:
            for tree, level, pos in instr.pe_ops:
                assert 0 <= tree < config.n_trees
                assert 0 <= level < config.n_levels
                assert 0 <= pos < config.pes_at_level(level)

    def test_dmem_image_slots_are_inputs(self, compiled):
        n_inputs = compiled.ops.n_inputs
        for row in compiled.program.dmem_image:
            for slot in row:
                assert slot is None or 0 <= slot < n_inputs

    def test_arith_ops_counted_once(self, compiled):
        assert compiled.program.n_arith_ops == compiled.ops.n_operations


class TestScheduleQuality:
    def test_instruction_stream_is_compact(self, compiled):
        """The schedule must not be dominated by idle instructions."""
        program = compiled.program
        idle = sum(1 for i in program.instructions if not i.pe_ops and i.mem is None)
        assert idle <= 0.5 * program.n_instructions

    def test_loads_cover_all_referenced_inputs(self, compiled):
        referenced = set()
        for op in compiled.ops.operations:
            for arg in (op.arg0, op.arg1):
                if arg < compiled.ops.n_inputs:
                    referenced.add(arg)
        in_image = {slot for row in compiled.program.dmem_image for slot in row if slot is not None}
        assert referenced <= in_image

    def test_ptree_packs_multiple_cones_per_cycle(self):
        ops = benchmark_operation_list("Banknote")
        kernel = compile_operation_list(ops, ptree_config())
        per_cycle = [len(i.writes) for i in kernel.program.instructions if i.writes]
        assert max(per_cycle) > 1
