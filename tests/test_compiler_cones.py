"""Tests for the cone extraction (covering) pass of the compiler."""

import pytest

from repro.compiler.cones import extract_cones
from repro.spn.linearize import linearize
from repro.suite.registry import benchmark_operation_list


@pytest.fixture(scope="module")
def bench_ops():
    return benchmark_operation_list("Banknote")


def _check_cover(ops, graph):
    """Every operation is covered exactly once and operands are consistent."""
    seen = {}
    for cone in graph.cones:
        for member in cone.members:
            assert member not in seen, "operation covered twice"
            seen[member] = cone.index
    assert len(seen) == ops.n_operations
    for cone in graph.cones:
        for member in cone.members:
            left, right = cone.operands[member]
            op = ops.operations[member]
            for spec, arg in ((left, op.arg0), (right, op.arg1)):
                if spec.kind == "external":
                    assert spec.slot == arg
                else:
                    assert ops.dest_slot(spec.op_index) == arg
                    assert spec.op_index in cone.members


class TestCoverProperties:
    def test_every_op_covered_once(self, bench_ops):
        graph = extract_cones(bench_ops, max_depth=4)
        _check_cover(bench_ops, graph)

    def test_single_op_cones_for_pvect(self, bench_ops):
        graph = extract_cones(bench_ops, max_depth=1)
        assert all(c.n_ops == 1 for c in graph.cones)
        assert graph.n_cones == bench_ops.n_operations

    def test_depth_bound_respected(self, bench_ops):
        for max_depth in (1, 2, 3, 4):
            graph = extract_cones(bench_ops, max_depth=max_depth)
            assert all(c.depth <= max_depth for c in graph.cones)

    def test_deeper_trees_give_fewer_cones(self, bench_ops):
        shallow = extract_cones(bench_ops, max_depth=1)
        deep = extract_cones(bench_ops, max_depth=4)
        assert deep.n_cones < shallow.n_cones
        assert deep.average_ops_per_cone() > 1.0

    def test_root_operation_heads_a_cone(self, bench_ops):
        graph = extract_cones(bench_ops, max_depth=4)
        root_op = bench_ops.n_operations - 1
        assert any(c.root_op == root_op for c in graph.cones)

    def test_outputs_include_root_and_shared_values(self, bench_ops):
        graph = extract_cones(bench_ops, max_depth=4)
        fanout = bench_ops.fanout()
        for cone in graph.cones:
            assert cone.root_op in cone.outputs
            for member in cone.members:
                slot = bench_ops.dest_slot(member)
                internal_uses = sum(
                    1
                    for other in cone.members
                    for operand in cone.operands[other]
                    if operand.kind == "internal" and operand.op_index == member
                )
                external_uses = fanout[slot] - internal_uses
                if external_uses > 0:
                    assert member in cone.outputs

    def test_every_consumed_slot_has_a_producer(self, bench_ops):
        graph = extract_cones(bench_ops, max_depth=4)
        for cone in graph.cones:
            for slot in cone.external_slots():
                if slot >= bench_ops.n_inputs:
                    assert slot in graph.producer

    def test_embed_levels_fit_cone(self, bench_ops):
        graph = extract_cones(bench_ops, max_depth=4)
        for cone in graph.cones:
            for member in cone.members:
                assert 0 <= cone.embed_level(member) <= cone.height

    def test_invalid_arguments(self, bench_ops):
        with pytest.raises(ValueError):
            extract_cones(bench_ops, max_depth=0)
        with pytest.raises(ValueError):
            extract_cones(bench_ops, max_depth=2, min_density=0.0)


class TestConeGraphStructure:
    def test_dependencies_are_acyclic(self, bench_ops):
        graph = extract_cones(bench_ops, max_depth=4)
        levels = graph.asap_levels()
        for cone in graph.cones:
            for pred in graph.predecessors(cone):
                assert levels[pred] < levels[cone.index]

    def test_priorities_decrease_along_edges(self, bench_ops):
        graph = extract_cones(bench_ops, max_depth=4)
        priorities = graph.critical_path_priorities()
        for cone in graph.cones:
            for pred in graph.predecessors(cone):
                assert priorities[pred] > priorities[cone.index]

    def test_small_fixture_cover(self, mixture_spn):
        ops = linearize(mixture_spn)
        graph = extract_cones(ops, max_depth=4)
        _check_cover(ops, graph)
        assert graph.n_cones >= 1

    def test_empty_operation_list(self):
        from repro.spn.graph import SPN

        spn = SPN()
        spn.set_root(spn.add_indicator(0, 0))
        graph = extract_cones(linearize(spn), max_depth=4)
        assert graph.n_cones == 0
        assert graph.average_ops_per_cone() == 0.0
