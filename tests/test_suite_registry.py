"""Tests for the benchmark suite registry."""

import pytest

from repro.spn.evaluate import evaluate
from repro.suite.registry import (
    BENCHMARKS,
    benchmark_names,
    benchmark_operation_list,
    build_benchmark,
    get_profile,
    suite_summary,
)

_PAPER_BENCHMARKS = {
    "Netflix",
    "BBC",
    "Bio response",
    "Audio",
    "CPU",
    "MSNBC",
    "EEG-eye",
    "KDDCup2k",
    "Banknote",
}


class TestRegistry:
    def test_contains_the_nine_paper_benchmarks(self):
        assert set(benchmark_names()) == _PAPER_BENCHMARKS

    def test_profiles_are_consistent(self):
        for name, profile in BENCHMARKS.items():
            assert profile.name == name
            assert profile.model_vars <= profile.dataset_vars
            assert profile.model_vars >= 2

    def test_unknown_benchmark_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("ImageNet")

    def test_generator_config_round_trip(self):
        profile = get_profile("MSNBC")
        config = profile.generator_config()
        assert config.n_vars == profile.model_vars
        assert config.repetitions == profile.repetitions

    def test_distinct_seeds(self):
        seeds = [p.seed for p in BENCHMARKS.values()]
        assert len(seeds) == len(set(seeds))


class TestBuiltBenchmarks:
    def test_build_is_cached(self):
        assert build_benchmark("Banknote") is build_benchmark("Banknote")

    def test_banknote_structure(self):
        spn = build_benchmark("Banknote")
        spn.check_valid()
        assert spn.variables() == list(range(get_profile("Banknote").model_vars))

    def test_operation_list_matches_spn(self):
        spn = build_benchmark("Banknote")
        ops = benchmark_operation_list("Banknote")
        evidence = {0: 1, 1: 0, 2: 1, 3: 0}
        assert ops.execute(evidence) == pytest.approx(evaluate(spn, evidence))

    def test_suite_summary_covers_all(self):
        rows = suite_summary()
        assert len(rows) == len(_PAPER_BENCHMARKS)
        for name, model_vars, n_nodes, n_ops, depth in rows:
            assert name in _PAPER_BENCHMARKS
            assert n_nodes > 0 and n_ops > 0 and depth > 0

    def test_sizes_span_an_order_of_magnitude(self):
        rows = {name: n_ops for name, _, _, n_ops, _ in suite_summary()}
        assert rows["Banknote"] * 5 < rows["Bio response"]
