"""Static verification layer tests: verifier, abstract interpretation, lint.

The acceptance contract this file enforces:

* **Zero false positives** — every suite profile verifies clean for all
  three execution modes (planned / sharded share one plan; legacy is the
  tape-only contract), for fused and unfused plans, and for random RAT-SPN
  tapes drawn by Hypothesis.
* **100% detection** — every mutator in the seeded corpus
  (:mod:`repro.statics.mutate`) produces IR the verifier rejects, on every
  suite profile, for randomized mutation sites.
* The abstract interpreter proves normalization for all nine profiles and
  flags the PR 4 underflow bug class on deep product chains.
* The project lint's rules each fire on a seeded violation, stay quiet on
  the repository's known-correct concurrency patterns, and the tree under
  ``src/repro`` is clean with no suppressions.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.lifecycle.artifact import build_artifact, save_artifact
from repro.lifecycle.registry import ModelRegistry
from repro.spn.compiled import CompiledTape, TapeKernel, cached_tape
from repro.spn.generate import GeneratorConfig, generate_rat_spn, generate_spn
from repro.spn.linearize import OP_MUL, InputSlot
from repro.spn.memplan import ExecutionOptions
from repro.statics import (
    LOG_TINY,
    MUTATORS,
    VerificationError,
    analyze_tape,
    lint_paths,
    lint_source,
    mutate,
    verify_compiled,
    verify_tape,
)
from repro.suite.registry import benchmark_names, benchmark_tape

from strategies import rat_spn_configs

pytestmark = pytest.mark.statics

_SETTINGS = settings(max_examples=25, deadline=None)

_REPRO_ROOT = Path(repro.__file__).parent


# --------------------------------------------------------------------- #
# Zero false positives
# --------------------------------------------------------------------- #
class TestCleanVerification:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_suite_profiles_verify_clean_all_modes(self, name):
        """Planned/sharded (fused + unfused plans) and legacy (tape-only)
        all verify with no findings — the zero-false-positive half of the
        acceptance criteria."""
        tape = benchmark_tape(name)
        tape_facts, _ = verify_compiled(tape, None)  # legacy: no plan
        assert tape_facts.n_kernels == tape.n_kernels
        assert tape_facts.n_dead_slots == 0
        for fuse in (True, False):
            plan = tape.memory_plan(fuse=fuse)
            _, plan_facts = verify_compiled(tape, plan)
            assert plan_facts.n_physical == plan.n_physical
            assert plan_facts.fusion >= 1.0

    @_SETTINGS
    @given(config=rat_spn_configs())
    def test_random_tapes_verify_clean(self, config):
        """Freshly compiled+planned IR never trips the verifier."""
        tape = cached_tape(generate_rat_spn(config))
        verify_compiled(tape, tape.memory_plan())

    def test_verify_reports_facts(self):
        tape = benchmark_tape("Banknote")
        tape_facts, plan_facts = verify_compiled(tape, tape.memory_plan())
        assert tape_facts.n_inputs == tape.n_inputs
        assert tape_facts.n_operations == tape.n_operations
        assert plan_facts.n_physical <= tape.n_slots
        assert plan_facts.max_live <= plan_facts.n_physical


# --------------------------------------------------------------------- #
# 100% mutation detection
# --------------------------------------------------------------------- #
class TestMutationDetection:
    @pytest.mark.parametrize("mutator", sorted(MUTATORS))
    def test_corpus_detected_on_every_profile(self, mutator):
        """The deterministic full matrix: every mutator applies to every
        suite profile and every application is flagged."""
        for name in benchmark_names():
            tape = benchmark_tape(name)
            plan = tape.memory_plan()
            result = mutate(mutator, tape, plan, seed=3)
            assert result is not None, f"{mutator} inapplicable to {name}"
            with pytest.raises(VerificationError):
                verify_compiled(*result)

    @_SETTINGS
    @given(
        name=st.sampled_from(benchmark_names()),
        mutator=st.sampled_from(sorted(MUTATORS)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_randomized_mutation_sites_detected(self, name, mutator, seed):
        """Random (profile, mutator, site) triples — the mutation site is
        seed-chosen, so this explores kernels/lanes the deterministic
        matrix never touches."""
        tape = benchmark_tape(name)
        plan = tape.memory_plan()
        result = mutate(mutator, tape, plan, seed=seed)
        assert result is not None
        with pytest.raises(VerificationError):
            verify_compiled(*result)

    def test_error_carries_rule_and_detail(self):
        tape = benchmark_tape("Banknote")
        plan = tape.memory_plan()
        mutated_tape, mutated_plan = mutate("plan_root_redirect", tape, plan)
        with pytest.raises(VerificationError) as excinfo:
            verify_compiled(mutated_tape, mutated_plan)
        assert excinfo.value.rule == "plan-root"
        assert "[plan-root]" in str(excinfo.value)


# --------------------------------------------------------------------- #
# Gates: execution check mode, registry publication
# --------------------------------------------------------------------- #
class TestGates:
    def test_check_mode_runs_static_verification(self):
        """``ExecutionOptions(check=True)`` statically verifies the plan
        before the value replay — a corrupted cached plan is rejected even
        though its replayed values on the prefix rows might agree."""
        tape = cached_tape(generate_spn(GeneratorConfig(n_vars=5, seed=3)))
        plan = tape.memory_plan()
        plan.max_live -= 1  # liveness understated: values still correct
        data = np.full((4, 5), -1, dtype=np.int64)
        with pytest.raises(VerificationError):
            tape.execute_batch(data, execution=ExecutionOptions(check=True))
        plan.max_live += 1
        tape.execute_batch(data, execution=ExecutionOptions(check=True))
        assert getattr(plan, "_statics_verified", False)

    def test_publish_gate_rejects_corrupt_artifact(self):
        spn = generate_spn(GeneratorConfig(n_vars=5, seed=11))
        artifact = build_artifact(spn, name="m")
        registry = ModelRegistry()
        registry.publish("m", "1", artifact.session(), artifact=artifact)
        corrupt = build_artifact(spn, name="m")
        corrupt.plan.max_live -= 1
        with pytest.raises(VerificationError):
            registry.publish("m", "2", corrupt.session(), artifact=corrupt)
        assert registry.live_version("m") == "1"  # incumbent untouched


# --------------------------------------------------------------------- #
# Abstract interpretation
# --------------------------------------------------------------------- #
class TestAbstractInterpretation:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_suite_tapes_proved_normalized(self, name):
        """Every suite profile is normalized-by-construction: the interval
        domain proves log-domain outputs can never exceed 0."""
        analysis = analyze_tape(benchmark_tape(name))
        assert analysis.proves_log_nonpositive
        assert analysis.root_log_upper <= 1e-6
        assert not analysis.overflow_possible
        # Indicator misses can drive any profile's root to exactly 0.
        assert analysis.zero_possible

    def test_underflow_risk_flags_deep_profiles(self):
        """The PR 4 bug class, statically: the two 160-variable profiles
        have positive root values whose logs sit far below the smallest
        normal double, so a linear-domain pass may underflow them to 0.0;
        the shallower seven provably cannot."""
        risky = {
            name
            for name in benchmark_names()
            if analyze_tape(benchmark_tape(name)).underflow_risk
        }
        assert risky == {"BBC", "Bio response"}

    def test_deep_product_chain_flagged(self):
        """A 250-deep chain of 0.01 factors: positive, normalized, and
        guaranteed to underflow linear float64 (log ~ -1150 < -708)."""
        inputs = [
            InputSlot(index=0, kind="parameter", prob=0.01),
            InputSlot(index=1, kind="parameter", prob=0.01),
        ]
        kernels = [
            TapeKernel(
                level=1, op=OP_MUL, dest_start=2, dest_stop=3,
                arg0=np.array([0], dtype=np.intp),
                arg1=np.array([1], dtype=np.intp),
            )
        ]
        for depth in range(2, 250):
            kernels.append(
                TapeKernel(
                    level=depth, op=OP_MUL,
                    dest_start=depth + 1, dest_stop=depth + 2,
                    arg0=np.array([depth], dtype=np.intp),
                    arg1=np.array([0], dtype=np.intp),
                )
            )
        tape = CompiledTape(inputs=inputs, kernels=kernels, root_slot=250)
        verify_tape(tape)  # well-formed: the flag is semantic, not an error
        analysis = analyze_tape(tape)
        assert analysis.proves_log_nonpositive
        assert not analysis.zero_possible
        assert analysis.min_positive_log < LOG_TINY
        assert analysis.underflow_risk

    def test_shallow_tape_not_flagged(self):
        analysis = analyze_tape(benchmark_tape("Banknote"))
        assert not analysis.underflow_risk
        assert analysis.min_positive_log > LOG_TINY

    def test_negative_weight_rejected_before_analysis(self):
        """analyze_tape assumes verify_tape's non-negativity — and
        verify_tape does reject the violation."""
        tape = benchmark_tape("Banknote")
        mutated_tape, _ = mutate("tape_negative_weight", tape, tape.memory_plan())
        with pytest.raises(VerificationError) as excinfo:
            verify_tape(mutated_tape)
        assert excinfo.value.rule == "tape-input-domain"


# --------------------------------------------------------------------- #
# Project lint
# --------------------------------------------------------------------- #
class TestLint:
    def test_tree_is_clean(self):
        """The gate CI enforces: zero findings over src/repro, with no
        suppression mechanism even available."""
        assert lint_paths([_REPRO_ROOT]) == []

    def test_bare_except_flagged(self):
        findings = lint_source("try:\n    pass\nexcept:\n    pass\n")
        assert [f.rule for f in findings] == ["bare-except"]

    def test_guarded_write_outside_lock_flagged(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
            "    def reset(self):\n"
            "        self.count = 0\n"
        )
        findings = lint_source(source)
        assert [(f.rule, f.line) for f in findings] == [("lock-guarded-write", 10)]

    def test_constructor_writes_exempt(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
        )
        assert lint_source(source) == []

    def test_blocking_calls_under_lock_flagged(self):
        source = (
            "import threading, time\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def work(self, fut, thread):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)\n"
            "            fut.result()\n"
            "            thread.join()\n"
        )
        findings = lint_source(source)
        assert [f.rule for f in findings] == ["blocking-under-lock"] * 3

    def test_wait_on_held_condition_allowed(self):
        """The MicroBatchQueue shape: Condition(self._lock) aliases the
        lock, and waiting on the held condition releases it — sound."""
        source = (
            "import threading\n"
            "class Q:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cv = threading.Condition(self._lock)\n"
            "        self._items = []\n"
            "    def take(self):\n"
            "        with self._cv:\n"
            "            while not self._items:\n"
            "                self._cv.wait()\n"
            "            return self._items.pop()\n"
        )
        assert lint_source(source) == []

    def test_wait_on_foreign_condition_flagged(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._other = threading.Condition()\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            self._other.wait()\n"
        )
        findings = lint_source(source)
        assert [f.rule for f in findings] == ["blocking-under-lock"]

    def test_locked_helper_not_flagged(self):
        """A private helper only ever called under the lock (documented
        caller-holds-lock) is analyzed as locked, not flagged."""
        source = (
            "import threading\n"
            "class Q:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def put(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "    def take(self):\n"
            "        with self._lock:\n"
            "            return self._pop()\n"
            "    def _pop(self):\n"
            "        self._items.pop()\n"
        )
        assert lint_source(source) == []

    def test_unseeded_random_flagged_on_hot_paths_only(self):
        source = "import numpy as np\ndef f():\n    return np.random.rand(3)\n"
        assert [f.rule for f in lint_source(source, hot_path=True)] == [
            "unseeded-random"
        ]
        assert lint_source(source, hot_path=False) == []
        # Path-derived: spn/ is hot, experiments/ is not.
        assert lint_source(source, path="src/repro/spn/x.py") != []
        assert lint_source(source, path="src/repro/experiments/x.py") == []

    def test_seeded_random_allowed(self):
        source = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed).random(3)\n"
        )
        assert lint_source(source, hot_path=True) == []

    def test_closure_bodies_skipped(self):
        """Work handed to an executor runs on another thread later —
        lexical lock context proves nothing, so closures are not flagged."""
        source = (
            "import threading, time\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def schedule(self, pool):\n"
            "        with self._lock:\n"
            "            def job():\n"
            "                time.sleep(1)\n"
            "            pool.submit(job)\n"
        )
        assert lint_source(source) == []

    def test_broad_except_swallowing_flagged(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except BaseException:\n"
            "        pass\n"
        )
        assert [f.rule for f in lint_source(source)] == ["broad-except"]

    def test_broad_except_reraise_allowed(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except BaseException:\n"
            "        cleanup()\n"
            "        raise\n"
        )
        assert lint_source(source) == []

    def test_broad_except_conditional_reraise_allowed(self):
        """The retry-loop shape: re-raise unless the error is retryable."""
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except BaseException as exc:\n"
            "        if not retryable(exc):\n"
            "            raise\n"
        )
        assert lint_source(source) == []

    def test_broad_except_forwarding_sink_allowed(self):
        """The worker shape: the failure is routed into a future the
        caller is waiting on — caught, not swallowed."""
        source = (
            "def f(future):\n"
            "    try:\n"
            "        work()\n"
            "    except BaseException as exc:\n"
            "        future.set_exception(exc)\n"
        )
        assert lint_source(source) == []

    def test_broad_except_raise_in_closure_not_counted(self):
        """A ``raise`` inside a nested function body executes elsewhere;
        it does not make the enclosing handler safe."""
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except BaseException:\n"
            "        def later():\n"
            "            raise\n"
        )
        assert [f.rule for f in lint_source(source)] == ["broad-except"]

    def test_unbounded_result_flagged_in_serving_only(self):
        source = "def f(future):\n    return future.result()\n"
        serving = lint_source(source, path="src/repro/serving/x.py")
        assert [f.rule for f in serving] == ["unbounded-result"]
        assert lint_source(source, path="src/repro/spn/x.py") == []

    def test_bounded_result_allowed_in_serving(self):
        source = "def f(future):\n    return future.result(timeout=1.0)\n"
        assert lint_source(source, path="src/repro/serving/x.py") == []


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCli:
    def test_lint_command_clean_tree(self, capsys):
        from repro.statics.__main__ import main

        assert main(["lint", str(_REPRO_ROOT)]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_lint_command_reports_findings(self, tmp_path, capsys):
        from repro.statics.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main(["lint", str(bad)]) == 1
        assert "bare-except" in capsys.readouterr().out

    def test_verify_command_on_artifact(self, tmp_path, capsys):
        from repro.statics.__main__ import main

        artifact = build_artifact(
            generate_spn(GeneratorConfig(n_vars=5, seed=2)), name="m"
        )
        path = save_artifact(artifact, tmp_path / "m.json")
        assert main(["verify", "--artifact", str(path)]) == 0
        assert "statically verified" in capsys.readouterr().out

    def test_verify_command_rejects_corrupt_artifact(self, tmp_path, capsys):
        from repro.lifecycle.artifact import content_hash
        from repro.statics.__main__ import main

        artifact = build_artifact(
            generate_spn(GeneratorConfig(n_vars=5, seed=2)), name="m"
        )
        doc = json.loads(json.dumps(artifact.to_payload()))
        doc["body"]["plan"]["max_live"] -= 1
        doc["content_hash"] = content_hash(doc["body"])
        path = tmp_path / "corrupt.json"
        path.write_text(json.dumps(doc))
        assert main(["verify", "--artifact", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out
