"""Tests for the shared-memory bank allocation (graph coloring) of the GPU kernel."""

import pytest

from repro.baselines.gpu_banks import (
    color_banks,
    conflict_graph,
    count_warp_conflicts,
    graph_coloring_allocation,
    interleaved_allocation,
)
from repro.suite.registry import benchmark_operation_list


@pytest.fixture(scope="module")
def ops():
    return benchmark_operation_list("Banknote")


class TestInterleaved:
    def test_covers_all_slots(self, ops):
        allocation = interleaved_allocation(ops, 32)
        assert len(allocation) == ops.n_slots
        assert set(allocation) <= set(range(32))

    def test_modulo_layout(self, ops):
        allocation = interleaved_allocation(ops, 8)
        assert allocation[:10] == [i % 8 for i in range(10)]

    def test_invalid_banks(self, ops):
        with pytest.raises(ValueError):
            interleaved_allocation(ops, 0)


class TestConflictGraph:
    def test_symmetric(self, ops):
        graph = conflict_graph(ops, n_threads=256)
        for node, neighbours in graph.items():
            for other in neighbours:
                assert node in graph[other]

    def test_no_self_edges(self, ops):
        graph = conflict_graph(ops, n_threads=256)
        for node, neighbours in graph.items():
            assert node not in neighbours

    def test_more_threads_more_conflict_edges(self, ops):
        few = conflict_graph(ops, n_threads=32)
        many = conflict_graph(ops, n_threads=256)
        n_edges = lambda g: sum(len(v) for v in g.values())  # noqa: E731
        assert n_edges(many) >= n_edges(few)


class TestColoring:
    def test_all_slots_assigned(self, ops):
        allocation = graph_coloring_allocation(ops, n_threads=256, n_banks=32)
        assert len(allocation) == ops.n_slots
        assert min(allocation) >= 0
        assert max(allocation) < 32

    def test_respects_colorable_graph(self):
        graph = {0: {1}, 1: {0}, 2: set()}
        colors = color_banks(graph, n_slots=3, n_banks=2)
        assert colors[0] != colors[1]

    def test_invalid_banks(self):
        with pytest.raises(ValueError):
            color_banks({}, n_slots=1, n_banks=0)

    def test_coloring_reduces_transactions(self, ops):
        colored = graph_coloring_allocation(ops, n_threads=256, n_banks=32)
        interleaved = interleaved_allocation(ops, 32)
        t_colored, accesses = count_warp_conflicts(ops, colored, 256, 32)
        t_interleaved, _ = count_warp_conflicts(ops, interleaved, 256, 32)
        assert t_colored <= t_interleaved
        assert t_colored >= accesses  # at least one transaction per access step

    def test_conflict_free_lower_bound(self, ops):
        allocation = graph_coloring_allocation(ops, n_threads=32, n_banks=32)
        transactions, accesses = count_warp_conflicts(ops, allocation, 32, 32)
        assert transactions >= accesses


class TestSharedAccounting:
    """The timing model and the conflict counter share one accounting helper.

    Regression test for the historical duplication between
    ``gpu_banks.count_warp_conflicts`` and the inline counting loop of
    ``gpu.simulate_gpu``: both must charge exactly the same number of
    shared-memory transactions for the same allocation.
    """

    @pytest.mark.parametrize("allocation_strategy", ["coloring", "interleaved"])
    def test_simulate_gpu_transactions_match_counter(self, ops, allocation_strategy):
        from repro.baselines.gpu import GpuConfig, simulate_gpu

        config = GpuConfig(n_threads=256, bank_allocation=allocation_strategy)
        result = simulate_gpu(ops, config)
        if allocation_strategy == "coloring":
            bank_of = graph_coloring_allocation(
                ops, config.n_threads, config.n_banks, config.warp_size
            )
        else:
            bank_of = interleaved_allocation(ops, config.n_banks)
        transactions, accesses = count_warp_conflicts(
            ops, bank_of, config.n_threads, config.n_banks, config.warp_size
        )
        assert result.n_transactions == transactions
        assert result.n_conflict_transactions == transactions - accesses

    def test_step_transactions_counts_most_loaded_bank(self):
        from repro.baselines.gpu_banks import step_transactions

        assert step_transactions([0, 1, 2], [0, 1, 2]) == 1  # conflict-free
        assert step_transactions([0, 1, 2], [0, 0, 1]) == 2  # two hit bank 0
        assert step_transactions([3, 3, 3], [0, 0, 0, 0]) == 3

    def test_warp_access_steps_shape(self, ops):
        from repro.baselines.gpu_banks import warp_access_steps

        group = ops.groups()[0]
        steps = warp_access_steps(ops, group[:4])
        assert len(steps) == 3
        assert all(len(step) == len(group[:4]) for step in steps)
