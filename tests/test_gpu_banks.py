"""Tests for the shared-memory bank allocation (graph coloring) of the GPU kernel."""

import pytest

from repro.baselines.gpu_banks import (
    color_banks,
    conflict_graph,
    count_warp_conflicts,
    graph_coloring_allocation,
    interleaved_allocation,
)
from repro.suite.registry import benchmark_operation_list


@pytest.fixture(scope="module")
def ops():
    return benchmark_operation_list("Banknote")


class TestInterleaved:
    def test_covers_all_slots(self, ops):
        allocation = interleaved_allocation(ops, 32)
        assert len(allocation) == ops.n_slots
        assert set(allocation) <= set(range(32))

    def test_modulo_layout(self, ops):
        allocation = interleaved_allocation(ops, 8)
        assert allocation[:10] == [i % 8 for i in range(10)]

    def test_invalid_banks(self, ops):
        with pytest.raises(ValueError):
            interleaved_allocation(ops, 0)


class TestConflictGraph:
    def test_symmetric(self, ops):
        graph = conflict_graph(ops, n_threads=256)
        for node, neighbours in graph.items():
            for other in neighbours:
                assert node in graph[other]

    def test_no_self_edges(self, ops):
        graph = conflict_graph(ops, n_threads=256)
        for node, neighbours in graph.items():
            assert node not in neighbours

    def test_more_threads_more_conflict_edges(self, ops):
        few = conflict_graph(ops, n_threads=32)
        many = conflict_graph(ops, n_threads=256)
        n_edges = lambda g: sum(len(v) for v in g.values())  # noqa: E731
        assert n_edges(many) >= n_edges(few)


class TestColoring:
    def test_all_slots_assigned(self, ops):
        allocation = graph_coloring_allocation(ops, n_threads=256, n_banks=32)
        assert len(allocation) == ops.n_slots
        assert min(allocation) >= 0
        assert max(allocation) < 32

    def test_respects_colorable_graph(self):
        graph = {0: {1}, 1: {0}, 2: set()}
        colors = color_banks(graph, n_slots=3, n_banks=2)
        assert colors[0] != colors[1]

    def test_invalid_banks(self):
        with pytest.raises(ValueError):
            color_banks({}, n_slots=1, n_banks=0)

    def test_coloring_reduces_transactions(self, ops):
        colored = graph_coloring_allocation(ops, n_threads=256, n_banks=32)
        interleaved = interleaved_allocation(ops, 32)
        t_colored, accesses = count_warp_conflicts(ops, colored, 256, 32)
        t_interleaved, _ = count_warp_conflicts(ops, interleaved, 256, 32)
        assert t_colored <= t_interleaved
        assert t_colored >= accesses  # at least one transaction per access step

    def test_conflict_free_lower_bound(self, ops):
        allocation = graph_coloring_allocation(ops, n_threads=32, n_banks=32)
        transactions, accesses = count_warp_conflicts(ops, allocation, 32, 32)
        assert transactions >= accesses
