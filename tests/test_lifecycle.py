"""The model lifecycle: AOT artifacts, training, registry, hot-swap.

Four suites gated by the golden-replay harness (``tests/golden.py``):

* **Artifact round-trip** — save → load → execute is bit-identical
  (``array_equal``) to the freshly compiled model on every suite profile,
  every execution mode, and every one of the ten query kinds; loading
  performs no compilation (the shipped tape and plan are adopted).
* **Corruption** — table-driven malformed documents: every mode raises the
  typed :class:`~repro.lifecycle.artifact.ArtifactFormatError` /
  :class:`~repro.lifecycle.artifact.ArtifactIntegrityError`, never a bare
  ``KeyError``/``IndexError``.
* **Training pipeline** — learn → compile → package with the sweep-style
  on-disk cache whose entries are the artifact files themselves.
* **Registry + serving** — shadow-validated publish, atomic hot-swap with
  in-flight requests draining on the version that admitted them, rollback,
  and zero lost requests under sustained concurrent load across a swap.
"""

from __future__ import annotations

import copy
import json
import threading
import time

import numpy as np
import pytest

from repro.api.session import InferenceSession
from repro.lifecycle import (
    ModelRegistry,
    ShadowValidationError,
    TrainingJob,
    build_artifact,
    golden_evidence,
    golden_replay,
    load_artifact,
    replay_deviation,
    save_artifact,
    train_many,
)
from repro.lifecycle.artifact import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactIntegrityError,
    artifact_from_payload,
    content_hash,
)
from repro.lifecycle.__main__ import main as lifecycle_main
from repro.serving import (
    InferenceClient,
    InferenceServer,
    ModelRouter,
    PublishReport,
)
from repro.spn import io as spn_io
from repro.spn.datasets import DatasetSpec
from repro.spn.generate import GeneratorConfig, generate_spn
from repro.suite.registry import benchmark_artifact, benchmark_names, build_benchmark

from golden import all_kinds_queries, assert_replays_identical, replay_queries

pytestmark = pytest.mark.lifecycle

EXECUTION_MODES = ("planned", "sharded", "legacy")


def _small_spn(seed: int = 7, n_vars: int = 6):
    return generate_spn(GeneratorConfig(n_vars=n_vars, n_values=2, seed=seed))


def _perturbed(spn, delta: float = 0.05):
    """The same network with one sum weight nudged — a wrong-parameters twin."""
    doc = copy.deepcopy(spn_io.to_json(spn))
    for record in doc["nodes"]:
        if record["type"] == "sum" and "weights" in record:
            record["weights"][0] += delta
            return spn_io.from_json(doc)
    raise AssertionError("network has no weighted sum node")


def _document(artifact) -> dict:
    """The artifact's on-disk document, as JSON would round-trip it."""
    return json.loads(json.dumps(artifact.to_payload()))


def _rehashed(doc: dict) -> dict:
    """Recompute the content hash so structural corruption is reachable
    (without this, the integrity check masks every format error)."""
    doc["content_hash"] = content_hash(doc["body"])
    return doc


# --------------------------------------------------------------------- #
# Artifact round-trip: bit-identity across profiles, modes, query kinds
# --------------------------------------------------------------------- #
class TestArtifactRoundTrip:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_cold_start_bit_identical_all_modes_all_kinds(self, name, tmp_path):
        """The acceptance matrix: nine profiles x three modes x ten kinds."""
        artifact = benchmark_artifact(name)
        loaded = load_artifact(save_artifact(artifact, tmp_path / "model.json"))
        assert loaded.content_hash == artifact.content_hash
        queries = all_kinds_queries(artifact.n_vars)
        for mode in EXECUTION_MODES:
            fresh = InferenceSession(build_benchmark(name), execution=mode)
            cold = loaded.session(execution=mode)
            assert_replays_identical(
                replay_queries(cold, queries), replay_queries(fresh, queries)
            )

    def test_loaded_artifact_adopts_tape_and_plan(self, tmp_path):
        """Cold start must not compile: the session's tape IS the shipped
        tape, and its plan cache already holds the shipped plan."""
        artifact = build_artifact(_small_spn(), name="m")
        loaded = load_artifact(save_artifact(artifact, tmp_path / "m.json"))
        session = loaded.session()
        assert session.tape is loaded.tape
        assert (
            loaded.tape.memory_plan(fuse=loaded.fuse, fuse_width=loaded.fuse_width)
            is loaded.plan
        )

    def test_hash_stable_across_rewrites(self, tmp_path):
        artifact = build_artifact(_small_spn(), name="m")
        first = load_artifact(save_artifact(artifact, tmp_path / "a.json"))
        second = load_artifact(save_artifact(first, tmp_path / "b.json"))
        assert second.content_hash == artifact.content_hash

    def test_metadata_and_provenance_round_trip(self, tmp_path):
        artifact = build_artifact(
            _small_spn(), name="m", version="3", tolerance=1e-9,
            metadata={"origin": "unit-test"},
        )
        loaded = load_artifact(save_artifact(artifact, tmp_path / "m.json"))
        assert loaded.name == "m"
        assert loaded.version == "3"
        assert loaded.tolerance == 1e-9
        assert loaded.metadata == {"origin": "unit-test"}

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            build_artifact(_small_spn(), name="m", tolerance=-0.5)

    def test_golden_replay_deviation_zero(self, tmp_path):
        artifact = build_artifact(_small_spn(), name="m")
        loaded = load_artifact(save_artifact(artifact, tmp_path / "m.json"))
        evidence = golden_evidence(artifact.n_vars)
        deviation = replay_deviation(
            golden_replay(loaded.session(), evidence),
            golden_replay(artifact.session(), evidence),
        )
        assert deviation == 0.0


# --------------------------------------------------------------------- #
# Corruption: every malformed document fails with a typed error
# --------------------------------------------------------------------- #
def _truncate_tape_record(body):
    body["tape"]["kernels"][0] = body["tape"]["kernels"][0][:5]

def _truncate_tape_operands(body):
    body["tape"]["kernels"][-1][4] = body["tape"]["kernels"][-1][4][:-1]

def _bad_tape_opcode(body):
    body["tape"]["kernels"][0][1] = "pow"

def _tape_root_out_of_range(body):
    body["tape"]["root_slot"] = 10**9

def _dangling_spn_child(body):
    for record in body["spn"]["nodes"]:
        if record["type"] in ("sum", "product"):
            record["children"][0] = 9999
            return
    raise AssertionError("spn section has no inner node")

def _drop_tape_section(body):
    del body["tape"]

def _drop_plan_scalar(body):
    del body["plan"]["n_physical"]

def _truncate_plan_kernels(body):
    body["plan"]["kernels"] = []

def _name_not_a_string(body):
    body["name"] = 7

def _malformed_n_vars(body):
    body["n_vars"] = "many"

def _metadata_not_a_dict(body):
    body["metadata"] = ["not", "a", "dict"]


# Semantic corruptions: every record below passes the per-section format
# checks (all indices in range, shapes consistent, hash rehashed) and the
# plan/tape cross-check — only the static dataflow verifier rejects them.
def _reorder_plan_kernels(body):
    body["plan"]["kernels"].reverse()

def _alias_plan_dest(body):
    n_physical = body["plan"]["n_physical"]
    for record in body["plan"]["kernels"]:
        start, stop = record["dest"]
        if stop + 1 <= n_physical:
            record["dest"] = [start + 1, stop + 1]
            return
    raise AssertionError("no plan kernel with room to shift its dest")

def _inject_dead_tape_kernel(body):
    kernels = body["tape"]["kernels"]
    n_slots = len(body["tape"]["inputs"]) + sum(
        record[3] - record[2] for record in kernels
    )
    root = body["tape"]["root_slot"]
    last_level = kernels[-1][0]
    kernels.append([last_level + 1, "mul", n_slots, n_slots + 1, [root], [root]])
    # Keep the plan/tape slot-count cross-check satisfied so the *only*
    # remaining net is the static verifier's dead-code detection.
    body["plan"]["n_slots"] += 1

def _understate_max_live(body):
    body["plan"]["max_live"] -= 1

def _redirect_plan_root(body):
    body["plan"]["root_phys"] = (
        body["plan"]["root_phys"] + 1
    ) % body["plan"]["n_physical"]


class TestArtifactCorruption:
    FORMAT_CORRUPTIONS = {
        "tape-truncated-record": _truncate_tape_record,
        "tape-truncated-operands": _truncate_tape_operands,
        "tape-bad-opcode": _bad_tape_opcode,
        "tape-root-out-of-range": _tape_root_out_of_range,
        "spn-dangling-child": _dangling_spn_child,
        "missing-tape-section": _drop_tape_section,
        "plan-missing-scalar": _drop_plan_scalar,
        "plan-truncated-kernels": _truncate_plan_kernels,
        "name-not-a-string": _name_not_a_string,
        "malformed-n-vars": _malformed_n_vars,
        "metadata-not-a-dict": _metadata_not_a_dict,
    }

    @pytest.fixture(scope="class")
    def artifact(self):
        return build_artifact(_small_spn(), name="m")

    @pytest.mark.parametrize("mode", sorted(FORMAT_CORRUPTIONS))
    def test_structural_corruption_is_a_format_error(self, artifact, mode):
        doc = _document(artifact)
        self.FORMAT_CORRUPTIONS[mode](doc["body"])
        with pytest.raises(ArtifactFormatError):
            artifact_from_payload(_rehashed(doc))

    def test_byte_flip_is_an_integrity_error(self, artifact):
        # No rehash: the mutation leaves the recorded hash stale, exactly
        # like disk corruption or tampering after packaging.
        doc = _document(artifact)
        doc["body"]["n_vars"] += 1
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            artifact_from_payload(doc)
        assert "content hash mismatch" in str(excinfo.value)

    def test_spliced_plan_is_an_integrity_error(self, artifact):
        # A plan from a different build: hash-consistent (rehashed) but
        # inconsistent with the tape it ships next to.
        other = build_artifact(_small_spn(seed=12, n_vars=9), name="other")
        doc = _document(artifact)
        doc["body"]["plan"] = _document(other)["body"]["plan"]
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            artifact_from_payload(_rehashed(doc))
        assert "plan/tape mismatch" in str(excinfo.value)

    STATIC_CORRUPTIONS = {
        "plan-reordered-kernels": _reorder_plan_kernels,
        "plan-slot-aliasing": _alias_plan_dest,
        "tape-injected-dead-kernel": _inject_dead_tape_kernel,
        "plan-understated-max-live": _understate_max_live,
        "plan-root-redirect": _redirect_plan_root,
    }

    @pytest.mark.parametrize("mode", sorted(STATIC_CORRUPTIONS))
    def test_semantic_corruption_is_caught_statically(self, artifact, mode):
        """Format-clean but semantically corrupt documents are rejected by
        the static verification gate inside ``artifact_from_payload``."""
        doc = _document(artifact)
        self.STATIC_CORRUPTIONS[mode](doc["body"])
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            artifact_from_payload(_rehashed(doc))
        assert "static verification failed" in str(excinfo.value)

    def test_semantic_corruption_rejected_at_load(self, artifact, tmp_path):
        """The same gate protects the file-loading path serving cold-starts
        through (`load_artifact`), not just in-memory reconstruction."""
        doc = _document(artifact)
        _redirect_plan_root(doc["body"])
        path = tmp_path / "corrupt.json"
        path.write_text(json.dumps(_rehashed(doc)))
        with pytest.raises(ArtifactIntegrityError):
            load_artifact(path)

    def test_wrong_format_marker(self, artifact):
        doc = _document(artifact)
        doc["format"] = "not-an-artifact"
        with pytest.raises(ArtifactFormatError):
            artifact_from_payload(doc)

    def test_unsupported_version(self, artifact):
        doc = _document(artifact)
        doc["version"] = 999
        with pytest.raises(ArtifactFormatError):
            artifact_from_payload(doc)

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(ArtifactFormatError):
            load_artifact(tmp_path / "absent.json")

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactFormatError):
            load_artifact(path)

    def test_corrupt_ops_surfaces_on_first_access(self, artifact):
        # The ops section is reconstructed lazily; corruption there must
        # still raise the typed error, just at .ops time.
        doc = _document(artifact)
        doc["body"]["ops"]["operations"][0] = doc["body"]["ops"]["operations"][0][:3]
        loaded = artifact_from_payload(_rehashed(doc))
        with pytest.raises(ArtifactFormatError):
            loaded.ops

    def test_every_artifact_error_is_a_structure_error(self):
        from repro.spn.graph import StructureError

        assert issubclass(ArtifactFormatError, ArtifactError)
        assert issubclass(ArtifactIntegrityError, ArtifactError)
        assert issubclass(ArtifactError, StructureError)


# --------------------------------------------------------------------- #
# Training pipeline: learn -> compile -> package, cached like the sweeps
# --------------------------------------------------------------------- #
class TestTrainingPipeline:
    JOBS = [
        TrainingJob(name="a", dataset=DatasetSpec(n_vars=6, n_rows=300, seed=1)),
        TrainingJob(name="b", dataset=DatasetSpec(n_vars=5, n_rows=200, seed=2)),
    ]

    def test_cache_round_trip_is_bit_identical(self, tmp_path):
        first = train_many(self.JOBS, parallel=False, artifact_dir=tmp_path)
        assert [r.cached for r in first] == [False, False]
        second = train_many(self.JOBS, parallel=False, artifact_dir=tmp_path)
        assert [r.cached for r in second] == [True, True]
        for miss, hit in zip(first, second):
            assert hit.artifact.content_hash == miss.artifact.content_hash
            evidence = golden_evidence(miss.artifact.n_vars)
            assert replay_deviation(
                golden_replay(hit.artifact.session(), evidence),
                golden_replay(miss.artifact.session(), evidence),
            ) == 0.0

    def test_corrupted_cache_entry_is_recomputed(self, tmp_path):
        first = train_many(self.JOBS[:1], parallel=False, artifact_dir=tmp_path)
        path = first[0].path
        path.write_text(path.read_text(encoding="utf-8")[:-40], encoding="utf-8")
        second = train_many(self.JOBS[:1], parallel=False, artifact_dir=tmp_path)
        assert second[0].cached is False
        assert load_artifact(path).content_hash == first[0].artifact.content_hash

    def test_provenance_metadata(self):
        result = train_many(self.JOBS[:1], parallel=False, artifact_dir=None)[0]
        metadata = result.artifact.metadata
        assert metadata["trained"] is True
        assert metadata["dataset"]["n_vars"] == 6
        assert metadata["learn_config"]["seed"] == 0
        assert result.artifact.n_vars == 6

    def test_uncached_mode_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        results = train_many(self.JOBS[:1], parallel=False, artifact_dir=None)
        assert results[0].path is None
        assert not any(tmp_path.iterdir())


# --------------------------------------------------------------------- #
# Registry: publish / shadow validation / hot-swap / rollback
# --------------------------------------------------------------------- #
class TestModelRegistry:
    def _session(self, spn):
        return InferenceSession(spn, engine="vectorized")

    def test_publish_and_resolve(self):
        registry = ModelRegistry()
        report = registry.publish("m", "1", self._session(_small_spn()))
        assert report == PublishReport(
            name="m", version="1", previous_version=None, validated=False
        )
        assert registry.live_version("m") == "1"
        assert registry.names() == ["m"]
        assert registry.versions("m") == ["1"]

    def test_identical_candidate_validates_bit_identically(self):
        spn = _small_spn()
        registry = ModelRegistry()
        registry.publish("m", "1", self._session(spn))
        report = registry.publish("m", "2", self._session(spn))
        assert report.validated is True
        assert report.deviation == 0.0
        assert registry.live_version("m") == "2"

    def test_perturbed_candidate_rejected_registry_untouched(self):
        spn = _small_spn()
        registry = ModelRegistry()
        registry.publish("m", "1", self._session(spn))
        with pytest.raises(ShadowValidationError) as excinfo:
            registry.publish("m", "2", self._session(_perturbed(spn)))
        assert excinfo.value.deviation > 0.0
        assert registry.live_version("m") == "1"
        assert registry.versions("m") == ["1"]

    def test_recorded_tolerance_admits_small_deviation(self):
        spn = _small_spn()
        registry = ModelRegistry()
        registry.publish("m", "1", self._session(spn))
        candidate = build_artifact(_perturbed(spn, 1e-4), name="m", tolerance=1.0)
        report = registry.publish(
            "m", "2", candidate.session(), artifact=candidate
        )
        assert 0.0 < report.deviation <= 1.0
        assert registry.live_version("m") == "2"

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.publish("m", "1", self._session(_small_spn()))
        with pytest.raises(ValueError):
            registry.publish("m", "1", self._session(_small_spn()), validate=False)

    def test_rollback_default_and_explicit(self):
        spn = _small_spn()
        registry = ModelRegistry()
        registry.publish("m", "1", self._session(spn))
        registry.publish("m", "2", self._session(spn))
        registry.publish("m", "3", self._session(spn))
        assert registry.rollback("m").version == "2"
        assert registry.live_version("m") == "2"
        assert registry.rollback("m", "1").version == "1"
        # Versions stay installed across rollbacks (no history rewrite).
        assert registry.versions("m") == ["1", "2", "3"]

    def test_rollback_errors(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.rollback("absent")
        registry.publish("m", "1", self._session(_small_spn()))
        with pytest.raises(ValueError):
            registry.rollback("m")  # nothing older than the first version
        with pytest.raises(KeyError):
            registry.rollback("m", "99")

    def test_resolve_pins_across_swap(self):
        spn = _small_spn()
        registry = ModelRegistry()
        registry.publish("m", "1", self._session(spn))
        pinned = registry.resolve("m")
        registry.publish("m", "2", self._session(spn))
        assert pinned.version == "1"
        assert registry.resolve("m").version == "2"


# --------------------------------------------------------------------- #
# Serving: hot-swap under load, in-flight pinning, rollback, clients
# --------------------------------------------------------------------- #
class TestServerLifecycle:
    def test_artifact_cold_start_serves_bit_identically(self, tmp_path):
        artifact = build_artifact(_small_spn(), name="m", version="1")
        loaded = load_artifact(save_artifact(artifact, tmp_path / "m.json"))
        evidence = golden_evidence(artifact.n_vars)
        want = golden_replay(artifact.session(), evidence)["log_likelihood"]
        with InferenceServer(models=[loaded]) as server:
            got = server.query("m", evidence, kind="log_likelihood")
        assert np.array_equal(np.asarray(got), want)

    def test_publish_hot_swap_and_rollback(self):
        spn = _small_spn()
        art1 = build_artifact(spn, name="m", version="1")
        art2 = build_artifact(spn, name="m", version="2")
        evidence = golden_evidence(art1.n_vars)
        want = golden_replay(art1.session(), evidence)["log_likelihood"]
        with InferenceServer(models=[art1]) as server:
            client = InferenceClient(server, "m")
            report = server.publish("m", "2", art2)
            assert report.validated is True and report.deviation == 0.0
            assert client.live_version() == "2"
            assert np.array_equal(np.asarray(client.log_likelihood(evidence)), want)
            rolled = server.rollback("m")
            assert rolled.version == "1"
            assert client.live_version() == "1"
            assert np.array_equal(np.asarray(client.log_likelihood(evidence)), want)

    def test_shadow_validation_rejects_perturbed_candidate(self):
        spn = _small_spn()
        art1 = build_artifact(spn, name="m", version="1")
        bad = build_artifact(_perturbed(spn), name="m", version="2")
        evidence = golden_evidence(art1.n_vars)
        want = golden_replay(art1.session(), evidence)["log_likelihood"]
        with InferenceServer(models=[art1]) as server:
            with pytest.raises(ShadowValidationError):
                server.publish("m", "2", bad)
            # Incumbent untouched: still live, still serving, and the
            # rejected version was never installed.
            assert server.live_version("m") == "1"
            assert server.versions("m") == ["1"]
            got = server.query("m", evidence, kind="log_likelihood")
            assert np.array_equal(np.asarray(got), want)

    def test_inflight_requests_drain_on_admitting_version(self):
        """Deterministic pinning: R1 is admitted under v1 and blocked inside
        the v1 engine call; the swap to v2 happens while R1 is in flight;
        R2 is admitted under v2.  Releasing the gate must complete R1 with
        v1's values and R2 with v2's."""
        spn1, spn2 = _small_spn(seed=7), _small_spn(seed=11)
        art1 = build_artifact(spn1, name="m", version="1")
        art2 = build_artifact(spn2, name="m", version="2")
        evidence = golden_evidence(art1.n_vars)
        want1 = golden_replay(art1.session(), evidence)["log_likelihood"]
        want2 = golden_replay(art2.session(), evidence)["log_likelihood"]
        assert not np.array_equal(want1, want2)
        server = InferenceServer(models=[art1], n_workers=1).start()
        try:
            gate, picked = threading.Event(), threading.Event()

            def hook(kind, n_rows):
                picked.set()
                gate.wait(timeout=10)

            v1_session = server.model("m").session
            v1_session.on_evaluate = hook
            f1 = server.submit("m", evidence, kind="log_likelihood")
            assert picked.wait(timeout=10), "worker never started on R1"
            v1_session.on_evaluate = None
            # validate=False: shadow validation replays the incumbent
            # session, which is blocked on the gate right now.
            server.publish("m", "2", art2, validate=False)
            assert server.live_version("m") == "2"
            f2 = server.submit("m", evidence, kind="log_likelihood")
            gate.set()
            assert np.array_equal(np.asarray(f1.result(timeout=10)), want1)
            assert np.array_equal(np.asarray(f2.result(timeout=10)), want2)
        finally:
            server.stop()

    def test_hot_swap_under_sustained_load_loses_nothing(self):
        """Producer threads hammer the server across a hot-swap to a
        *different* model: every response arrives, and every response is
        bit-exactly v1's answer or v2's answer — never a mix, never
        garbage."""
        spn1, spn2 = _small_spn(seed=7), _small_spn(seed=11)
        art1 = build_artifact(spn1, name="m", version="1")
        art2 = build_artifact(spn2, name="m", version="2")
        evidence = golden_evidence(art1.n_vars, n_rows=8)
        want1 = golden_replay(art1.session(), evidence)["log_likelihood"]
        want2 = golden_replay(art2.session(), evidence)["log_likelihood"]
        assert not np.array_equal(want1, want2)
        stop = threading.Event()
        results, errors = [], []
        lock = threading.Lock()
        server = InferenceServer(models=[art1], n_workers=2).start()

        def producer():
            futures = []
            while not stop.is_set():
                try:
                    futures.append(server.submit("m", evidence, kind="log_likelihood"))
                except BaseException as exc:  # noqa: BLE001 - recorded below
                    with lock:
                        errors.append(exc)
                    return
            for future in futures:
                try:
                    value = np.asarray(future.result(timeout=30))
                except BaseException as exc:  # noqa: BLE001 - recorded below
                    with lock:
                        errors.append(exc)
                else:
                    with lock:
                        results.append(value)

        threads = [threading.Thread(target=producer) for _ in range(3)]
        try:
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let load build up on v1
            server.publish("m", "2", art2, validate=False)
            time.sleep(0.05)  # sustained post-swap traffic window
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        finally:
            server.stop()
        assert not errors, f"lost/failed requests: {errors[:3]}"
        assert results, "no requests completed"
        n_v1 = sum(1 for value in results if np.array_equal(value, want1))
        n_v2 = sum(1 for value in results if np.array_equal(value, want2))
        assert n_v1 + n_v2 == len(results), "a response matched neither version"
        assert n_v2 > 0, "no request ran on the new version after the swap"

    def test_duplicate_hosting_rejected(self):
        art = build_artifact(_small_spn(), name="m", version="1")
        server = InferenceServer(models=[art])
        with pytest.raises(ValueError):
            server.add_artifact(art)

    def test_router_publish_routes_to_hosting_server(self):
        art1 = build_artifact(_small_spn(), name="m", version="1")
        art2 = build_artifact(_small_spn(), name="m", version="2")
        server = InferenceServer(models=[art1]).start()
        router = ModelRouter(routes={"m": server})
        try:
            report = router.publish("m", "2", art2)
            assert isinstance(report, PublishReport)
            assert server.live_version("m") == "2"
        finally:
            server.stop()


# --------------------------------------------------------------------- #
# CLI: the build / serve-check loop CI runs
# --------------------------------------------------------------------- #
class TestLifecycleCli:
    def test_build_and_serve_check_suite_profile(self, tmp_path, capsys):
        out = tmp_path / "banknote.json"
        assert lifecycle_main(["build", "--model", "Banknote", "--out", str(out)]) == 0
        assert lifecycle_main(["serve-check", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "PASS" in stdout

    def test_build_trained_model(self, tmp_path):
        out = tmp_path / "learned.json"
        code = lifecycle_main(
            ["build", "--train", "--n-vars", "6", "--n-rows", "200",
             "--out", str(out)]
        )
        assert code == 0
        assert load_artifact(out).metadata["trained"] is True
        assert lifecycle_main(["serve-check", str(out), "--rows", "16"]) == 0

    def test_serve_check_fails_on_tampered_artifact(self, tmp_path, capsys):
        """A tampered-but-rehashed artifact (wrong weights smuggled into the
        spn section, tape untouched) loads — and serve-check's golden
        replay against the shipped tape catches the disagreement."""
        artifact = build_artifact(_small_spn(), name="m")
        doc = _document(artifact)
        _dangling_spn_child(doc["body"])
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(_rehashed(doc)), encoding="utf-8")
        with pytest.raises(ArtifactFormatError):
            lifecycle_main(["serve-check", str(path)])

    def test_build_requires_model_or_train(self, tmp_path, capsys):
        code = lifecycle_main(["build", "--out", str(tmp_path / "x.json")])
        assert code == 2


# --------------------------------------------------------------------- #
# Robustness: crash-safe saves, corrupted loads, crashed publishes
# --------------------------------------------------------------------- #
class TestLifecycleRobustness:
    def test_crashed_save_leaves_old_file_and_no_tmp(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec, InjectedCrash, fault_scope

        artifact = build_artifact(_small_spn(), name="m", version="1")
        path = save_artifact(artifact, tmp_path / "m.json")
        before = path.read_text(encoding="utf-8")
        newer = build_artifact(_small_spn(), name="m", version="2")
        plan = FaultPlan(seed=0, specs=[FaultSpec("artifact.save_crash")])
        with fault_scope(plan):
            with pytest.raises(InjectedCrash):
                save_artifact(newer, path)
        # The crash hit between the tmp write and the rename: the old
        # complete document survives and the tmp file does not.
        assert path.read_text(encoding="utf-8") == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert load_artifact(path).version == "1"

    def test_failed_write_never_leaks_the_tmp_file(self, tmp_path, monkeypatch):
        """The non-injected failure path: serialization dying mid-write
        must also unlink the tmp file (satellite: tmp never survives)."""
        artifact = build_artifact(_small_spn(), name="m")
        monkeypatch.setattr(
            type(artifact), "to_payload",
            lambda self: (_ for _ in ()).throw(RuntimeError("serializer died")),
        )
        with pytest.raises(RuntimeError, match="serializer died"):
            save_artifact(artifact, tmp_path / "m.json")
        assert list(tmp_path.iterdir()) == []  # no tmp, no partial target

    def test_corrupted_load_fails_typed(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec, fault_scope

        artifact = build_artifact(_small_spn(), name="m")
        path = save_artifact(artifact, tmp_path / "m.json")
        plan = FaultPlan(seed=4, specs=[FaultSpec("artifact.load_corruption")])
        with fault_scope(plan):
            # One seeded character flip: either the JSON no longer parses
            # (format error) or the content hash disagrees (integrity
            # error) — never a silent wrong model, never a bare KeyError.
            with pytest.raises(ArtifactError):
                load_artifact(path)
        assert load_artifact(path).name == "m"  # the file itself is fine

    def test_crashed_publish_keeps_incumbent_serving(self):
        from repro.faults import FaultPlan, FaultSpec, InjectedCrash, fault_scope

        spn = _small_spn()
        art1 = build_artifact(spn, name="m", version="1")
        art2 = build_artifact(spn, name="m", version="2")
        evidence = golden_evidence(art1.n_vars)
        want = golden_replay(art1.session(), evidence)["log_likelihood"]
        plan = FaultPlan(seed=0, specs=[FaultSpec("lifecycle.publish_crash")])
        with InferenceServer(models=[art1]) as server:
            with fault_scope(plan):
                with pytest.raises(InjectedCrash):
                    server.publish("m", "2", art2)
                # Crashed after validation, before the pointer flip: the
                # incumbent is live, the candidate was never installed,
                # and requests keep serving bit-identical values.
                assert server.live_version("m") == "1"
                assert server.versions("m") == ["1"]
                got = server.query("m", evidence, kind="log_likelihood")
                assert np.array_equal(np.asarray(got), want)
            # Chaos off again: the same publish now succeeds.
            report = server.publish("m", "2", art2)
            assert report.validated is True
            assert server.live_version("m") == "2"
