"""Tests for the tape memory planner and the planned/sharded executors.

Covers the planner's structural guarantees (liveness peak, physical-buffer
bound, broadcast constants, kernel fusion, allocation validity on
hand-built tapes), the execution knob plumbing (``ExecutionOptions``
resolution, ``QueryPlan`` peak-slot stats, per-execution session caches,
serving), and — via hypothesis — the repository-wide bit-identity
guarantee: planned, sharded and legacy execution agree exactly
(``array_equal``) across all nine suite profiles, both domains and all
ten typed query kinds (the analysis kinds — sample, expectation, entropy,
mutual information, classify — included).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import InferenceSession, Likelihood, LogLikelihood, session_for
from strategies import ALL_KINDS, make_query
from repro.spn.compiled import CompiledTape, EngineMismatchError, compile_tape
from repro.spn.generate import random_evidence
from repro.spn.linearize import OP_ADD, OP_MUL, InputSlot, Operation, OperationList
from repro.spn.memplan import (
    DEFAULT_EXECUTION,
    EXECUTION_MODES,
    ExecutionOptions,
    plan_memory,
    resolve_execution,
    shard_bounds,
    verify_plan,
)
from repro.suite.registry import benchmark_n_vars, benchmark_names, benchmark_tape

_SETTINGS = settings(max_examples=20, deadline=None)

#: Sharding forced on even for tiny batches, so the property suite actually
#: exercises the thread-pool path.
FORCED_SHARDS = ExecutionOptions(mode="sharded", threads=2, min_shard_rows=1)


# --------------------------------------------------------------------------- #
# Hand-built tapes
# --------------------------------------------------------------------------- #
def indicator(index, var, value=1):
    return InputSlot(index=index, kind="indicator", var=var, value=value)


def weight(index, prob):
    return InputSlot(index=index, kind="weight", prob=prob)


def ops_list(inputs, ops, root):
    return OperationList(
        inputs=list(inputs),
        operations=[
            Operation(index=i, op=op, arg0=a, arg1=b) for i, (op, a, b) in enumerate(ops)
        ],
        root_slot=root,
    )


def chain_tape() -> CompiledTape:
    """s4 = x0*x1; s5 = s4*x2; s6 = s5*x3 — one width-1 kernel per level."""
    return compile_tape(
        ops_list(
            [indicator(i, i) for i in range(4)],
            [(OP_MUL, 0, 1), (OP_MUL, 4, 2), (OP_MUL, 5, 3)],
            root=6,
        )
    )


def balanced_tape() -> CompiledTape:
    """s4 = x0*x1; s5 = x2*x3; s6 = s4+s5 — a width-2 level then the root."""
    return compile_tape(
        ops_list(
            [indicator(i, i) for i in range(4)],
            [(OP_MUL, 0, 1), (OP_MUL, 2, 3), (OP_ADD, 4, 5)],
            root=6,
        )
    )


def weighted_tape() -> CompiledTape:
    """s4 = w2*x0; s5 = w3*x1; s6 = s4+s5 — broadcastable constant arg0."""
    return compile_tape(
        ops_list(
            [indicator(0, 0), indicator(1, 1), weight(2, 0.3), weight(3, 0.7)],
            [(OP_MUL, 2, 0), (OP_MUL, 3, 1), (OP_ADD, 4, 5)],
            root=6,
        )
    )


def fusable_tape() -> CompiledTape:
    """Two add kernels from adjacent levels that are provably independent.

    s4 = x0+x1 (level 1, add); s5 = x2*x3 (level 1, mul);
    s6 = s5+x0 (level 2, add — reads only the mul side);
    s7 = s4*s6 (level 3, mul).
    """
    return compile_tape(
        ops_list(
            [indicator(i, i) for i in range(4)],
            [(OP_ADD, 0, 1), (OP_MUL, 2, 3), (OP_ADD, 5, 0), (OP_MUL, 4, 6)],
            root=7,
        )
    )


def tape_batch(tape: CompiledTape, n_rows: int = 16, seed: int = 0) -> np.ndarray:
    n_vars = max((s.var for s in tape.inputs if s.kind == "indicator"), default=-1) + 1
    return random_evidence(max(n_vars, 1), observed_fraction=0.5, seed=seed, n_samples=n_rows)


class TestLiveness:
    def test_chain_max_live_is_exact(self):
        # k0: {x0, x1} + s4 -> 3; k1: {s4, x2} + s5 -> 3; k2: {s5, x3} + s6 -> 3.
        plan = chain_tape().memory_plan(fuse=False)
        assert plan.max_live == 3
        assert plan.n_physical == plan.max_live  # no fragmentation on a chain
        assert plan.max_live <= plan.n_slots

    def test_balanced_max_live_is_exact(self):
        # k0: {x0..x3} + {s4, s5} -> 6; k1: {s4, s5} + s6 -> 3.
        plan = balanced_tape().memory_plan(fuse=False)
        assert plan.max_live == 6
        assert plan.n_physical == 6
        assert plan.max_live <= plan.n_slots

    def test_weighted_tape_broadcasts_constants(self):
        # The weight lanes w2/w3 never materialize: k0 keeps {x0, x1} plus
        # its two dests -> 4; k1: {s4, s5} + s6 -> 3.
        plan = weighted_tape().memory_plan(fuse=False)
        assert plan.max_live == 4
        mul = plan.kernels[0]
        assert mul.const_arg0 is not None and mul.const_arg0.shape == (2, 1)
        assert np.array_equal(mul.const_arg0[:, 0], [0.3, 0.7])

    def test_plan_bounds_on_suite(self):
        for name in benchmark_names():
            tape = benchmark_tape(name)
            plan = tape.memory_plan()
            assert 0 < plan.max_live <= plan.n_physical <= plan.n_slots
            assert plan.reduction > 1.0

    def test_root_survives(self):
        for build in (chain_tape, balanced_tape, weighted_tape, fusable_tape):
            tape = build()
            plan = tape.memory_plan()
            assert 0 <= plan.root_phys < plan.n_physical

    def test_empty_tape_is_rejected(self):
        tape = compile_tape(ops_list([indicator(0, 0)], [], root=0))
        with pytest.raises(ValueError, match="empty tape"):
            plan_memory(tape)

    def test_kernelless_tape_executes_via_legacy_fallback(self):
        tape = compile_tape(ops_list([indicator(0, 0)], [], root=0))
        data = np.array([[1], [0], [-1]])
        out = tape.execute_batch(data)  # planned default falls back
        assert np.array_equal(out, [1.0, 0.0, 1.0])


class TestFusion:
    def test_independent_adds_fuse(self):
        tape = fusable_tape()
        fused = tape.memory_plan(fuse=True)
        unfused = tape.memory_plan(fuse=False)
        assert unfused.n_kernels == 4
        assert fused.n_kernels == 3  # the two add kernels merged
        data = tape_batch(tape)
        legacy = tape.execute_batch(data, execution="legacy")
        for plan_mode in (
            ExecutionOptions(fuse=True),
            ExecutionOptions(fuse=False),
        ):
            assert np.array_equal(tape.execute_batch(data, execution=plan_mode), legacy)

    def test_fuse_width_caps_groups(self):
        tape = fusable_tape()
        capped = tape.memory_plan(fuse=True, fuse_width=1)
        assert capped.n_kernels == 4  # nothing fits a combined width of 1

    def test_suite_tapes_are_already_maximally_fused(self):
        # Levelization leaves exactly one kernel per (level, opcode) and
        # each level reads the one below it: a total dependency chain, so
        # fusion finds nothing to merge on the suite profiles.  This
        # documents that the (level, opcode) grouping is already maximal.
        tape = benchmark_tape("KDDCup2k")
        assert tape.memory_plan(fuse=True).n_kernels == len(tape.kernels)


class TestExecutors:
    @pytest.mark.parametrize("build", [chain_tape, balanced_tape, weighted_tape, fusable_tape])
    @pytest.mark.parametrize("log_domain", [False, True])
    def test_hand_built_bit_identity(self, build, log_domain):
        tape = build()
        data = tape_batch(tape, n_rows=33)
        legacy = tape.execute_batch(data, log_domain=log_domain, execution="legacy")
        planned = tape.execute_batch(data, log_domain=log_domain)
        sharded = tape.execute_batch(data, log_domain=log_domain, execution=FORCED_SHARDS)
        assert np.array_equal(planned, legacy, equal_nan=True)
        assert np.array_equal(sharded, legacy, equal_nan=True)

    def test_verify_plan_accepts_correct_plans(self):
        tape = benchmark_tape("Banknote")
        data = random_evidence(benchmark_n_vars("Banknote"), observed_fraction=0.5, seed=1, n_samples=8)
        for log_domain in (False, True):
            verify_plan(tape, tape.memory_plan(), data, log_domain=log_domain)

    def test_verify_plan_rejects_corrupted_plans(self):
        tape = weighted_tape()
        plan = plan_memory(tape)
        bad = plan.kernels[0].const_arg0.copy()
        bad[0, 0] += 0.125  # corrupt one weight
        object.__setattr__(plan.kernels[0], "const_arg0", bad)
        with pytest.raises(EngineMismatchError):
            verify_plan(tape, plan, tape_batch(tape, n_rows=4))

    def test_check_option_runs_on_execute(self):
        tape = benchmark_tape("Banknote")
        data = random_evidence(benchmark_n_vars("Banknote"), observed_fraction=0.5, seed=2, n_samples=12)
        checked = ExecutionOptions(check=True)
        assert np.array_equal(
            tape.execute_batch(data, execution=checked),
            tape.execute_batch(data, execution="legacy"),
        )

    def test_root_written_directly_into_out(self):
        for name in benchmark_names():
            assert benchmark_tape(name).memory_plan().root_direct

    def test_shard_bounds_cover_rows_exactly(self):
        for n_rows, n_shards in ((1, 4), (7, 3), (100, 4), (5, 5), (6, 1)):
            bounds = shard_bounds(n_rows, n_shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == n_rows
            for (a, b), (c, d) in zip(bounds, bounds[1:]):
                assert b == c and a < b and c < d

    def test_workspace_is_reused_per_thread(self):
        tape = benchmark_tape("Banknote")
        plan = tape.memory_plan()
        plan.reserve(64)
        first = plan.workspace(64)
        second = plan.workspace(32)
        assert second.base is first or second.base is first.base


class TestExecutionOptions:
    def test_modes(self):
        assert EXECUTION_MODES == ("planned", "sharded", "legacy")
        for mode in EXECUTION_MODES:
            assert resolve_execution(mode).mode == mode

    def test_defaults(self):
        assert resolve_execution(None) is DEFAULT_EXECUTION
        options = ExecutionOptions(mode="sharded", threads=3)
        assert resolve_execution(options) is options
        assert options.n_threads == 3
        assert ExecutionOptions(threads=0).n_threads >= 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="unknown execution mode"):
            ExecutionOptions(mode="turbo")
        with pytest.raises(ValueError, match="threads"):
            ExecutionOptions(threads=-1)
        with pytest.raises(ValueError, match="min_shard_rows"):
            ExecutionOptions(min_shard_rows=0)
        with pytest.raises(TypeError, match="execution must be"):
            resolve_execution(3)


class TestSessionIntegration:
    def test_query_plan_exposes_peak_slots(self):
        session = InferenceSession("CPU")
        tape = benchmark_tape("CPU")
        query = LogLikelihood(evidence=np.zeros((2, benchmark_n_vars("CPU")), dtype=np.int64))
        plan = session.plan(query)
        assert plan.tape_slots == tape.n_slots
        assert 0 < plan.peak_slots < plan.tape_slots
        assert plan.peak_bytes_per_row == plan.peak_slots * 8

    def test_legacy_session_reports_dense_working_set(self):
        session = InferenceSession("CPU", execution="legacy")
        query = Likelihood(evidence=np.zeros((1, benchmark_n_vars("CPU")), dtype=np.int64))
        plan = session.plan(query)
        assert plan.peak_slots == plan.tape_slots > 0

    def test_python_engine_has_no_tape_stats(self):
        session = InferenceSession("Banknote", engine="python")
        query = Likelihood(evidence=np.zeros((1, 4), dtype=np.int64))
        plan = session.plan(query)
        assert plan.tape_slots == 0 and plan.peak_slots == 0

    def test_session_for_is_keyed_per_execution(self):
        from repro.spn.generate import RatSpnConfig, generate_rat_spn

        spn = generate_rat_spn(RatSpnConfig(n_vars=6, depth=6, seed=3))
        default = session_for(spn)
        legacy = session_for(spn, execution="legacy")
        assert default is not legacy
        assert default is session_for(spn)
        data = random_evidence(6, observed_fraction=0.5, seed=4, n_samples=9)
        assert np.array_equal(
            default.run(LogLikelihood(evidence=data)),
            legacy.run(LogLikelihood(evidence=data)),
        )

    def test_serving_modes_are_bit_identical(self):
        from repro.serving import InferenceServer

        name = "Banknote"
        data = random_evidence(benchmark_n_vars(name), observed_fraction=0.5, seed=5, n_samples=24)
        offline = InferenceSession(name).run(LogLikelihood(evidence=data))
        for execution in (None, "legacy", FORCED_SHARDS):
            with InferenceServer(models=[name], execution=execution) as server:
                served = server.query(name, data, kind="log_likelihood")
            assert np.array_equal(served, offline)


# --------------------------------------------------------------------------- #
# Hypothesis: planned == sharded == legacy on every profile, domain and kind
# --------------------------------------------------------------------------- #
@given(
    name=st.sampled_from(benchmark_names()),
    kind=st.sampled_from(ALL_KINDS),
    seed=st.integers(0, 2**16),
    n_rows=st.integers(1, 5),
)
@_SETTINGS
def test_execution_modes_bit_identical_across_suite(name, kind, seed, n_rows):
    rng = np.random.default_rng(seed)
    query = make_query(kind, benchmark_n_vars(name), rng, n_rows)
    results = [
        InferenceSession(name, execution=execution).run(query)
        for execution in (None, FORCED_SHARDS, "legacy")
    ]
    if kind == "mpe":
        assert results[0] == results[1] == results[2]
    else:
        for other in results[1:]:
            assert np.array_equal(results[0], other, equal_nan=True)
