"""Tests for the CPU execution model (Sec. III)."""

import pytest

from repro.baselines.cpu import CpuConfig, build_microops, simulate_cpu
from repro.spn.linearize import linearize
from repro.suite.registry import benchmark_operation_list


class TestCpuConfig:
    def test_defaults_are_valid(self):
        CpuConfig()

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            CpuConfig(fp_ports=0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            CpuConfig(window_size=0)

    def test_invalid_frontend(self):
        with pytest.raises(ValueError):
            CpuConfig(frontend_bytes_per_cycle=0.0)


class TestMicroops:
    def test_every_operation_has_an_arith_uop(self, small_rat_ops):
        trace = build_microops(small_rat_ops)
        arith = [u for u in trace if u.kind == "arith"]
        assert len(arith) == small_rat_ops.n_operations

    def test_loads_for_leaf_inputs(self, mixture_spn):
        ops = linearize(mixture_spn)
        trace = build_microops(ops)
        loads = [u for u in trace if u.kind == "load"]
        assert loads, "leaf inputs must be loaded from memory"

    def test_distant_values_are_stored(self, small_rat_ops):
        config = CpuConfig(register_window=4)
        trace = build_microops(small_rat_ops, config)
        stores = [u for u in trace if u.kind == "store"]
        assert stores, "a tiny register window must force spills"

    def test_larger_register_window_means_fewer_loads(self, small_rat_ops):
        small = build_microops(small_rat_ops, CpuConfig(register_window=4))
        large = build_microops(small_rat_ops, CpuConfig(register_window=64))
        n_loads = lambda t: sum(1 for u in t if u.kind == "load")  # noqa: E731
        assert n_loads(large) < n_loads(small)

    def test_indexed_loop_adds_overhead(self, small_rat_ops):
        flat = build_microops(small_rat_ops, CpuConfig(indexed_loop=False))
        loop = build_microops(small_rat_ops, CpuConfig(indexed_loop=True))
        assert len(loop) > len(flat)

    def test_dependencies_point_backwards(self, small_rat_ops):
        trace = build_microops(small_rat_ops)
        for uop in trace:
            for dep in uop.deps:
                assert dep < uop.index


class TestCpuSimulation:
    def test_empty_program(self, tiny_spn):
        from repro.spn.graph import SPN

        spn = SPN()
        spn.set_root(spn.add_indicator(0, 1))
        result = simulate_cpu(linearize(spn))
        assert result.cycles == 0
        assert result.ops_per_cycle == 0.0

    def test_all_microops_complete(self, small_rat_ops):
        result = simulate_cpu(small_rat_ops)
        assert result.cycles > 0
        assert result.n_operations == small_rat_ops.n_operations

    def test_throughput_in_paper_regime(self):
        """The model must land near the paper's measured ~0.55 ops/cycle."""
        for name in ("MSNBC", "Banknote"):
            result = simulate_cpu(benchmark_operation_list(name))
            assert 0.3 <= result.ops_per_cycle <= 0.8

    def test_operation_list_beats_indexed_loop(self, small_rat_ops):
        """The paper observes Algorithm 1 is consistently faster than Algorithm 2."""
        flat = simulate_cpu(small_rat_ops, CpuConfig(indexed_loop=False))
        loop = simulate_cpu(small_rat_ops, CpuConfig(indexed_loop=True))
        assert flat.ops_per_cycle > loop.ops_per_cycle

    def test_wider_issue_is_not_slower(self, small_rat_ops):
        narrow = simulate_cpu(small_rat_ops, CpuConfig(issue_width=2))
        wide = simulate_cpu(small_rat_ops, CpuConfig(issue_width=8))
        assert wide.cycles <= narrow.cycles

    def test_faster_frontend_is_not_slower(self, small_rat_ops):
        slow = simulate_cpu(small_rat_ops, CpuConfig(frontend_bytes_per_cycle=4.0))
        fast = simulate_cpu(small_rat_ops, CpuConfig(frontend_bytes_per_cycle=32.0))
        assert fast.cycles <= slow.cycles

    def test_ipc_below_issue_width(self, small_rat_ops):
        config = CpuConfig()
        result = simulate_cpu(small_rat_ops, config)
        assert result.ipc <= config.issue_width + 1e-9

    def test_result_accounting(self, small_rat_ops):
        result = simulate_cpu(small_rat_ops)
        assert result.n_microops == (
            result.n_operations + result.n_loads + result.n_stores + result.n_overhead
        )
