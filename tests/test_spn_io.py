"""Round-trip and error-handling tests for SPN serialization."""

import copy

import pytest

from repro.spn import io
from repro.spn.evaluate import evaluate
from repro.spn.graph import SPN, StructureError


def _assert_equivalent(original, restored, evidence_list):
    for evidence in evidence_list:
        assert evaluate(restored, evidence) == pytest.approx(evaluate(original, evidence))


class TestTextFormat:
    def test_round_trip_tiny(self, tiny_spn):
        restored = io.loads(io.dumps(tiny_spn))
        _assert_equivalent(tiny_spn, restored, [{}, {0: 1}, {0: 1, 1: 0}])

    def test_round_trip_random(self, small_random_spn):
        restored = io.loads(io.dumps(small_random_spn))
        restored.check_valid()
        _assert_equivalent(small_random_spn, restored, [{}, {0: 1, 2: 0, 4: 1}])

    def test_file_round_trip(self, tmp_path, mixture_spn):
        path = tmp_path / "model.spn"
        io.save(mixture_spn, path)
        restored = io.load(path)
        _assert_equivalent(mixture_spn, restored, [{0: 0, 1: 0}, {0: 1}])

    def test_unweighted_sum_round_trip(self):
        spn = SPN()
        p = spn.add_parameter(0.4)
        i = spn.add_indicator(0, 1)
        term = spn.add_product([p, i])
        other = spn.add_product([spn.add_parameter(0.6), spn.add_indicator(0, 0)])
        root = spn.add_sum([term, other])  # unweighted, AC style
        spn.set_root(root)
        restored = io.loads(io.dumps(spn))
        _assert_equivalent(spn, restored, [{0: 0}, {0: 1}, {}])

    def test_missing_header_rejected(self):
        with pytest.raises(StructureError):
            io.loads("ind 0 0 1\nroot 0\n")

    def test_missing_root_rejected(self):
        with pytest.raises(StructureError):
            io.loads("spn 1\nind 0 0 1\n")

    def test_forward_reference_rejected(self):
        text = "spn 1\nusum 0 1 5\nind 5 0 1\nroot 0\n"
        with pytest.raises(StructureError):
            io.loads(text)

    def test_duplicate_id_rejected(self):
        text = "spn 1\nind 0 0 1\nind 0 0 0\nroot 0\n"
        with pytest.raises(StructureError):
            io.loads(text)

    def test_unknown_record_rejected(self):
        with pytest.raises(StructureError):
            io.loads("spn 1\nblob 0 1 2\nroot 0\n")

    def test_comments_and_blank_lines_ignored(self, tiny_spn):
        text = io.dumps(tiny_spn)
        noisy = "# a comment\n\n" + text.replace("\n", "\n# interleaved\n\n", 1)
        restored = io.loads(noisy)
        _assert_equivalent(tiny_spn, restored, [{0: 1, 1: 1}])


class TestJsonFormat:
    def test_round_trip(self, mixture_spn):
        restored = io.from_json(io.to_json(mixture_spn))
        _assert_equivalent(mixture_spn, restored, [{}, {0: 0, 1: 1}])

    def test_file_round_trip(self, tmp_path, small_random_spn):
        path = tmp_path / "model.json"
        io.save_json(small_random_spn, path)
        restored = io.load_json(path)
        _assert_equivalent(small_random_spn, restored, [{}, {1: 1, 3: 0}])

    def test_wrong_format_rejected(self):
        with pytest.raises(StructureError):
            io.from_json({"format": "not-an-spn"})

    def test_document_shape(self, tiny_spn):
        payload = io.to_json(tiny_spn)
        assert payload["format"] == "repro-spn"
        assert payload["root"] == tiny_spn.root
        assert len(payload["nodes"]) == len(tiny_spn.topological_order())


def _drop_nodes(doc):
    del doc["nodes"]

def _nodes_not_a_list(doc):
    doc["nodes"] = {"0": "nope"}

def _record_missing_type(doc):
    del doc["nodes"][0]["type"]

def _record_missing_id(doc):
    del doc["nodes"][0]["id"]

def _record_id_not_int(doc):
    doc["nodes"][0]["id"] = "zero"

def _unknown_node_type(doc):
    doc["nodes"][0]["type"] = "gaussian"

def _dangling_child(doc):
    for record in doc["nodes"]:
        if record["type"] in ("sum", "product"):
            record["children"][0] = 9999
            return
    raise AssertionError("document has no inner node")

def _children_not_a_list(doc):
    for record in doc["nodes"]:
        if record["type"] in ("sum", "product"):
            record["children"] = 3
            return
    raise AssertionError("document has no inner node")

def _duplicate_id(doc):
    doc["nodes"][1]["id"] = doc["nodes"][0]["id"]

def _indicator_missing_var(doc):
    for record in doc["nodes"]:
        if record["type"] == "indicator":
            del record["var"]
            return
    raise AssertionError("document has no indicator")

def _root_undefined(doc):
    doc["root"] = 9999

def _root_missing(doc):
    del doc["root"]


class TestJsonCorruption:
    """Every malformed document fails with a typed StructureError.

    Table-driven over corruption modes: the loader must never leak a bare
    ``KeyError``/``IndexError``/``TypeError`` from reconstruction — the
    lifecycle artifact loader relies on this to translate any SPN-section
    corruption into its own typed error.
    """

    CORRUPTIONS = {
        "drop-nodes": _drop_nodes,
        "nodes-not-a-list": _nodes_not_a_list,
        "record-missing-type": _record_missing_type,
        "record-missing-id": _record_missing_id,
        "record-id-not-int": _record_id_not_int,
        "unknown-node-type": _unknown_node_type,
        "dangling-child": _dangling_child,
        "children-not-a-list": _children_not_a_list,
        "duplicate-id": _duplicate_id,
        "indicator-missing-var": _indicator_missing_var,
        "root-undefined": _root_undefined,
        "root-missing": _root_missing,
    }

    @pytest.mark.parametrize("mode", sorted(CORRUPTIONS))
    def test_corruption_raises_structure_error(self, mixture_spn, mode):
        doc = copy.deepcopy(io.to_json(mixture_spn))
        self.CORRUPTIONS[mode](doc)
        with pytest.raises(StructureError):
            io.from_json(doc)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(StructureError):
            io.from_json(["not", "a", "document"])
