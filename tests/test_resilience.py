"""Tests for the serving resilience layer: deadlines, shedding, retries,
circuit breakers, self-healing workers and the chaos soak harness."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.api import InferenceSession, LogLikelihood
from repro.faults import FaultPlan, FaultSpec, fault_scope
from repro.faults.soak import run_soak
from repro.serving import (
    BatchingPolicy,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    ExecutorFaultError,
    InferenceClient,
    AsyncInferenceClient,
    InferenceServer,
    QueueFullError,
    RetryBudget,
    RetryPolicy,
    SheddingError,
    WorkerCrashError,
    is_retryable,
)

BENCHMARK = "Banknote"
N_VARS = 4

# Injected worker crashes kill worker threads on purpose; pytest's
# unhandled-thread-exception warning is the expected trace of that.
pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


def _row(seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(-1, 2, size=N_VARS).astype(np.float64)


def _wait_until(predicate, timeout_s=5.0, interval_s=0.005):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _crash_all_workers(server, plan):
    """Deterministically kill the (single-worker) pool: submit a sacrificial
    request whose batch fires ``serving.worker_crash`` once; the batch is
    rescued back onto the queue and the worker thread dies.  Callers use a
    huge ``heal_interval_s`` so the supervisor leaves the corpse alone and
    the test picks the heal instant via ``server._heal_workers()``."""
    sacrificial = server.submit(BENCHMARK, _row(1), kind="log_likelihood")
    assert _wait_until(
        lambda: plan.report()["serving.worker_crash"]["fired"] >= 1
        and all(not w.is_alive() for w in server._workers)
    ), "worker did not crash"
    return sacrificial


def _count_evaluations(server, counts):
    """Attach an on_evaluate hook to the live session, filling ``counts``
    (a dict) with per-domain engine-pass row totals."""
    session = server.model(BENCHMARK).session

    def on_evaluate(domain, n_rows):
        counts[domain] = counts.get(domain, 0) + n_rows

    session.on_evaluate = on_evaluate
    return session


# --------------------------------------------------------------------------- #
# Policies (pure unit tests)
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            base_delay_s=0.01, max_delay_s=0.05, multiplier=2.0, jitter=0.0
        )
        delays = policy.delays()
        assert [delays.next_delay() for _ in range(4)] == [
            0.01,
            0.02,
            0.04,
            0.05,  # capped
        ]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=9)
        first = [policy.delays().next_delay() for _ in range(5)]
        assert first == [RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=9).delays().next_delay() for _ in range(5)]
        assert all(0.05 <= d <= 0.1 for d in first)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestRetryBudget:
    def test_starts_at_min_tokens(self):
        budget = RetryBudget(ratio=0.2, min_tokens=2.0, max_tokens=10.0)
        assert budget.allow_retry()
        assert budget.allow_retry()
        assert not budget.allow_retry()  # bucket empty

    def test_requests_refill_the_bucket(self):
        budget = RetryBudget(ratio=0.5, min_tokens=0.0, max_tokens=10.0)
        assert not budget.allow_retry()
        for _ in range(2):
            budget.record_request()
        assert budget.allow_retry()

    def test_refill_caps_at_max_tokens(self):
        budget = RetryBudget(ratio=1.0, min_tokens=0.0, max_tokens=2.0)
        for _ in range(50):
            budget.record_request()
        assert budget.tokens == 2.0


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        transitions = []
        breaker = CircuitBreaker(
            clock=lambda: clock["now"],
            on_state_change=transitions.append,
            **kwargs,
        )
        return breaker, clock, transitions

    def test_opens_after_consecutive_failures(self):
        breaker, _, transitions = self._breaker(failure_threshold=3)
        for _ in range(3):
            breaker.admit()
            breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.admit()
        assert breaker.state == "open"
        assert transitions == ["open"]

    def test_success_resets_the_failure_streak(self):
        breaker, _, _ = self._breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        breaker, clock, transitions = self._breaker(
            failure_threshold=1, reset_timeout_s=10.0
        )
        breaker.record_failure()
        clock["now"] = 11.0
        breaker.admit()  # the probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert transitions == ["open", "half_open", "closed"]

    def test_half_open_admits_one_probe_at_a_time(self):
        breaker, clock, _ = self._breaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure()
        clock["now"] = 2.0
        breaker.admit()
        with pytest.raises(CircuitOpenError):
            breaker.admit()  # second concurrent probe refused

    def test_half_open_probe_failure_reopens(self):
        breaker, clock, _ = self._breaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure()
        clock["now"] = 2.0
        breaker.admit()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.admit()  # cooldown restarted at t=2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(reset_timeout_s=-1.0)


class TestIsRetryable:
    @pytest.mark.parametrize(
        "exc",
        [
            SheddingError("x"),
            WorkerCrashError("x"),
            CircuitOpenError("x"),
            ExecutorFaultError("x"),
            QueueFullError("x"),
        ],
    )
    def test_transient_failures_are_retryable(self, exc):
        assert is_retryable(exc)

    def test_injected_executor_fault_is_retryable(self):
        from repro.faults import InjectedExecutorFault

        assert is_retryable(InjectedExecutorFault("serving.executor_fault", 0))

    @pytest.mark.parametrize(
        "exc", [DeadlineExceededError("x"), ValueError("x"), KeyError("x")]
    )
    def test_terminal_failures_are_not(self, exc):
        assert not is_retryable(exc)


# --------------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_non_positive_deadline_sheds_synchronously(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            with pytest.raises(DeadlineExceededError):
                server.submit(BENCHMARK, _row(), deadline_s=0.0)

    def test_generous_deadline_serves_normally(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            offline = server.model(BENCHMARK).session.run(LogLikelihood(evidence=_row(2)))
            value = server.query(BENCHMARK, _row(2), deadline_s=30.0)
            assert np.array_equal(value, offline)

    def test_expired_rows_never_reach_the_engine(self):
        """The deadline gate, measured at the engine boundary: rows whose
        deadline passed while queued are dropped before ``execute`` — zero
        linear-domain tape passes happen for them."""
        plan = FaultPlan(seed=0, specs=[FaultSpec("serving.worker_crash", times=1)])
        server = InferenceServer(
            models=[BENCHMARK],
            policy=BatchingPolicy(max_batch_size=16, max_wait_s=0.005),
            n_workers=1,
            heal_interval_s=60.0,
        )
        counts = {}
        with fault_scope(plan):
            server.start()
            _count_evaluations(server, counts)
            sacrificial = _crash_all_workers(server, plan)
            expired = [
                server.submit(BENCHMARK, _row(i), kind="likelihood", deadline_s=0.05)
                for i in range(6)
            ]
            time.sleep(0.15)  # all six deadlines pass; no worker is alive
            assert server._heal_workers() == 1
            for future in expired:
                with pytest.raises(DeadlineExceededError):
                    future.result(timeout=5.0)
            assert sacrificial.result(timeout=5.0) is not None
        server.stop()
        assert counts.get("linear", 0) == 0  # not one expired row executed
        assert counts.get("log", 0) >= 1  # the sacrificial request did run
        deadline_counter = server.metrics.registry.counter(
            "serving_deadline_exceeded_total"
        )
        assert deadline_counter.value >= 6

    def test_deadline_bounds_the_backpressure_wait(self):
        """A full queue with a deadline shorter than the caller's timeout
        fails with the typed deadline error, not QueueFullError."""
        plan = FaultPlan(seed=0, specs=[FaultSpec("serving.worker_crash", times=1)])
        server = InferenceServer(
            models=[BENCHMARK],
            policy=BatchingPolicy(
                max_batch_size=4, max_wait_s=0.005, max_queue_depth=1
            ),
            n_workers=1,
            heal_interval_s=60.0,
        )
        with fault_scope(plan):
            server.start()
            sacrificial = _crash_all_workers(server, plan)
            # Queue holds the rescued row; depth 1 = full.
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                server.submit(BENCHMARK, _row(), timeout=30.0, deadline_s=0.05)
            assert time.perf_counter() - started < 5.0  # waited ~deadline, not timeout
            server._heal_workers()
            assert sacrificial.result(timeout=5.0) is not None
        server.stop()


# --------------------------------------------------------------------------- #
# Load shedding
# --------------------------------------------------------------------------- #
class TestLoadShedding:
    def test_sheds_beyond_max_in_flight(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("serving.worker_crash", times=1)])
        server = InferenceServer(
            models=[BENCHMARK],
            policy=BatchingPolicy(max_batch_size=16, max_wait_s=0.005),
            n_workers=1,
            max_in_flight=2,
            heal_interval_s=60.0,
        )
        with fault_scope(plan):
            server.start()
            sacrificial = _crash_all_workers(server, plan)
            second = server.submit(BENCHMARK, _row(2))  # fills slot 2 of 2
            with pytest.raises(SheddingError):
                server.submit(BENCHMARK, _row(3))
            assert server.metrics.registry.counter("serving_shed_total").value == 1
            assert server.in_flight() == 2
            server._heal_workers()
            assert sacrificial.result(timeout=5.0) is not None
            assert second.result(timeout=5.0) is not None
            # Slots freed on delivery: admission opens again.
            assert _wait_until(lambda: server.in_flight() == 0)
            assert server.query(BENCHMARK, _row(4)) is not None
        server.stop()

    def test_shedding_is_not_queue_backpressure(self):
        assert not issubclass(SheddingError, QueueFullError)
        assert not issubclass(QueueFullError, SheddingError)

    def test_invalid_max_in_flight_rejected(self):
        with pytest.raises(ValueError):
            InferenceServer(models=[BENCHMARK], max_in_flight=0)


# --------------------------------------------------------------------------- #
# Client retries and breakers
# --------------------------------------------------------------------------- #
class TestClientRetries:
    def _flaky_server(self, server, failures, exc_factory):
        """Monkeypatch ``server.submit`` to fail its first ``failures``
        calls with ``exc_factory()`` and serve normally afterwards."""
        real_submit = server.submit
        state = {"calls": 0}

        def flaky(model, evidence, kind=None, timeout=None, deadline_s=None):
            state["calls"] += 1
            if state["calls"] <= failures:
                raise exc_factory()
            return real_submit(
                model, evidence, kind=kind, timeout=timeout, deadline_s=deadline_s
            )

        server.submit = flaky
        return state

    def test_retry_rides_through_transient_shedding(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            state = self._flaky_server(server, 2, lambda: SheddingError("shed"))
            client = InferenceClient(
                server,
                BENCHMARK,
                retry=RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0),
            )
            offline = server.model(BENCHMARK).session.run(LogLikelihood(evidence=_row(5)))
            assert client.query(_row(5)) == offline[0]
            assert state["calls"] == 3
            retries = server.metrics.registry.counter("serving_retries_total")
            assert retries.value == 2

    def test_attempts_exhausted_reraises_the_failure(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            self._flaky_server(server, 100, lambda: SheddingError("shed"))
            client = InferenceClient(
                server,
                BENCHMARK,
                retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            )
            with pytest.raises(SheddingError):
                client.query(_row())

    def test_non_retryable_failures_fail_fast(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            state = self._flaky_server(server, 100, lambda: ValueError("bad"))
            client = InferenceClient(
                server,
                BENCHMARK,
                retry=RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0),
            )
            with pytest.raises(ValueError):
                client.query(_row())
            assert state["calls"] == 1

    def test_exhausted_budget_denies_the_retry(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            state = self._flaky_server(server, 100, lambda: SheddingError("shed"))
            client = InferenceClient(
                server,
                BENCHMARK,
                retry=RetryPolicy(max_attempts=10, base_delay_s=0.0, jitter=0.0),
                retry_budget=RetryBudget(ratio=0.0, min_tokens=1.0, max_tokens=1.0),
            )
            with pytest.raises(SheddingError):
                client.query(_row())
            assert state["calls"] == 2  # first attempt + the single budgeted retry

    def test_no_retry_policy_means_no_retries(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            state = self._flaky_server(server, 1, lambda: SheddingError("shed"))
            client = InferenceClient(server, BENCHMARK)
            with pytest.raises(SheddingError):
                client.query(_row())
            assert state["calls"] == 1

    def test_breaker_opens_and_fails_fast(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            state = self._flaky_server(server, 100, lambda: SheddingError("shed"))
            client = InferenceClient(
                server,
                BENCHMARK,
                breaker=BreakerPolicy(failure_threshold=3, reset_timeout_s=60.0),
            )
            for _ in range(3):
                with pytest.raises(SheddingError):
                    client.query(_row())
            calls_when_open = state["calls"]
            with pytest.raises(CircuitOpenError):
                client.query(_row())
            assert state["calls"] == calls_when_open  # the server was not touched
            gauge = server.metrics.registry.gauge(
                "serving_breaker_state", model=BENCHMARK
            )
            assert gauge.value == 2  # open

    def test_breaker_recovers_through_half_open_probe(self):
        with InferenceServer(models=[BENCHMARK]) as server:
            state = self._flaky_server(server, 2, lambda: SheddingError("shed"))
            client = InferenceClient(
                server,
                BENCHMARK,
                breaker=BreakerPolicy(failure_threshold=2, reset_timeout_s=0.02),
            )
            for _ in range(2):
                with pytest.raises(SheddingError):
                    client.query(_row())
            time.sleep(0.05)  # cooldown elapses; next call is the probe
            offline = server.model(BENCHMARK).session.run(LogLikelihood(evidence=_row(6)))
            assert client.query(_row(6)) == offline[0]
            gauge = server.metrics.registry.gauge(
                "serving_breaker_state", model=BENCHMARK
            )
            assert gauge.value == 0  # closed again
            assert state["calls"] == 3


# --------------------------------------------------------------------------- #
# Self-healing workers
# --------------------------------------------------------------------------- #
class TestSelfHealing:
    def test_crashed_worker_is_restarted_and_no_request_is_lost(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("serving.worker_crash", times=1)])
        server = InferenceServer(
            models=[BENCHMARK],
            policy=BatchingPolicy(max_batch_size=16, max_wait_s=0.005),
            n_workers=1,
            heal_interval_s=0.01,  # the supervisor heals on its own here
        )
        with fault_scope(plan):
            server.start()
            offline = server.model(BENCHMARK).session.run(LogLikelihood(evidence=_row(7)))
            value = server.query(BENCHMARK, _row(7), timeout=10.0)
            assert np.array_equal(value, offline)
            restarts = server.metrics.registry.counter(
                "serving_worker_restarts_total"
            )
            assert _wait_until(lambda: restarts.value >= 1)
        server.stop()

    def test_poison_batch_fails_typed_after_max_rescues(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("serving.worker_crash")])
        server = InferenceServer(
            models=[BENCHMARK],
            policy=BatchingPolicy(max_batch_size=16, max_wait_s=0.005),
            n_workers=1,
            max_rescues=2,
            heal_interval_s=0.01,
        )
        with fault_scope(plan):
            server.start()
            future = server.submit(BENCHMARK, _row(8))
            with pytest.raises(WorkerCrashError):
                future.result(timeout=10.0)
        server.stop()

    def test_stop_drains_through_crashes(self):
        """stop() must terminate (and resolve every future) even when the
        drain itself keeps crashing workers."""
        plan = FaultPlan(
            seed=1, specs=[FaultSpec("serving.worker_crash", rate=0.5, times=4)]
        )
        server = InferenceServer(
            models=[BENCHMARK],
            policy=BatchingPolicy(max_batch_size=4, max_wait_s=0.005),
            n_workers=2,
            heal_interval_s=60.0,  # the drain loop itself must heal
        )
        with fault_scope(plan):
            server.start()
            futures = [server.submit(BENCHMARK, _row(i)) for i in range(16)]
            server.stop()
            for future in futures:
                # Every future resolved: a delivered value, or the typed
                # rescue-limit failure when the crash schedule hammered one
                # batch past max_rescues — never an unresolved hang.
                assert future.done()
                try:
                    assert future.result(timeout=0.0) is not None
                except WorkerCrashError:
                    pass


# --------------------------------------------------------------------------- #
# Regression: partial-enqueue orphans (put_many timing out mid-request)
# --------------------------------------------------------------------------- #
class TestPartialEnqueueOrphans:
    def test_orphan_rows_are_skipped_not_executed(self):
        """A multi-row request whose ``put_many`` times out mid-enqueue
        leaves already-queued rows behind with a failed request.  Workers
        must skip them at the engine boundary: zero linear-domain tape
        passes, accounting back to zero, and the server keeps serving."""
        plan = FaultPlan(seed=0, specs=[FaultSpec("serving.worker_crash", times=1)])
        server = InferenceServer(
            models=[BENCHMARK],
            policy=BatchingPolicy(
                max_batch_size=4, max_wait_s=0.005, max_queue_depth=2
            ),
            n_workers=1,
            max_in_flight=8,
            heal_interval_s=60.0,
        )
        counts = {}
        with fault_scope(plan):
            server.start()
            _count_evaluations(server, counts)
            sacrificial = _crash_all_workers(server, plan)
            rows = np.stack([_row(i) for i in range(4)])
            # Depth 1 of 2 used by the rescued row: one orphan row enqueues,
            # then the second row's wait times out.
            with pytest.raises(QueueFullError):
                server.submit(BENCHMARK, rows, kind="likelihood", timeout=0.05)
            assert len(server._queue) == 2  # rescued row + the orphan
            server._heal_workers()
            assert sacrificial.result(timeout=5.0) is not None
            assert _wait_until(lambda: len(server._queue) == 0)
            assert _wait_until(lambda: server.in_flight() == 0)
            # The server still serves after the partial enqueue.
            assert server.query(BENCHMARK, _row(9), timeout=5.0) is not None
        server.stop()
        assert counts.get("linear", 0) == 0  # the orphan row never executed


# --------------------------------------------------------------------------- #
# Regression: async-client cancellation
# --------------------------------------------------------------------------- #
class TestAsyncCancellation:
    def test_cancelled_task_releases_accounting_and_leaks_nothing(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("serving.worker_crash", times=1)])
        server = InferenceServer(
            models=[BENCHMARK],
            policy=BatchingPolicy(max_batch_size=16, max_wait_s=0.005),
            n_workers=1,
            max_in_flight=4,
            heal_interval_s=60.0,
        )
        counts = {}

        async def scenario():
            client = AsyncInferenceClient(server, BENCHMARK)
            task = asyncio.ensure_future(client.likelihood(_row(3)))
            await asyncio.sleep(0.05)  # admitted; queued behind the dead pool
            assert server.in_flight() == 2  # sacrificial + the doomed task
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # Cancellation released the admission slot through the future's
            # done-callback — no wedged _remaining accounting, no leaked slot.
            assert _wait_until(lambda: server.in_flight() == 1)
            server._heal_workers()
            # The cancelled request's row is skipped; the stack still serves.
            value = await client.log_likelihood(_row(4))
            return value

        with fault_scope(plan):
            server.start()
            _count_evaluations(server, counts)
            sacrificial = _crash_all_workers(server, plan)
            value = asyncio.run(scenario())
            assert value is not None
            assert sacrificial.result(timeout=5.0) is not None
            assert _wait_until(lambda: server.in_flight() == 0)
        server.stop()
        assert counts.get("linear", 0) == 0  # the cancelled row never executed


# --------------------------------------------------------------------------- #
# The chaos soak (short seeded run; the 10^4 gate lives in the benchmark)
# --------------------------------------------------------------------------- #
class TestSoak:
    def test_short_soak_holds_every_invariant(self):
        report = run_soak(
            n_requests=200,
            seed=0,
            n_submitters=2,
            publish_crash=True,
            timeout_s=60.0,
        )
        assert report["invariants"]["clean"], report
        assert report["lost_requests"] == 0
        assert report["outcomes"].get("mismatch", 0) == 0
        assert report["publish"]["crashed"] is not None
        assert report["publish"]["live_after"] == report["publish"]["live_before"]

    def test_soak_cli_exits_zero(self, capsys):
        from repro.faults.__main__ import main

        assert main(["soak", "--requests", "60", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert '"clean": true' in out

    def test_soak_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            run_soak(n_requests=0)
        with pytest.raises(ValueError):
            run_soak(deadline_fraction=2.0)
