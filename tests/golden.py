"""Golden-replay fixtures for the lifecycle tests.

Two layers on top of :mod:`repro.lifecycle.golden`:

* :func:`golden_case` — the per-suite-profile fixture: the profile's AOT
  artifact, its deterministic golden-evidence set, and the expected
  (offline-session) replay.  Everything derives from ``(name, seed)``
  only, so a restarted process reconstructs the identical case.
* :func:`all_kinds_queries` / :func:`replay_queries` /
  :func:`assert_replays_identical` — the full ten-kind query surface,
  generated **once** per ``(n_vars, seed)`` and replayed through any
  number of sessions, with bit-exact comparison of every result
  (``array_equal`` for arrays, ``==`` for MPE completion lists).  This is
  how the artifact round-trip tests assert that a cold-started session
  answers every query kind exactly like a fresh compile.
"""

from __future__ import annotations

import numpy as np

from repro.lifecycle.golden import golden_evidence, golden_replay
from strategies import ALL_KINDS, make_query

#: Seed for the all-kinds query surface (distinct from GOLDEN_SEED so the
#: two fixture families never alias).
QUERY_SEED = 4242


def golden_case(name: str, version: str = "0"):
    """(artifact, evidence, expected replay) for one suite profile."""
    from repro.suite.registry import benchmark_artifact

    artifact = benchmark_artifact(name, version=version)
    evidence = golden_evidence(artifact.n_vars)
    expected = golden_replay(artifact.session(), evidence)
    return artifact, evidence, expected


def all_kinds_queries(n_vars: int, seed: int = QUERY_SEED, n_rows: int = 3):
    """One deterministic typed query per kind, keyed by kind name.

    Built once and replayed against several sessions — the queries carry
    their own evidence arrays, so two replays see byte-identical inputs.
    """
    rng = np.random.default_rng([int(seed), int(n_vars)])
    return {kind: make_query(kind, n_vars, rng, n_rows) for kind in ALL_KINDS}


def replay_queries(session, queries):
    """Run every query through ``session.run``, keyed like ``queries``."""
    return {kind: session.run(query) for kind, query in queries.items()}


def assert_replays_identical(candidate, reference):
    """Bit-exact comparison of two :func:`replay_queries` results."""
    assert set(candidate) == set(reference)
    for kind, want in reference.items():
        got = candidate[kind]
        if isinstance(want, list):  # MPE: per-row {var: value} completions
            assert got == want, f"{kind}: completions differ"
            continue
        got = np.asarray(got)
        want = np.asarray(want)
        assert got.shape == want.shape, f"{kind}: shape {got.shape} != {want.shape}"
        assert np.array_equal(got, want, equal_nan=True), (
            f"{kind}: served values are not bit-identical"
        )
