"""Fast (vectorized) simulator mode: equivalence with strict mode and errors.

The acceptance bar for the fast path is *exact* agreement: on every suite
profile the precompiled tapes must reproduce the strict interpreter's cycle
count, output value and utilization counters bit for bit, because they apply
the same IEEE-754 operations to the same operand pairings — only batched.
"""

import numpy as np
import pytest

from repro.compiler.driver import compile_operation_list
from repro.processor.config import ptree_config, pvect_config
from repro.processor.errors import (
    StructuralHazardError,
    UninitializedReadError,
    VerificationError,
)
from repro.processor.fastsim import fast_program, precompile_program
from repro.processor.isa import (
    OP_ADD,
    OP_MUL,
    Instruction,
    MemOp,
    Program,
    ReadSpec,
    WriteSpec,
)
from repro.processor.simulator import (
    MODE_FAST,
    MODE_STRICT,
    Simulator,
    cross_check_modes,
    simulate_program,
)
from repro.suite.registry import benchmark_names, benchmark_operation_list

_COUNTERS = ("cycles", "n_reads", "n_writes", "n_loads", "n_stores")


def _single_op_program(opcode, config):
    """Load two inputs from dmem row 0 (banks 0 and 1) and combine them."""
    instructions = [Instruction(mem=MemOp(kind="load", row=0, reg=0))]
    instructions.extend(Instruction() for _ in range(config.load_latency))
    instructions.append(
        Instruction(
            reads=[
                ReadSpec(port=(0, 0), bank=0, reg=0, slot=0),
                ReadSpec(port=(0, 1), bank=1, reg=0, slot=1),
            ],
            pe_ops={(0, 0, 0): opcode},
            writes=[WriteSpec(pe=(0, 0, 0), bank=0, reg=1, slot=2)],
        )
    )
    return Program(
        instructions=instructions,
        dmem_image=[[0, 1] + [None] * (config.n_banks - 2)],
        result_location=(0, 1),
        result_slot=2,
        n_operations=1,
    )


class TestSuiteEquivalence:
    """Fast mode reproduces strict mode exactly on all nine suite profiles."""

    @pytest.mark.parametrize("name", benchmark_names())
    def test_fast_matches_strict_exactly(self, name):
        ops = benchmark_operation_list(name)
        config = ptree_config()
        kernel = compile_operation_list(ops, config)
        vec = ops.input_vector(None)
        expected = ops.execute_values(vec)

        strict = Simulator(config, strict=True, mode=MODE_STRICT).run(
            kernel.program, vec, expected
        )
        fast = Simulator(config, mode=MODE_FAST).run(kernel.program, vec)

        assert fast.value == strict.value  # exact, no tolerance
        for counter in _COUNTERS:
            assert getattr(fast, counter) == getattr(strict, counter), counter
        assert fast.ops_per_cycle == strict.ops_per_cycle

    def test_pvect_configuration_agrees_too(self):
        ops = benchmark_operation_list("Banknote")
        config = pvect_config()
        kernel = compile_operation_list(ops, config)
        vec = ops.input_vector(None)
        cross_check_modes(kernel.program, vec, config, ops.execute_values(vec))

    def test_fast_agrees_across_evidence(self):
        """Same program, several input vectors: values always match strict."""
        ops = benchmark_operation_list("EEG-eye")
        config = ptree_config()
        kernel = compile_operation_list(ops, config)
        for assignment in ({0: 1}, {0: 0, 1: 1}, None):
            vec = ops.input_vector(assignment)
            strict = Simulator(config, strict=False, mode=MODE_STRICT).run(
                kernel.program, vec
            )
            fast = Simulator(config, mode=MODE_FAST).run(kernel.program, vec)
            assert fast.value == strict.value


class TestModeSelection:
    def test_default_strict_interprets(self):
        assert Simulator(ptree_config()).mode == MODE_STRICT

    def test_non_strict_defaults_to_fast(self):
        assert Simulator(ptree_config(), strict=False).mode == MODE_FAST

    def test_explicit_mode_wins(self):
        assert Simulator(ptree_config(), strict=False, mode=MODE_STRICT).mode == MODE_STRICT

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            Simulator(ptree_config(), mode="warp")

    def test_simulate_program_check_cross_checks(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        result = simulate_program(program, [2.0, 3.0, 5.0], config, check=True)
        assert result.value == pytest.approx(5.0)


class TestFastSemantics:
    @pytest.mark.parametrize("opcode,expected", [(OP_ADD, 5.0), (OP_MUL, 6.0)])
    def test_single_operation(self, opcode, expected):
        config = ptree_config()
        program = _single_op_program(opcode, config)
        result = Simulator(config, mode=MODE_FAST).run(program, [2.0, 3.0, 0.0])
        assert result.value == pytest.approx(expected)
        assert result.n_operations == 1
        assert result.n_loads == 1

    def test_input_root_program(self):
        config = ptree_config()
        program = Program(
            instructions=[], dmem_image=[], result_location=None, result_slot=1
        )
        result = Simulator(config, mode=MODE_FAST).run(program, [0.25, 0.75])
        assert result.value == pytest.approx(0.75)

    def test_kernel_memoizes_fast_form(self):
        ops = benchmark_operation_list("Banknote")
        config = ptree_config()
        kernel = compile_operation_list(ops, config)
        strict_value = kernel.run(None, strict=True).value
        fast_first = kernel.run(None, strict=False)
        assert kernel._fast_form is not None
        memo = kernel._fast_form
        fast_second = kernel.run(None, strict=False)
        assert kernel._fast_form is memo  # reused, not rebuilt
        assert fast_first.value == strict_value == fast_second.value

    def test_precompiled_requires_fast_mode(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        compiled = fast_program(program, config)
        with pytest.raises(ValueError, match="fast mode"):
            Simulator(config, strict=True).run(
                program, [2.0, 3.0, 5.0], precompiled=compiled
            )

    def test_tape_reuse_across_inputs(self):
        config = ptree_config()
        program = _single_op_program(OP_MUL, config)
        compiled = fast_program(program, config)
        assert fast_program(program, config) is compiled  # cached
        sim = Simulator(config, mode=MODE_FAST)
        assert sim.run(program, [2.0, 3.0, 0.0]).value == pytest.approx(6.0)
        assert sim.run(program, [4.0, 5.0, 0.0]).value == pytest.approx(20.0)

    def test_mutating_the_program_invalidates_the_cache(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        sim = Simulator(config, mode=MODE_FAST)
        assert sim.run(program, [2.0, 3.0, 0.0]).value == pytest.approx(5.0)
        # Change the opcode in place: the content key changes, so the cached
        # tape for the old content cannot be served.
        compute = program.instructions[-1]
        compute.pe_ops[(0, 0, 0)] = OP_MUL
        assert sim.run(program, [2.0, 3.0, 0.0]).value == pytest.approx(6.0)


class TestFastErrors:
    def test_uninitialized_read_detected_at_precompile(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        early_read = Instruction(
            reads=[
                ReadSpec(port=(0, 0), bank=0, reg=1),
                ReadSpec(port=(0, 1), bank=1, reg=0),
            ],
            pe_ops={(0, 0, 0): "pass_a"},
            writes=[WriteSpec(pe=(0, 0, 0), bank=0, reg=2)],
        )
        program.instructions.append(early_read)
        with pytest.raises(UninitializedReadError):
            precompile_program(program, config)

    def test_missing_result_register_detected(self):
        config = ptree_config()
        program = Program(
            instructions=[Instruction()],
            dmem_image=[],
            result_location=(0, 0),
            result_slot=0,
        )
        with pytest.raises(UninitializedReadError):
            Simulator(config, mode=MODE_FAST).run(program, [1.0])

    def test_short_input_vector_detected_at_run_time(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        sim = Simulator(config, mode=MODE_FAST)
        with pytest.raises(StructuralHazardError, match="input slot"):
            sim.run(program, [2.0])

    def test_negative_image_slot_detected_not_wrapped(self):
        """A negative dmem-image slot must raise, never gather values[-1]."""
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        program.dmem_image[0][1] = -1
        with pytest.raises(StructuralHazardError, match="input slot -1"):
            Simulator(config, mode=MODE_FAST).run(program, [2.0, 3.0, 0.0])
        with pytest.raises(StructuralHazardError, match="input slot -1"):
            Simulator(config, strict=True).run(program, [2.0, 3.0, 0.0])

    def test_crossbar_conflict_detected(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        compute = program.instructions[-1]
        compute.reads.append(
            ReadSpec(port=(1, 0), bank=0, reg=5)  # same bank, different register
        )
        with pytest.raises((StructuralHazardError, UninitializedReadError)):
            precompile_program(program, config)

    def test_mode_disagreement_is_reported(self, monkeypatch):
        """cross_check_modes flags any field divergence as VerificationError."""
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        import repro.processor.simulator as simulator_module

        compiled = fast_program(program, config)
        monkeypatch.setattr(simulator_module, "fast_program", lambda *_: compiled)
        monkeypatch.setattr(compiled, "cycles", compiled.cycles + 1)
        with pytest.raises(VerificationError, match="disagrees"):
            cross_check_modes(program, [2.0, 3.0, 0.0], config)
