"""Tests for the cycle-accurate simulator using small hand-written programs."""

import numpy as np
import pytest

from repro.processor.config import ptree_config, pvect_config
from repro.processor.errors import (
    StructuralHazardError,
    UninitializedReadError,
    VerificationError,
)
from repro.processor.isa import (
    OP_ADD,
    OP_MUL,
    OP_PASS_A,
    Instruction,
    MemOp,
    Program,
    ReadSpec,
    WriteSpec,
)
from repro.processor.simulator import Simulator


def _load_instruction(row: int, reg: int) -> Instruction:
    return Instruction(mem=MemOp(kind="load", row=row, reg=reg))


def _single_op_program(opcode: str, config) -> Program:
    """Load two inputs from dmem row 0 (banks 0 and 1) and combine them."""
    wait = config.load_latency
    instructions = [_load_instruction(0, 0)]
    instructions.extend(Instruction() for _ in range(wait))
    compute = Instruction(
        reads=[
            ReadSpec(port=(0, 0), bank=0, reg=0, slot=0),
            ReadSpec(port=(0, 1), bank=1, reg=0, slot=1),
        ],
        pe_ops={(0, 0, 0): opcode},
        writes=[WriteSpec(pe=(0, 0, 0), bank=0, reg=1, slot=2)],
    )
    instructions.append(compute)
    dmem = [[0, 1] + [None] * (config.n_banks - 2)]
    return Program(
        instructions=instructions,
        dmem_image=dmem,
        result_location=(0, 1),
        result_slot=2,
        n_operations=1,
    )


class TestSingleOperation:
    @pytest.mark.parametrize("opcode,expected", [(OP_ADD, 5.0), (OP_MUL, 6.0)])
    def test_add_and_mul(self, opcode, expected):
        config = ptree_config()
        program = _single_op_program(opcode, config)
        result = Simulator(config).run(program, [2.0, 3.0, 0.0])
        assert result.value == pytest.approx(expected)
        assert result.n_operations == 1
        assert result.n_loads == 1

    def test_strict_mode_checks_values(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        expected = np.array([2.0, 3.0, 5.0])
        result = Simulator(config, strict=True).run(program, [2.0, 3.0], expected)
        assert result.value == pytest.approx(5.0)

    def test_strict_mode_detects_wrong_expectation(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        wrong = np.array([2.0, 3.0, 99.0])
        with pytest.raises(VerificationError):
            Simulator(config, strict=True).run(program, [2.0, 3.0], wrong)

    def test_cycle_count_includes_drain(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        result = Simulator(config).run(program, [1.0, 1.0, 0.0])
        assert result.cycles >= program.n_instructions

    def test_works_on_pvect_too(self):
        config = pvect_config()
        program = _single_op_program(OP_MUL, config)
        result = Simulator(config).run(program, [4.0, 2.5, 0.0])
        assert result.value == pytest.approx(10.0)


class TestPipelineSemantics:
    def test_result_not_visible_before_latency(self):
        """Reading the destination register too early must return the old value."""
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        # Append an immediate read of the destination into another operation.
        early_read = Instruction(
            reads=[
                ReadSpec(port=(0, 0), bank=0, reg=1),
                ReadSpec(port=(0, 1), bank=1, reg=0),
            ],
            pe_ops={(0, 0, 0): OP_PASS_A},
            writes=[WriteSpec(pe=(0, 0, 0), bank=0, reg=2)],
        )
        program.instructions.append(early_read)
        with pytest.raises(UninitializedReadError):
            # bank0/reg1 is written with latency, so the immediate read sees
            # an uninitialized register.
            Simulator(config).run(program, [2.0, 3.0, 0.0])

    def test_pass_through_cone(self):
        """A full tree of pass-throughs moves one value without arithmetic."""
        config = ptree_config()
        wait = config.load_latency
        instructions = [_load_instruction(0, 0)]
        instructions.extend(Instruction() for _ in range(wait))
        instructions.append(
            Instruction(
                reads=[ReadSpec(port=(0, 0), bank=0, reg=0, slot=0)],
                pe_ops={
                    (0, 0, 0): OP_PASS_A,
                    (0, 1, 0): OP_PASS_A,
                    (0, 2, 0): OP_PASS_A,
                    (0, 3, 0): OP_PASS_A,
                },
                writes=[WriteSpec(pe=(0, 3, 0), bank=5, reg=0, slot=0)],
            )
        )
        dmem = [[0] + [None] * (config.n_banks - 1)]
        program = Program(
            instructions=instructions,
            dmem_image=dmem,
            result_location=(5, 0),
            result_slot=0,
            n_operations=0,
        )
        result = Simulator(config).run(program, [7.5])
        assert result.value == pytest.approx(7.5)
        assert result.n_operations == 0

    def test_deep_cone_in_one_instruction(self):
        """A 3-operation cone computed entirely inside one tree."""
        config = ptree_config()
        wait = config.load_latency
        instructions = [_load_instruction(0, 0)]
        instructions.extend(Instruction() for _ in range(wait))
        # (a*b) + (c*d) with a,b,c,d in banks 0..3.
        instructions.append(
            Instruction(
                reads=[
                    ReadSpec(port=(0, 0), bank=0, reg=0),
                    ReadSpec(port=(0, 1), bank=1, reg=0),
                    ReadSpec(port=(0, 2), bank=2, reg=0),
                    ReadSpec(port=(0, 3), bank=3, reg=0),
                ],
                pe_ops={
                    (0, 0, 0): OP_MUL,
                    (0, 0, 1): OP_MUL,
                    (0, 1, 0): OP_ADD,
                },
                writes=[WriteSpec(pe=(0, 1, 0), bank=2, reg=1)],
            )
        )
        dmem = [[0, 1, 2, 3] + [None] * (config.n_banks - 4)]
        program = Program(
            instructions=instructions,
            dmem_image=dmem,
            result_location=(2, 1),
            result_slot=0,
            n_operations=3,
        )
        result = Simulator(config).run(program, [2.0, 3.0, 4.0, 5.0])
        assert result.value == pytest.approx(2 * 3 + 4 * 5)
        assert result.n_operations == 3

    def test_store_writes_back_to_memory(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        # Store the result row back to data memory after it commits.
        drain = config.result_latency(1)
        program.instructions.extend(Instruction() for _ in range(drain))
        program.instructions.append(Instruction(mem=MemOp(kind="store", row=1, reg=1)))
        result = Simulator(config).run(program, [2.0, 3.0, 0.0])
        assert result.n_stores == 1
        assert result.value == pytest.approx(5.0)


class TestResultExtraction:
    def test_input_root(self):
        config = ptree_config()
        program = Program(
            instructions=[], dmem_image=[], result_location=None, result_slot=1, n_operations=0
        )
        result = Simulator(config).run(program, [0.25, 0.75])
        assert result.value == pytest.approx(0.75)

    def test_missing_result_register_detected(self):
        config = ptree_config()
        program = Program(
            instructions=[Instruction()],
            dmem_image=[],
            result_location=(0, 0),
            result_slot=0,
            n_operations=0,
        )
        with pytest.raises(UninitializedReadError):
            Simulator(config).run(program, [1.0])

    def test_utilization_metrics(self):
        config = ptree_config()
        program = _single_op_program(OP_ADD, config)
        result = Simulator(config).run(program, [1.0, 2.0, 0.0])
        assert 0.0 < result.pe_utilization <= 1.0
        assert 0.0 < result.read_port_utilization <= 1.0
