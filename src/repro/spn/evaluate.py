"""Exact evaluation of SPNs (reference implementation).

These routines are the functional ground truth that every execution backend
in the repository (operation lists, the GPU kernel model, the custom
processor simulator) is checked against.

Evidence is a mapping ``{variable_index: value}``; variables that are not
present are marginalized out, i.e. all of their indicator leaves evaluate to
one.  Batched evaluation takes an integer array where the sentinel value
``-1`` marks an unobserved variable.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

import numpy as np

from .graph import SPN
from .nodes import IndicatorLeaf, ParameterLeaf, ProductNode, SumNode

__all__ = [
    "MARGINALIZED",
    "evaluate",
    "evaluate_log",
    "evaluate_batch",
    "evaluate_nodes",
    "partition_function",
]

#: Sentinel used in batched evidence arrays for "variable not observed".
MARGINALIZED = -1


def _indicator_value(leaf: IndicatorLeaf, evidence: Mapping[int, int]) -> float:
    observed = evidence.get(leaf.var)
    if observed is None or observed == MARGINALIZED:
        return 1.0
    return 1.0 if observed == leaf.value else 0.0


def evaluate_nodes(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> Dict[int, float]:
    """Evaluate every reachable node bottom-up and return ``{node_id: value}``."""
    evidence = evidence or {}
    values: Dict[int, float] = {}
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            values[nid] = _indicator_value(node, evidence)
        elif isinstance(node, ParameterLeaf):
            values[nid] = node.prob
        elif isinstance(node, SumNode):
            if node.is_weighted:
                assert node.weights is not None
                values[nid] = sum(
                    w * values[c] for w, c in zip(node.weights, node.children)
                )
            else:
                values[nid] = sum(values[c] for c in node.children)
        elif isinstance(node, ProductNode):
            acc = 1.0
            for c in node.children:
                acc *= values[c]
            values[nid] = acc
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    return values


def evaluate(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> float:
    """Evaluate the SPN at the root in the linear domain."""
    return evaluate_nodes(spn, evidence)[spn.root]


def evaluate_log(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> float:
    """Evaluate the SPN in the log domain (numerically robust for deep networks).

    Returns ``-inf`` when the evidence has probability zero.
    """
    evidence = evidence or {}
    log_values: Dict[int, float] = {}
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            v = _indicator_value(node, evidence)
            log_values[nid] = 0.0 if v > 0.0 else -math.inf
        elif isinstance(node, ParameterLeaf):
            log_values[nid] = math.log(node.prob) if node.prob > 0.0 else -math.inf
        elif isinstance(node, SumNode):
            children = node.children
            if node.is_weighted:
                assert node.weights is not None
                terms = [
                    (math.log(w) if w > 0.0 else -math.inf) + log_values[c]
                    for w, c in zip(node.weights, children)
                ]
            else:
                terms = [log_values[c] for c in children]
            m = max(terms)
            if m == -math.inf:
                log_values[nid] = -math.inf
            else:
                log_values[nid] = m + math.log(sum(math.exp(t - m) for t in terms))
        elif isinstance(node, ProductNode):
            log_values[nid] = sum(log_values[c] for c in node.children)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    return log_values[spn.root]


def evaluate_batch(spn: SPN, data: np.ndarray) -> np.ndarray:
    """Evaluate the SPN on a batch of samples.

    Parameters
    ----------
    data:
        Integer array of shape ``(n_samples, n_vars)``.  Column ``v`` holds the
        observed value of variable ``v``; use :data:`MARGINALIZED` (-1) for
        unobserved variables.  Variables whose index exceeds the number of
        columns are treated as unobserved.

    Returns
    -------
    numpy.ndarray
        Vector of root values, shape ``(n_samples,)``.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D evidence array, got shape {data.shape}")
    n_samples, n_cols = data.shape
    values: Dict[int, np.ndarray] = {}
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            if node.var >= n_cols:
                values[nid] = np.ones(n_samples)
            else:
                col = data[:, node.var]
                values[nid] = np.where(
                    (col == MARGINALIZED) | (col == node.value), 1.0, 0.0
                )
        elif isinstance(node, ParameterLeaf):
            values[nid] = np.full(n_samples, node.prob)
        elif isinstance(node, SumNode):
            acc = np.zeros(n_samples)
            if node.is_weighted:
                assert node.weights is not None
                for w, c in zip(node.weights, node.children):
                    acc = acc + w * values[c]
            else:
                for c in node.children:
                    acc = acc + values[c]
            values[nid] = acc
        elif isinstance(node, ProductNode):
            acc = np.ones(n_samples)
            for c in node.children:
                acc = acc * values[c]
            values[nid] = acc
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    return values[spn.root]


def partition_function(spn: SPN) -> float:
    """Value of the network with all variables marginalized (the normalizer Z)."""
    return evaluate(spn, {})
