"""Exact evaluation of SPNs (reference implementation).

These routines are the functional ground truth that every execution backend
in the repository (operation lists, the vectorized tape of
:mod:`repro.spn.compiled`, the GPU kernel model, the custom processor
simulator) is checked against.

Evidence is a mapping ``{variable_index: value}``; variables that are not
present are marginalized out, i.e. all of their indicator leaves evaluate to
one.  Batched evaluation takes an integer array using the
:data:`MARGINALIZED` sentinel — see its docstring for the canonical
definition of the convention.

Batched entry points accept an ``engine`` argument: ``"python"`` selects the
per-node reference walk implemented here, ``"vectorized"`` routes through
the compiled NumPy tape (:func:`repro.spn.compiled.compile_tape`).  Passing
``check=True`` with the vectorized engine cross-checks the result against
the reference on a small prefix of the batch and raises
:class:`~repro.spn.compiled.EngineMismatchError` on disagreement.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

import numpy as np

from .graph import SPN
from .nodes import IndicatorLeaf, ParameterLeaf, ProductNode, SumNode

__all__ = [
    "MARGINALIZED",
    "as_evidence_array",
    "row_evidence",
    "evaluate",
    "evaluate_log",
    "evaluate_batch",
    "evaluate_log_batch",
    "evaluate_nodes",
    "partition_function",
]

#: Canonical evidence convention for batched evaluation, shared by every
#: engine and backend in the repository: evidence batches are integer arrays
#: of shape ``(n_rows, n_vars)`` where column ``v`` holds the observed value
#: of variable ``v`` and the sentinel ``MARGINALIZED`` (``-1``, like any
#: other negative value) marks an unobserved variable (all of its indicator
#: leaves evaluate to one).  Variables whose index exceeds the number of
#: columns are likewise treated as unobserved.  Dictionary-style evidence
#: (``{var: value}``) expresses the same convention by omission: absent
#: variables are marginalized, and a negative value is equivalent to
#: absence.  Every engine — the reference walks here, the compiled tape of
#: :mod:`repro.spn.compiled` and the operation-list executors — implements
#: exactly this interpretation.
#:
#: Evidence arrays are **integer** arrays.  Float arrays are accepted only
#: when every entry is integral (a common artifact of ``np.loadtxt`` or
#: pandas round-trips): they are coerced exactly via
#: :func:`as_evidence_array`.  Fractional, NaN or infinite entries are
#: rejected with a ``ValueError`` — they would otherwise be silently
#: truncated (``0.7`` observed as ``0``) or misread as observed values.
MARGINALIZED = -1


def as_evidence_array(data) -> np.ndarray:
    """Validate an evidence array's dtype and return it as an integer array.

    Integer (and boolean) arrays pass through; float arrays whose every
    entry is integral are coerced exactly to ``int64``.  Anything else —
    fractional values, NaN/inf, or a non-numeric dtype — raises
    ``ValueError`` with a pointer to the :data:`MARGINALIZED` convention,
    instead of being silently truncated downstream.  Every batched evidence
    entry point (:func:`evaluate_batch`, :func:`evaluate_log_batch`, the
    compiled tape's input encoding, the serving layer) routes through this.
    """
    arr = np.asarray(data)
    if arr.dtype.kind == "i":
        return arr
    if arr.dtype.kind == "u":
        # Unsigned values beyond int64 would wrap negative on any int64
        # cast downstream and be misread as MARGINALIZED.
        if (arr >= 2**63).any():
            raise ValueError(
                "unsigned evidence values exceed the int64 range and cannot "
                "be represented exactly"
            )
        return arr
    if arr.dtype.kind == "b":
        return arr.astype(np.int64)
    if arr.dtype.kind == "f":
        rounded = np.rint(arr)
        if not np.isfinite(arr).all() or not (rounded == arr).all():
            raise ValueError(
                "float evidence must be integral-valued (use the MARGINALIZED "
                "sentinel -1 for unobserved variables, not NaN); got "
                "fractional or non-finite entries"
            )
        if (np.abs(rounded) >= 2.0**63).any():
            # Would wrap on the int64 cast and be misread as MARGINALIZED.
            raise ValueError(
                "float evidence values exceed the int64 range and cannot be "
                "coerced exactly"
            )
        return rounded.astype(np.int64)
    raise ValueError(
        f"evidence must be an integer array following the MARGINALIZED "
        f"convention, got dtype {arr.dtype}"
    )


def row_evidence(row) -> Dict[int, int]:
    """Decode one batched evidence row into a ``{var: value}`` mapping.

    The single decoder for the :data:`MARGINALIZED` convention: negative
    entries (unobserved) are dropped, everything else becomes an observed
    value keyed by its column index.  The row's dtype is validated by
    :func:`as_evidence_array`, so a float ``0.7`` raises instead of being
    truncated to an observed ``0``.
    """
    return {
        var: int(value) for var, value in enumerate(as_evidence_array(row)) if value >= 0
    }


def _indicator_value(leaf: IndicatorLeaf, evidence: Mapping[int, int]) -> float:
    observed = evidence.get(leaf.var)
    if observed is None or observed < 0:
        return 1.0
    return 1.0 if observed == leaf.value else 0.0


def evaluate_nodes(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> Dict[int, float]:
    """Evaluate every reachable node bottom-up and return ``{node_id: value}``."""
    evidence = evidence or {}
    values: Dict[int, float] = {}
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            values[nid] = _indicator_value(node, evidence)
        elif isinstance(node, ParameterLeaf):
            values[nid] = node.prob
        elif isinstance(node, SumNode):
            if node.is_weighted:
                assert node.weights is not None
                values[nid] = sum(
                    w * values[c] for w, c in zip(node.weights, node.children)
                )
            else:
                values[nid] = sum(values[c] for c in node.children)
        elif isinstance(node, ProductNode):
            acc = 1.0
            for c in node.children:
                acc *= values[c]
            values[nid] = acc
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    return values


def evaluate(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> float:
    """Evaluate the SPN at the root in the linear domain."""
    return evaluate_nodes(spn, evidence)[spn.root]


def evaluate_log(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> float:
    """Evaluate the SPN in the log domain (numerically robust for deep networks).

    Returns ``-inf`` when the evidence has probability zero.
    """
    evidence = evidence or {}
    log_values: Dict[int, float] = {}
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            v = _indicator_value(node, evidence)
            log_values[nid] = 0.0 if v > 0.0 else -math.inf
        elif isinstance(node, ParameterLeaf):
            log_values[nid] = math.log(node.prob) if node.prob > 0.0 else -math.inf
        elif isinstance(node, SumNode):
            children = node.children
            if node.is_weighted:
                assert node.weights is not None
                terms = [
                    (math.log(w) if w > 0.0 else -math.inf) + log_values[c]
                    for w, c in zip(node.weights, children)
                ]
            else:
                terms = [log_values[c] for c in children]
            m = max(terms)
            if m == -math.inf:
                log_values[nid] = -math.inf
            else:
                log_values[nid] = m + math.log(sum(math.exp(t - m) for t in terms))
        elif isinstance(node, ProductNode):
            log_values[nid] = sum(log_values[c] for c in node.children)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    return log_values[spn.root]


def evaluate_batch(
    spn: SPN, data: np.ndarray, engine: str = "python", check: bool = False,
    execution=None,
) -> np.ndarray:
    """Evaluate the SPN on a batch of samples.

    Parameters
    ----------
    data:
        Integer array of shape ``(n_samples, n_vars)`` following the
        :data:`MARGINALIZED` evidence convention.
    engine:
        ``"python"`` (default) walks the node graph with one NumPy operation
        per node — the reference implementation.  ``"vectorized"`` compiles
        the network to a levelized tape (:mod:`repro.spn.compiled`) and
        evaluates the whole batch with a few fused kernels.
    check:
        With the vectorized engine, additionally evaluate the first few rows
        with the reference engine and raise
        :class:`~repro.spn.compiled.EngineMismatchError` on disagreement.
    execution:
        Executor for the vectorized engine — an
        :class:`~repro.spn.memplan.ExecutionOptions` or a bare mode string
        (``"planned"`` default, ``"sharded"``, ``"legacy"``; all
        bit-identical).  Ignored by the python engine.

    Returns
    -------
    numpy.ndarray
        Vector of root values, shape ``(n_samples,)``.
    """
    from .compiled import cached_tape, cross_check, resolve_engine

    if resolve_engine(engine) == "vectorized":
        data = as_evidence_array(data)
        result = cached_tape(spn).execute_batch(data, execution=execution)
        if check:
            cross_check(
                result,
                data,
                lambda head: evaluate_batch(spn, head, engine="python"),
                atol=1e-300,
            )
        return result
    data = as_evidence_array(data)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D evidence array, got shape {data.shape}")
    n_samples, n_cols = data.shape
    values: Dict[int, np.ndarray] = {}
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            if node.var >= n_cols:
                values[nid] = np.ones(n_samples)
            else:
                col = data[:, node.var]
                values[nid] = np.where(
                    (col < 0) | (col == node.value), 1.0, 0.0
                )
        elif isinstance(node, ParameterLeaf):
            values[nid] = np.full(n_samples, node.prob)
        elif isinstance(node, SumNode):
            acc = np.zeros(n_samples)
            if node.is_weighted:
                assert node.weights is not None
                for w, c in zip(node.weights, node.children):
                    acc = acc + w * values[c]
            else:
                for c in node.children:
                    acc = acc + values[c]
            values[nid] = acc
        elif isinstance(node, ProductNode):
            acc = np.ones(n_samples)
            for c in node.children:
                acc = acc * values[c]
            values[nid] = acc
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    return values[spn.root]


def evaluate_log_batch(
    spn: SPN, data: np.ndarray, engine: str = "python", check: bool = False,
    execution=None,
) -> np.ndarray:
    """Log-domain batched evaluation (numerically robust for deep networks).

    The ``"python"`` engine is the reference: it evaluates every row with
    :func:`evaluate_log` (slow, one graph walk per row).  The
    ``"vectorized"`` engine runs the compiled tape in the log domain
    (products add, sums combine with ``logaddexp``).  Rows with zero
    probability return ``-inf``.  ``data`` follows the
    :data:`MARGINALIZED` convention; ``check`` and ``execution`` behave as
    in :func:`evaluate_batch`.
    """
    from .compiled import cached_tape, cross_check, resolve_engine

    data = as_evidence_array(data)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D evidence array, got shape {data.shape}")
    if resolve_engine(engine) == "vectorized":
        result = cached_tape(spn).execute_batch(data, log_domain=True, execution=execution)
        if check:
            cross_check(
                result,
                data,
                lambda head: evaluate_log_batch(spn, head, engine="python"),
                atol=1e-12,
                what="vectorized log engine",
            )
        return result
    out = np.empty(data.shape[0], dtype=np.float64)
    for row in range(data.shape[0]):
        out[row] = evaluate_log(spn, row_evidence(data[row]))
    return out


def partition_function(spn: SPN) -> float:
    """Value of the network with all variables marginalized (the normalizer Z)."""
    return evaluate(spn, {})
