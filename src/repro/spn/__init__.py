"""Sum-product network substrate: data structures, evaluation, lowering, learning."""

from .nodes import (
    IndicatorLeaf,
    LeafNode,
    Node,
    NodeId,
    ParameterLeaf,
    ProductNode,
    SumNode,
    is_internal,
    is_leaf,
)
from .graph import SPN, SPNStats, StructureError
from .evaluate import (
    MARGINALIZED,
    evaluate,
    evaluate_batch,
    evaluate_log,
    evaluate_nodes,
    partition_function,
)
from .linearize import (
    OP_ADD,
    OP_MUL,
    InputSlot,
    Operation,
    OperationList,
    VectorProgram,
    linearize,
)
from .generate import (
    GeneratorConfig,
    RatSpnConfig,
    generate_rat_spn,
    generate_spn,
    random_evidence,
)
from .learn import LearnConfig, learn_spn, pairwise_mutual_information
from .datasets import DatasetSpec, generate_dataset, train_test_split
from .queries import (
    conditional,
    log_likelihood,
    log_marginal,
    marginal,
    most_probable_explanation,
)
from . import io

__all__ = [
    "SPN",
    "SPNStats",
    "StructureError",
    "Node",
    "NodeId",
    "LeafNode",
    "IndicatorLeaf",
    "ParameterLeaf",
    "SumNode",
    "ProductNode",
    "is_leaf",
    "is_internal",
    "MARGINALIZED",
    "evaluate",
    "evaluate_log",
    "evaluate_batch",
    "evaluate_nodes",
    "partition_function",
    "OP_ADD",
    "OP_MUL",
    "InputSlot",
    "Operation",
    "OperationList",
    "VectorProgram",
    "linearize",
    "GeneratorConfig",
    "RatSpnConfig",
    "generate_spn",
    "generate_rat_spn",
    "random_evidence",
    "LearnConfig",
    "learn_spn",
    "pairwise_mutual_information",
    "DatasetSpec",
    "generate_dataset",
    "train_test_split",
    "conditional",
    "log_likelihood",
    "log_marginal",
    "marginal",
    "most_probable_explanation",
    "io",
]
