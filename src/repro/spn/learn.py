"""A LearnSPN-style structure learner for binary data.

The paper trains its benchmark SPNs with LearnPSDD [5]; that toolchain is not
available offline, so this module provides the closest classical equivalent —
the recursive LearnSPN scheme (Gens & Domingos, 2013):

* if the variables of the current slice can be partitioned into groups that
  are (approximately) mutually independent, emit a **product** node over the
  groups;
* otherwise cluster the *instances* and emit a weighted **sum** node over the
  clusters;
* single-variable slices become smoothed Bernoulli leaf mixtures.

The resulting networks are smooth and decomposable by construction and have
the irregular, data-dependent shape that makes SPN inference hard to
parallelize — which is the property the paper's evaluation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .graph import SPN
from .nodes import normalized_weights

__all__ = ["LearnConfig", "learn_spn", "pairwise_mutual_information"]


@dataclass(frozen=True)
class LearnConfig:
    """Hyper-parameters of :func:`learn_spn`.

    Attributes
    ----------
    independence_threshold:
        Mutual-information threshold (in nats) below which two variables are
        considered independent when building the variable-dependency graph.
    min_instances:
        Slices with fewer rows than this are fully factorized.
    n_clusters:
        Number of instance clusters tried at every sum split.
    smoothing:
        Laplace smoothing count for leaf probabilities.
    max_depth:
        Safety bound on the recursion depth.
    seed:
        PRNG seed for the clustering step.
    """

    independence_threshold: float = 0.02
    min_instances: int = 32
    n_clusters: int = 2
    smoothing: float = 1.0
    max_depth: int = 64
    seed: int = 0

    def as_dict(self) -> dict:
        """JSON-compatible form, used for artifact provenance and cache keys."""
        return {
            "independence_threshold": self.independence_threshold,
            "min_instances": self.min_instances,
            "n_clusters": self.n_clusters,
            "smoothing": self.smoothing,
            "max_depth": self.max_depth,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LearnConfig":
        """Rebuild from :meth:`as_dict` output (unknown keys rejected)."""
        known = {
            "independence_threshold": float,
            "min_instances": int,
            "n_clusters": int,
            "smoothing": float,
            "max_depth": int,
            "seed": int,
        }
        unknown = set(payload) - set(known)
        if unknown:
            raise ValueError(f"unknown LearnConfig fields: {sorted(unknown)}")
        return cls(**{key: known[key](value) for key, value in payload.items()})


def pairwise_mutual_information(data: np.ndarray, smoothing: float = 1.0) -> np.ndarray:
    """Empirical pairwise mutual information matrix for binary data.

    Returns a symmetric ``(n_vars, n_vars)`` array in nats with zero diagonal.
    """
    data = np.asarray(data)
    n_rows, n_vars = data.shape
    mi = np.zeros((n_vars, n_vars))
    # Marginal probabilities with Laplace smoothing.
    p1 = (data.sum(axis=0) + smoothing) / (n_rows + 2.0 * smoothing)
    for i in range(n_vars):
        for j in range(i + 1, n_vars):
            joint = np.zeros((2, 2))
            for a in (0, 1):
                for b in (0, 1):
                    joint[a, b] = np.sum((data[:, i] == a) & (data[:, j] == b))
            joint = (joint + smoothing) / (n_rows + 4.0 * smoothing)
            pi = np.array([1.0 - p1[i], p1[i]])
            pj = np.array([1.0 - p1[j], p1[j]])
            value = 0.0
            for a in (0, 1):
                for b in (0, 1):
                    value += joint[a, b] * np.log(joint[a, b] / (pi[a] * pj[b]))
            mi[i, j] = mi[j, i] = max(0.0, value)
    return mi


def _independent_components(
    data: np.ndarray, variables: Sequence[int], config: LearnConfig
) -> List[List[int]]:
    """Partition ``variables`` into groups connected by significant MI."""
    local = data[:, variables]
    mi = pairwise_mutual_information(local, smoothing=config.smoothing)
    n = len(variables)
    # Union-find over local indices.
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for i in range(n):
        for j in range(i + 1, n):
            if mi[i, j] > config.independence_threshold:
                union(i, j)

    groups: dict = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(variables[i])
    return list(groups.values())


def _cluster_rows(
    data: np.ndarray, config: LearnConfig, rng: np.random.Generator
) -> List[np.ndarray]:
    """Split rows into up to ``n_clusters`` groups with a tiny k-means on binary rows."""
    n_rows = data.shape[0]
    k = min(config.n_clusters, n_rows)
    if k <= 1:
        return [np.arange(n_rows)]
    # Initialize centroids from random distinct rows.
    centroid_rows = rng.choice(n_rows, size=k, replace=False)
    centroids = data[centroid_rows].astype(np.float64)
    assignment = np.zeros(n_rows, dtype=np.int64)
    for _ in range(10):
        distances = np.stack(
            [np.abs(data - centroids[c]).sum(axis=1) for c in range(k)], axis=1
        )
        new_assignment = distances.argmin(axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for c in range(k):
            members = data[assignment == c]
            if members.shape[0] > 0:
                centroids[c] = members.mean(axis=0)
    clusters = [np.flatnonzero(assignment == c) for c in range(k)]
    clusters = [c for c in clusters if c.size > 0]
    if len(clusters) <= 1:
        # Degenerate clustering: fall back to a random halving so the
        # recursion still makes progress.
        permuted = rng.permutation(n_rows)
        half = max(1, n_rows // 2)
        clusters = [permuted[:half], permuted[half:]]
        clusters = [c for c in clusters if c.size > 0]
    return clusters


class _Learner:
    def __init__(self, data: np.ndarray, config: LearnConfig) -> None:
        self._data = np.asarray(data, dtype=np.int64)
        if self._data.ndim != 2:
            raise ValueError("data must be a 2-D array of shape (rows, vars)")
        if not np.isin(self._data, (0, 1)).all():
            raise ValueError("learn_spn expects binary data with values in {0, 1}")
        self._config = config
        self._rng = np.random.default_rng(config.seed)
        self._spn = SPN()
        self._indicators: dict = {}

    def _indicator(self, var: int, value: int) -> int:
        key = (var, value)
        if key not in self._indicators:
            self._indicators[key] = self._spn.add_indicator(var, value)
        return self._indicators[key]

    def _leaf(self, rows: np.ndarray, var: int) -> int:
        cfg = self._config
        column = self._data[np.ix_(rows, [var])].ravel()
        p_true = (column.sum() + cfg.smoothing) / (column.shape[0] + 2.0 * cfg.smoothing)
        i0 = self._indicator(var, 0)
        i1 = self._indicator(var, 1)
        return self._spn.add_sum([i0, i1], weights=[1.0 - p_true, p_true])

    def _factorize(self, rows: np.ndarray, variables: Sequence[int]) -> int:
        leaves = [self._leaf(rows, v) for v in variables]
        if len(leaves) == 1:
            return leaves[0]
        return self._spn.add_product(leaves)

    def _learn(self, rows: np.ndarray, variables: Sequence[int], depth: int) -> int:
        cfg = self._config
        if len(variables) == 1:
            return self._leaf(rows, variables[0])
        if rows.shape[0] < cfg.min_instances or depth >= cfg.max_depth:
            return self._factorize(rows, variables)

        groups = _independent_components(self._data[rows], list(variables), cfg)
        if len(groups) > 1:
            children = [self._learn(rows, tuple(g), depth + 1) for g in groups]
            return self._spn.add_product(children)

        clusters = _cluster_rows(self._data[np.ix_(rows, list(variables))], cfg, self._rng)
        if len(clusters) <= 1:
            return self._factorize(rows, variables)
        children = []
        weights = []
        for cluster in clusters:
            child_rows = rows[cluster]
            children.append(self._learn(child_rows, variables, depth + 1))
            weights.append(float(cluster.size))
        return self._spn.add_sum(children, weights=normalized_weights(weights))

    def run(self) -> SPN:
        rows = np.arange(self._data.shape[0])
        variables = tuple(range(self._data.shape[1]))
        root = self._learn(rows, variables, depth=0)
        self._spn.set_root(root)
        return self._spn


def learn_spn(data: np.ndarray, config: LearnConfig | None = None) -> SPN:
    """Learn an SPN structure and parameters from binary data.

    The returned network is smooth and decomposable and normalized (its
    partition function is 1 up to floating-point error).
    """
    spn = _Learner(data, config or LearnConfig()).run()
    spn.check_valid()
    return spn
