"""Scalar probabilistic queries — deprecated wrappers over the typed API.

These are the original dict-based, one-answer-at-a-time entry points for
marginals, conditionals and MPE.  Since the unified typed query API landed
(:mod:`repro.api`), every one of them is a thin wrapper over a single-row
:class:`~repro.api.session.InferenceSession` — the same planning and the
same vectorized tape passes a batched caller gets — so the scalar and
batched paths cannot drift.  New code should construct query objects
directly::

    from repro.api import Conditional, InferenceSession

    session = InferenceSession(spn)
    probs = session.run(Conditional(query=q_rows, evidence=e_rows))

The wrappers emit :class:`DeprecationWarning` (hidden by default; enable
with ``-W default::DeprecationWarning``).  They remain exact: each one is
*defined* as single-row session execution, and the property tests assert
bit-equality between the two.

A note on :func:`conditional`: it now computes in the log domain
(``exp(log P(q, e) - log P(e))``), so evidence whose linear-domain
probability merely *underflows* no longer raises a spurious
``ZeroDivisionError`` — only evidence with probability exactly zero does.

:func:`mpe_row` is not deprecated: it is the per-row MPE engine the session
itself executes (exact by enumeration for small free state spaces,
max-product with optional coordinate-ascent refinement otherwise).
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, Mapping, Optional

from .evaluate import evaluate_log
from .graph import SPN
from .nodes import IndicatorLeaf, ParameterLeaf, ProductNode, SumNode

__all__ = [
    "marginal",
    "log_marginal",
    "conditional",
    "log_likelihood",
    "most_probable_explanation",
    "mpe_row",
]


def _session(spn: SPN):
    from ..api.session import session_for

    return session_for(spn)


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.spn.queries.{name}() is deprecated; issue typed queries "
        f"through repro.api.InferenceSession instead",
        DeprecationWarning,
        stacklevel=3,
    )


def marginal(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> float:
    """Unnormalized marginal probability of the evidence, P(e) * Z.

    For normalized networks (partition function 1) this is exactly P(e).

    .. deprecated:: Use ``InferenceSession(spn).run(Marginal(evidence))``.
    """
    from ..api import Marginal

    _deprecated("marginal")
    return float(_session(spn).run(Marginal(dict(evidence or {})))[0])


def log_marginal(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> float:
    """Log-domain version of :func:`marginal`.

    .. deprecated:: Use ``InferenceSession(spn).run(Marginal(evidence, log=True))``.
    """
    from ..api import Marginal

    _deprecated("log_marginal")
    return float(_session(spn).run(Marginal(dict(evidence or {}), log=True))[0])


def conditional(
    spn: SPN, query: Mapping[int, int], evidence: Optional[Mapping[int, int]] = None
) -> float:
    """Conditional probability P(query | evidence), computed in the log domain.

    ``query`` and ``evidence`` must not assign conflicting values to the
    same variable.  Raises ``ZeroDivisionError`` only when the evidence has
    probability exactly zero — deep networks whose evidence probability
    underflows the linear domain are handled exactly (the session plans a
    conditional as two log-domain tape passes, subtracted).

    .. deprecated:: Use
       ``InferenceSession(spn).run(Conditional(query=..., evidence=...))``.
    """
    from ..api import Conditional

    _deprecated("conditional")
    result = _session(spn).run(
        Conditional(evidence=dict(evidence or {}), query=dict(query))
    )
    value = float(result[0])
    if math.isnan(value):
        raise ZeroDivisionError("evidence has probability zero")
    return value


def log_likelihood(spn: SPN, data, normalize: bool = True) -> float:
    """Average log-likelihood of observed rows in ``data``.

    ``data`` is an integer array of shape ``(n_rows, n_vars)`` following
    the :data:`~repro.spn.evaluate.MARGINALIZED` convention.  When
    ``normalize`` is true the partition function is subtracted so the
    result is a proper average log-probability even for unnormalized
    networks.  Executes as one batched log-domain pass (plus the session's
    cached partition pass), not a per-row walk.

    .. deprecated:: Use
       ``InferenceSession(spn).run(Marginal(data, log=True, normalize=True))``
       and average.
    """
    import numpy as np

    from ..api import LogLikelihood

    _deprecated("log_likelihood")
    rows = np.asarray(data)
    if rows.ndim == 0 or rows.shape[0] == 0:
        # Checked on the raw input's row count: an empty list would
        # otherwise normalize to one fully-marginalized (1, 0) row and
        # "score" 0.0.  A zero-column batch with rows is fine (every row
        # fully marginalized), matching the historical behavior.
        raise ValueError("data must contain at least one row")
    session = _session(spn)
    values = session.run(LogLikelihood(data))
    log_z = session.log_partition() if normalize else 0.0
    return float(values.mean() - log_z)


def most_probable_explanation(
    spn: SPN, evidence: Optional[Mapping[int, int]] = None, refine: bool = True
) -> Dict[int, int]:
    """MPE assignment completing ``evidence`` (see :func:`mpe_row`).

    .. deprecated:: Use ``InferenceSession(spn).run(MPE(evidence))``.
    """
    from ..api import MPE

    _deprecated("most_probable_explanation")
    return _session(spn).run(MPE(dict(evidence or {}), refine=refine))[0]


#: Exhaustive-search budget for :func:`mpe_row`: when the free variables
#: span at most this many joint assignments, the exact MPE is found by
#: enumerating them all through the vectorized batch engine.
_MPE_EXACT_BUDGET = 4096


def mpe_row(
    spn: SPN, evidence: Optional[Mapping[int, int]] = None, refine: bool = True
) -> Dict[int, int]:
    """MPE assignment: exact for small state spaces, max-product otherwise.

    This is the per-row engine behind the :class:`repro.api.MPE` query
    kind.  When the variables left free by the evidence span at most
    :data:`_MPE_EXACT_BUDGET` joint assignments, the exact MPE is computed
    by evaluating every assignment in one log-domain batch with the
    vectorized engine (:func:`~repro.spn.evaluate.evaluate_log_batch`).
    Larger networks fall back
    to the standard max-product approximation: the upper pass replaces every
    sum with a (weighted) max; the downward pass follows, at every sum node,
    the child that achieved the max, and at every product node all children.
    Variables fixed by the evidence keep their observed value.  For
    selective networks max-product is the exact MPE; for general SPNs it is
    an approximation, so with ``refine`` (the default) the traced assignment
    is additionally polished by coordinate ascent over the free variables
    until it is a local maximum under single-variable flips.
    """
    evidence = dict(evidence or {})
    fixed = {var for var, value in evidence.items() if value >= 0}
    domains = _indicator_domains(spn)
    free = sorted(var for var in domains if var not in fixed and len(domains[var]) > 1)
    n_assignments = 1
    for var in free:
        n_assignments *= len(domains[var])
        if n_assignments > _MPE_EXACT_BUDGET:
            break
    if n_assignments <= _MPE_EXACT_BUDGET:
        return _exact_mpe(spn, evidence, domains, free)
    max_log: Dict[int, float] = {}
    best_child: Dict[int, int] = {}

    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            observed = evidence.get(node.var)
            if observed is None or observed < 0 or observed == node.value:
                max_log[nid] = 0.0
            else:
                max_log[nid] = -math.inf
        elif isinstance(node, ParameterLeaf):
            max_log[nid] = math.log(node.prob) if node.prob > 0.0 else -math.inf
        elif isinstance(node, SumNode):
            best_value = -math.inf
            best = node.children[0]
            weights = node.weights if node.is_weighted else [1.0] * len(node.children)
            assert weights is not None
            for w, c in zip(weights, node.children):
                term = (math.log(w) if w > 0.0 else -math.inf) + max_log[c]
                if term > best_value:
                    best_value = term
                    best = c
            max_log[nid] = best_value
            best_child[nid] = best
        elif isinstance(node, ProductNode):
            max_log[nid] = sum(max_log[c] for c in node.children)

    assignment: Dict[int, int] = dict(evidence)
    stack = [spn.root]
    visited = set()
    while stack:
        nid = stack.pop()
        if nid in visited:
            continue
        visited.add(nid)
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            if node.var not in assignment or assignment[node.var] < 0:
                assignment[node.var] = node.value
        elif isinstance(node, SumNode):
            stack.append(best_child[nid])
        elif isinstance(node, ProductNode):
            stack.extend(node.children)
    # Drop any marginalization sentinels that leaked in from the evidence.
    assignment = {var: value for var, value in assignment.items() if value >= 0}
    if refine:
        assignment = _refine_assignment(spn, assignment, fixed, domains)
    return assignment


def _indicator_domains(spn: SPN) -> Dict[int, set]:
    """Per-variable value domains, collected from the indicator leaves."""
    domains: Dict[int, set] = {}
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            domains.setdefault(node.var, set()).add(node.value)
    return domains


def _exact_mpe(
    spn: SPN,
    evidence: Dict[int, int],
    domains: Mapping[int, set],
    free: list,
) -> Dict[int, int]:
    """Exact MPE by exhaustive enumeration over the free variables.

    All joint assignments of ``free`` are laid out as one evidence batch
    (following the :data:`~repro.spn.evaluate.MARGINALIZED` convention) and
    evaluated in a single vectorized log-domain pass — log domain so that
    deep networks whose joint probabilities underflow to 0.0 in the linear
    domain still rank correctly; the argmax row wins.
    """
    import itertools

    import numpy as np

    from .evaluate import MARGINALIZED, evaluate_log_batch

    base = {var: value for var, value in evidence.items() if value >= 0}
    for var in domains:
        if var not in base and var not in free:
            base[var] = min(domains[var])  # single-value domain
    n_cols = max(*domains, *base, -1) + 1 if (domains or base) else 0
    combos = list(itertools.product(*(sorted(domains[var]) for var in free)))
    data = np.full((len(combos), max(n_cols, 1)), MARGINALIZED, dtype=np.int64)
    for var, value in base.items():
        data[:, var] = value
    for j, var in enumerate(free):
        data[:, var] = [combo[j] for combo in combos]
    values = evaluate_log_batch(spn, data, engine="vectorized")
    best = dict(base)
    best.update(zip(free, combos[int(np.argmax(values))]))
    return best


def _refine_assignment(
    spn: SPN, assignment: Dict[int, int], fixed: set, domains: Mapping[int, set]
) -> Dict[int, int]:
    """Steepest-ascent coordinate refinement of an MPE candidate.

    Each round lays out every single-variable flip of the current assignment
    (over the free variables' indicator domains) as one evidence batch,
    scores them all with a single vectorized log-domain evaluation, and
    applies the best strictly-improving flip; the loop stops when no flip
    improves, i.e. the assignment is a local maximum under single-variable
    flips.
    """
    import numpy as np

    from .evaluate import MARGINALIZED, evaluate_log_batch

    free = [var for var in assignment if var not in fixed and len(domains.get(var, ())) > 1]
    if not free:
        return assignment

    best = dict(assignment)
    best_log = evaluate_log(spn, best)
    n_cols = max(max(best, default=-1), max(domains, default=-1)) + 1
    while True:
        flips = [
            (var, value)
            for var in free
            for value in sorted(domains[var])
            if value != best[var]
        ]
        if not flips:
            return best
        data = np.full((len(flips), max(n_cols, 1)), MARGINALIZED, dtype=np.int64)
        for var, value in best.items():
            data[:, var] = value
        for row, (var, value) in enumerate(flips):
            data[row, var] = value
        scores = evaluate_log_batch(spn, data, engine="vectorized")
        top = int(np.argmax(scores))
        if not scores[top] > best_log:
            return best
        var, value = flips[top]
        best[var] = value
        best_log = float(scores[top])
