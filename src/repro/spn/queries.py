"""Probabilistic queries on SPNs: marginals, conditionals and MPE.

These are the inference primitives a downstream user of the processor would
actually issue; all of them reduce to (repeated) bottom-up evaluations of the
network, which is exactly the kernel the paper accelerates.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from .evaluate import evaluate, evaluate_log
from .graph import SPN
from .nodes import IndicatorLeaf, ParameterLeaf, ProductNode, SumNode

__all__ = [
    "marginal",
    "log_marginal",
    "conditional",
    "log_likelihood",
    "most_probable_explanation",
]


def marginal(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> float:
    """Unnormalized marginal probability of the evidence, P(e) * Z.

    For normalized networks (partition function 1) this is exactly P(e).
    """
    return evaluate(spn, evidence)


def log_marginal(spn: SPN, evidence: Optional[Mapping[int, int]] = None) -> float:
    """Log-domain version of :func:`marginal`."""
    return evaluate_log(spn, evidence)


def conditional(
    spn: SPN, query: Mapping[int, int], evidence: Optional[Mapping[int, int]] = None
) -> float:
    """Conditional probability P(query | evidence).

    ``query`` and ``evidence`` must not assign conflicting values to the same
    variable.
    """
    evidence = dict(evidence or {})
    for var, value in query.items():
        if var in evidence and evidence[var] != value:
            raise ValueError(f"query and evidence disagree on variable {var}")
    joint = dict(evidence)
    joint.update(query)
    denominator = marginal(spn, evidence)
    if denominator == 0.0:
        raise ZeroDivisionError("evidence has probability zero")
    return marginal(spn, joint) / denominator


def log_likelihood(spn: SPN, data, normalize: bool = True) -> float:
    """Average log-likelihood of fully observed rows in ``data``.

    ``data`` is an integer array of shape ``(n_rows, n_vars)``.  When
    ``normalize`` is true the partition function is subtracted so the result
    is a proper average log-probability even for unnormalized networks.
    """
    rows = [dict(enumerate(int(v) for v in row)) for row in data]
    if not rows:
        raise ValueError("data must contain at least one row")
    log_z = evaluate_log(spn, {}) if normalize else 0.0
    total = 0.0
    for row in rows:
        total += evaluate_log(spn, row) - log_z
    return total / len(rows)


def most_probable_explanation(
    spn: SPN, evidence: Optional[Mapping[int, int]] = None
) -> Dict[int, int]:
    """Approximate MPE assignment via the standard max-product upper pass.

    The upper pass replaces every sum with a (weighted) max; the downward
    pass follows, at every sum node, the child that achieved the max, and at
    every product node all children.  Variables fixed by the evidence keep
    their observed value.  For selective networks this is the exact MPE; for
    general SPNs it is the usual MPE approximation.
    """
    evidence = dict(evidence or {})
    max_log: Dict[int, float] = {}
    best_child: Dict[int, int] = {}

    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            observed = evidence.get(node.var)
            if observed is None or observed < 0 or observed == node.value:
                max_log[nid] = 0.0
            else:
                max_log[nid] = -math.inf
        elif isinstance(node, ParameterLeaf):
            max_log[nid] = math.log(node.prob) if node.prob > 0.0 else -math.inf
        elif isinstance(node, SumNode):
            best_value = -math.inf
            best = node.children[0]
            weights = node.weights if node.is_weighted else [1.0] * len(node.children)
            assert weights is not None
            for w, c in zip(weights, node.children):
                term = (math.log(w) if w > 0.0 else -math.inf) + max_log[c]
                if term > best_value:
                    best_value = term
                    best = c
            max_log[nid] = best_value
            best_child[nid] = best
        elif isinstance(node, ProductNode):
            max_log[nid] = sum(max_log[c] for c in node.children)

    assignment: Dict[int, int] = dict(evidence)
    stack = [spn.root]
    visited = set()
    while stack:
        nid = stack.pop()
        if nid in visited:
            continue
        visited.add(nid)
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            if node.var not in assignment or assignment[node.var] < 0:
                assignment[node.var] = node.value
        elif isinstance(node, SumNode):
            stack.append(best_child[nid])
        elif isinstance(node, ProductNode):
            stack.extend(node.children)
    # Drop any marginalization sentinels that leaked in from the evidence.
    return {var: value for var, value in assignment.items() if value >= 0}
