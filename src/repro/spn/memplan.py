"""Memory planning for compiled tapes: liveness-based slot reuse and fusion.

The source paper's central observation is that SPN inference is
*memory-bound*: throughput on every platform is set by how much live state
the evaluation has to keep close to the arithmetic units, not by the
arithmetic itself.  The legacy executor of :mod:`repro.spn.compiled`
ignores that lesson on the software side — it materializes one row per tape
slot, so the working set of a batch grows with the *length* of the tape
(``n_slots``) even though only a small band of values is ever live at once.

This module plans the tape's memory the way a register allocator plans
registers:

* :func:`plan_memory` runs a **liveness analysis** over the levelized
  kernel list and performs linear-scan style *interval allocation*: every
  tape slot is assigned a reusable **physical row** of a buffer whose
  height is the liveness peak (plus possible fragmentation), typically a
  small multiple of the tape's width instead of its length.  Inputs are
  encoded **lazily** — an indicator or constant row is materialized at the
  kernel that first reads it and freed after its last read — which is what
  shrinks the peak below ``n_inputs`` (on the deep suite networks most of
  the input vector is weight slots consumed at a single sum level).
* An optional **fusion** pass merges runs of adjacent narrow kernels with
  the same opcode into one gather/compute call when they are provably
  independent, cutting Python dispatch on the deep, narrow tapes the suite
  profiles produce (one kernel per level pair means depth ~ dispatch
  count).
* :func:`execute_plan` executes a planned tape over a row block, reusing a
  per-thread scratch buffer (``plan.workspace``), and
  :func:`execute_sharded` splits very large batches into row shards run on
  a shared thread pool — the NumPy reduction kernels release the GIL, so
  shards overlap on multicore hosts.

Every physical-slot program computes exactly the same elementwise
operations in exactly the same order as the legacy executor, so planned
(and sharded) results are **bit-identical** to the legacy ``(n_slots,
n_rows)`` matrix; :func:`verify_plan` checks that slot by slot and backs
the ``check=True`` switch of :meth:`CompiledTape.execute_batch`.

The executor knob is :class:`ExecutionOptions` (``mode``:
``"planned"`` (default) | ``"sharded"`` | ``"legacy"``), accepted — as an
options object or a bare mode string — by every batched entry point from
:meth:`CompiledTape.execute_batch` up through
:class:`repro.api.session.InferenceSession` and the serving layer.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .graph import StructureError
from .linearize import OP_ADD, OP_MUL

__all__ = [
    "EXECUTION_MODES",
    "DEFAULT_FUSE_WIDTH",
    "ExecutionOptions",
    "resolve_execution",
    "InputEncoding",
    "PlannedKernel",
    "MemoryPlan",
    "plan_memory",
    "plan_to_payload",
    "plan_from_payload",
    "execute_plan",
    "execute_sharded",
    "verify_plan",
]

#: Modes accepted by every ``execution=`` switch in the repository.
EXECUTION_MODES = ("planned", "sharded", "legacy")

#: Default cap on the combined width of a fused kernel.  Fusion trades a
#: strided operand view for a gather copy, which only pays off while the
#: per-call dispatch overhead dominates the per-element work.
DEFAULT_FUSE_WIDTH = 128

#: Minimum rows per shard; below this the dispatch overhead of an extra
#: thread outweighs the overlapped compute.
DEFAULT_MIN_SHARD_ROWS = 512


@dataclass(frozen=True)
class ExecutionOptions:
    """How a compiled tape executes a batch.

    ``mode`` selects the executor: ``"planned"`` (default) runs the
    memory-planned physical-slot program, ``"sharded"`` additionally splits
    large batches into row shards on a thread pool, ``"legacy"`` keeps the
    original dense ``(n_slots, n_rows)`` slot matrix.  ``threads`` sizes the
    shard pool (``0``: one per CPU); ``min_shard_rows`` keeps small batches
    on one thread.  ``fuse``/``fuse_width`` control the kernel-fusion pass
    of the planner.  All executors are bit-identical; the knob only chooses
    memory layout and parallelism.
    """

    mode: str = "planned"
    threads: int = 0
    min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS
    fuse: bool = True
    fuse_width: int = DEFAULT_FUSE_WIDTH
    #: Cross-check planned/sharded execution bit-exactly against the legacy
    #: slot matrix on a batch prefix (:func:`verify_plan`) on every call.
    check: bool = False

    def __post_init__(self) -> None:
        if self.mode not in EXECUTION_MODES:
            known = ", ".join(repr(m) for m in EXECUTION_MODES)
            raise ValueError(
                f"unknown execution mode {self.mode!r}; expected one of {known}"
            )
        if self.threads < 0:
            raise ValueError(f"threads must be >= 0, got {self.threads}")
        if self.min_shard_rows < 1:
            raise ValueError(
                f"min_shard_rows must be >= 1, got {self.min_shard_rows}"
            )

    @property
    def n_threads(self) -> int:
        """Effective shard-pool size (``threads`` or the host's CPU count)."""
        return self.threads if self.threads > 0 else (os.cpu_count() or 1)


#: The repository-wide default: memory-planned execution, auto-sized pool.
DEFAULT_EXECUTION = ExecutionOptions()


def resolve_execution(
    execution: Union[ExecutionOptions, str, None],
) -> ExecutionOptions:
    """Normalize an ``execution=`` argument to an :class:`ExecutionOptions`.

    Accepts ``None`` (the repository default, planned execution), a bare
    mode string (``"planned"``/``"sharded"``/``"legacy"``) or an options
    object, mirroring how ``resolve_engine`` validates engine names.
    """
    if execution is None:
        return DEFAULT_EXECUTION
    if isinstance(execution, ExecutionOptions):
        return execution
    if isinstance(execution, str):
        return replace(DEFAULT_EXECUTION, mode=execution)
    raise TypeError(
        f"execution must be an ExecutionOptions, a mode string or None, "
        f"got {type(execution).__name__}"
    )


# --------------------------------------------------------------------------- #
# Planned program representation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class InputEncoding:
    """Input rows to materialize immediately before one planned kernel.

    Lazy counterpart of ``CompiledTape.input_matrix``: ``ind_*`` describe
    the indicator rows first read by the kernel (physical row, variable,
    matching value), ``const_*`` the parameter/weight rows (physical row,
    linear probability, precomputed log).  Row index arrays collapse to
    slices when contiguous, so the common case is a plain slice store.
    """

    ind_rows: np.ndarray
    ind_vars: np.ndarray
    ind_values: np.ndarray
    ind_slice: Optional[slice]
    const_rows: np.ndarray
    const_probs: np.ndarray
    const_log_probs: np.ndarray
    const_slice: Optional[slice]


@dataclass(frozen=True)
class PlannedKernel:
    """One fused array operation over physical rows.

    ``dest`` is always a contiguous physical interval (the allocator hands
    every kernel one); ``arg0``/``arg1`` are physical row indices with
    ``arg0_slice``/``arg1_slice`` carrying the copy-free view when the
    pattern is a constant positive stride.  ``encode`` lists the input rows
    that become live at this kernel (lazy input materialization).

    When an operand consists *entirely* of constant input slots read only
    by this kernel — the ``weight * child`` lanes of every weighted sum —
    the planner never materializes those rows at all: ``const_arg0`` /
    ``const_arg1`` carry the values as a ``(width, 1)`` column that NumPy
    broadcasts across the batch, eliminating one full operand's worth of
    buffer traffic per lane.
    """

    op: str
    dest_start: int
    dest_stop: int
    arg0: np.ndarray
    arg1: np.ndarray
    arg0_slice: Optional[slice]
    arg1_slice: Optional[slice]
    encode: Optional[InputEncoding]
    const_arg0: Optional[np.ndarray] = None
    const_arg0_log: Optional[np.ndarray] = None
    const_arg1: Optional[np.ndarray] = None
    const_arg1_log: Optional[np.ndarray] = None
    #: Source tape slots written by this kernel, in dest order (used by
    #: :func:`verify_plan` to compare against the legacy slot matrix).
    source_slots: np.ndarray = field(repr=False, default=None)

    @property
    def width(self) -> int:
        return self.dest_stop - self.dest_start

    @property
    def is_add(self) -> bool:
        return self.op == OP_ADD


@dataclass
class MemoryPlan:
    """A compiled tape rewritten over a reusable physical slot buffer.

    ``n_physical`` is the buffer height actually needed (the allocator's
    address high-water mark) and :attr:`max_live` the true liveness peak —
    the maximum number of rows simultaneously live across any kernel
    boundary.  ``n_physical >= max_live`` always, with equality when
    interval allocation suffers no fragmentation; both are bounded by the
    source tape's ``n_slots``, and the ratio ``n_slots / n_physical`` is
    the working-set reduction the plan buys.
    """

    kernels: List[PlannedKernel]
    n_physical: int
    max_live: int
    n_slots: int
    n_inputs: int
    root_phys: int
    #: True when the final kernel's sole dest row is the root: the executor
    #: then writes the root directly into the caller's output vector
    #: instead of copying it out of the buffer afterwards.
    root_direct: bool
    n_source_kernels: int
    fused: bool

    def __post_init__(self) -> None:
        self._scratch = threading.local()
        # Concatenated kernel metadata, derived once per construction the
        # way ``CompiledTape.__post_init__`` derives its input-slot vectors:
        # every way a plan comes to exist (planner or payload loader) runs
        # this constructor, so a consumer reading these trusts only this
        # code, never a shipped artifact section.  The static verifier
        # (``repro.statics.verifier``) reads them instead of re-walking the
        # kernel list on every verification.
        kernels = self.kernels
        n_kernels = len(kernels)
        meta = np.fromiter(
            (
                (
                    k.dest_start,
                    k.dest_stop,
                    k.op == OP_MUL,
                    k.op == OP_ADD,
                    -1 if k.source_slots is None else k.source_slots.size,
                    k.const_arg0 is not None,
                    k.const_arg1 is not None,
                    k.encode is not None,
                )
                for k in kernels
            ),
            dtype=[
                ("start", np.int64),
                ("stop", np.int64),
                ("mul", bool),
                ("add", bool),
                ("src", np.int64),
                ("c0", bool),
                ("c1", bool),
                ("enc", bool),
            ],
            count=n_kernels,
        )
        self._kernel_meta = meta
        self._all_source_slots = (
            np.concatenate([k.source_slots for k in kernels])
            if n_kernels and bool((meta["src"] >= 0).all())
            else None
        )
        # Encode records: per-group id vectors plus the concatenated row,
        # signature and (view, rows) consistency pairs.
        enc_groups: List[int] = []
        ind_sizes: List[int] = []
        const_sizes: List[int] = []
        ind_rows: List[np.ndarray] = []
        ind_vars: List[np.ndarray] = []
        ind_values: List[np.ndarray] = []
        const_rows: List[np.ndarray] = []
        const_probs: List[np.ndarray] = []
        view_pairs: List[Tuple[Optional[slice], np.ndarray]] = []
        for gi in np.flatnonzero(meta["enc"]).tolist():
            encode = kernels[gi].encode
            enc_groups.append(gi)
            ind_sizes.append(encode.ind_rows.size)
            const_sizes.append(encode.const_rows.size)
            ind_rows.append(encode.ind_rows)
            ind_vars.append(encode.ind_vars)
            ind_values.append(encode.ind_values)
            const_rows.append(encode.const_rows)
            const_probs.append(encode.const_probs)
            view_pairs.append((encode.ind_slice, encode.ind_rows))
            view_pairs.append((encode.const_slice, encode.const_rows))

        def _cat(parts: List[np.ndarray], dtype) -> np.ndarray:
            return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)

        enc_ids = np.asarray(enc_groups, dtype=np.int64)
        self._encode_meta = (
            np.repeat(enc_ids, np.asarray(ind_sizes, dtype=np.int64)),
            _cat(ind_rows, np.intp),
            _cat(ind_vars, np.int64),
            _cat(ind_values, np.int64),
            np.repeat(enc_ids, np.asarray(const_sizes, dtype=np.int64)),
            _cat(const_rows, np.intp),
            _cat(const_probs, np.float64),
            view_pairs,
        )
        # Operand rows of the non-broadcast ("open") sides and the ravelled
        # broadcast constant columns, concatenated in kernel order.
        open0: List[np.ndarray] = []
        open1: List[np.ndarray] = []
        open0_pairs: List[Tuple[Optional[slice], np.ndarray]] = []
        open1_pairs: List[Tuple[Optional[slice], np.ndarray]] = []
        const0: List[np.ndarray] = []
        const1: List[np.ndarray] = []
        for k in kernels:
            if k.const_arg0 is None:
                open0.append(k.arg0)
                open0_pairs.append((k.arg0_slice, k.arg0))
            else:
                const0.append(k.const_arg0.ravel())
            if k.const_arg1 is None:
                open1.append(k.arg1)
                open1_pairs.append((k.arg1_slice, k.arg1))
            else:
                const1.append(k.const_arg1.ravel())
        self._operand_meta = (
            (
                np.fromiter(map(len, open0), np.int64, len(open0)),
                _cat(open0, np.intp),
                open0_pairs,
            ),
            (
                np.fromiter(map(len, open1), np.int64, len(open1)),
                _cat(open1, np.intp),
                open1_pairs,
            ),
        )
        self._const_meta = (
            (np.fromiter(map(len, const0), np.int64, len(const0)), _cat(const0, np.float64)),
            (np.fromiter(map(len, const1), np.int64, len(const1)), _cat(const1, np.float64)),
        )
        # Every strided view expanded to explicit rows next to the rows it
        # claims to address, in the verifier's pair order (encode, arg0,
        # arg1): consistency is then a single ``array_equal`` per
        # verification instead of a per-pair expansion.
        expanded: List[np.ndarray] = []
        claimed: List[np.ndarray] = []
        for view, rows in view_pairs + open0_pairs + open1_pairs:
            if view is None:
                continue
            expanded.append(np.arange(view.start, view.stop, view.step or 1, dtype=np.int64))
            claimed.append(np.asarray(rows, dtype=np.int64))
        self._view_check = (_cat(expanded, np.int64), _cat(claimed, np.int64))
        # Identity flag plus replay geometry.  The verifier's symbolic replay
        # orders every write event by a packed ``(row, time, value)`` key and
        # probes each read for the last write on its row; rows, times, the
        # key radices and the sort order depend only on the plan, so they are
        # derived here — the verifier's hot path then only joins them with
        # the tape's canonical values.  Event time within kernel ``g``:
        # encodes land at ``3g``, reads probe at ``3g + 1``, destination
        # writes land at ``3g + 2``, the order the executor uses.
        self._sources_identity = self._all_source_slots is not None and bool(
            np.array_equal(
                self._all_source_slots,
                np.arange(self.n_inputs, self.n_slots, dtype=np.int64),
            )
        )
        widths = meta["stop"] - meta["start"]
        n_lanes = int(widths.sum())
        period = 3 * n_kernels + 3
        pack = self.n_slots + 1
        lane_group = np.repeat(np.arange(n_kernels, dtype=np.int64), widths)
        bounds = np.concatenate([[0], np.cumsum(widths)])
        within = np.arange(n_lanes, dtype=np.int64) - np.repeat(bounds[:-1], widths)
        dest_rows = np.repeat(meta["start"], widths) + within
        ind_g, ind_rows_cat = self._encode_meta[0], self._encode_meta[1]
        const_g, const_rows_cat = self._encode_meta[4], self._encode_meta[5]
        write_rows = np.concatenate([ind_rows_cat, const_rows_cat, dest_rows]).astype(
            np.int64, copy=False
        )
        write_base = (
            write_rows * period
            + np.concatenate([3 * ind_g, 3 * const_g, 3 * lane_group + 2])
        ) * pack
        order = np.argsort(write_base, kind="stable")
        lane_c0 = meta["c0"][lane_group] if bool(meta["c0"].any()) else None
        lane_c1 = meta["c1"][lane_group] if bool(meta["c1"].any()) else None
        open_g0 = lane_group if lane_c0 is None else lane_group[~lane_c0]
        open_g1 = lane_group if lane_c1 is None else lane_group[~lane_c1]
        read_rows = np.concatenate(
            [self._operand_meta[0][1], self._operand_meta[1][1]]
        ).astype(np.int64, copy=False)
        read_base = (
            read_rows * period + np.concatenate([3 * open_g0 + 1, 3 * open_g1 + 1])
        ) * pack
        self._replay_meta = (
            period,
            pack,
            lane_group,
            bounds,
            order,
            write_base[order],
            lane_c0,
            lane_c1,
            open_g0,
            open_g1,
            read_rows,
            read_base,
        )

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    @property
    def reduction(self) -> float:
        """Working-set reduction vs the legacy dense slot matrix."""
        return self.n_slots / max(self.n_physical, 1)

    def peak_bytes(self, n_rows: int) -> int:
        """Peak slot-buffer bytes for an ``n_rows`` block under this plan."""
        return self.n_physical * int(n_rows) * 8

    # ------------------------------------------------------------------ #
    # Per-thread scratch buffer
    # ------------------------------------------------------------------ #
    def workspace(self, n_rows: int) -> np.ndarray:
        """A ``(n_physical, n_rows)`` scratch block, reused across calls.

        Each thread keeps (at most) one buffer per plan, grown to the
        largest row count seen; serving workers therefore execute every
        micro-batch of a model in the same preallocated block instead of
        allocating a fresh slot matrix per batch.
        """
        buffer = getattr(self._scratch, "buffer", None)
        if buffer is None or buffer.shape[1] < n_rows:
            buffer = np.empty((self.n_physical, int(n_rows)), dtype=np.float64)
            self._scratch.buffer = buffer
        return buffer[:, :n_rows]

    def reserve(self, n_rows: int) -> None:
        """Preallocate the calling thread's scratch for ``n_rows`` rows."""
        self.workspace(max(int(n_rows), 1))


# --------------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------------- #
class _FreeIntervals:
    """Best-fit interval allocator over physical rows with coalescing."""

    def __init__(self) -> None:
        self._free: List[Tuple[int, int]] = []  # (start, length), sorted
        self.high_water = 0

    def alloc(self, width: int) -> int:
        best = -1
        best_len = 0
        for i, (_, length) in enumerate(self._free):
            if length >= width and (best < 0 or length < best_len):
                best, best_len = i, length
        if best >= 0:
            start, length = self._free[best]
            if length == width:
                del self._free[best]
            else:
                self._free[best] = (start + width, length - width)
            return start
        start = self.high_water
        self.high_water += width
        return start

    def free(self, start: int, width: int) -> None:
        if width <= 0:
            return
        lo = 0
        hi = len(self._free)
        while lo < hi:  # insertion point by start
            mid = (lo + hi) // 2
            if self._free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (start, width))
        # Coalesce with the neighbours.
        if lo + 1 < len(self._free):
            s, w = self._free[lo]
            s2, w2 = self._free[lo + 1]
            if s + w == s2:
                self._free[lo] = (s, w + w2)
                del self._free[lo + 1]
        if lo > 0:
            s, w = self._free[lo - 1]
            s2, w2 = self._free[lo]
            if s + w == s2:
                self._free[lo - 1] = (s, w + w2)
                del self._free[lo]


def _as_stride_slice(indices: np.ndarray) -> Optional[slice]:
    """The equivalent slice when ``indices`` is a constant positive-stride run.

    Binary-tree reductions produce interleaved operand patterns (stride 2:
    ``[p, p+2, p+4, ...]`` vs ``[p+1, p+3, ...]``), so strided views cover
    the majority of kernels and skip the gather copy entirely.  The single
    definition of the strided-view test — the legacy executor in
    :mod:`repro.spn.compiled` imports it as ``_as_slice``.
    """
    if not indices.size:
        return None
    if indices.size == 1:
        start = int(indices[0])
        return slice(start, start + 1)
    steps = np.diff(indices)
    step = int(steps[0])
    if step > 0 and bool((steps == step).all()):
        start = int(indices[0])
        return slice(start, start + (indices.size - 1) * step + 1, step)
    return None


def _reads_any(kernel, dest_ranges: Sequence[Tuple[int, int]]) -> bool:
    for args in (kernel.arg0, kernel.arg1):
        for lo, hi in dest_ranges:
            if bool(((args >= lo) & (args < hi)).any()):
                return True
    return False


def _fusion_groups(tape, fuse: bool, fuse_width: int) -> List[List[int]]:
    """Group kernels for fused execution (one gather/compute call each).

    The tape alternates add and mul kernels level by level, so same-opcode
    kernels are almost never *adjacent*; instead the pass keeps one open
    candidate group per opcode and appends each kernel to its opcode's
    group when the combined width stays within ``fuse_width`` and the
    kernel is provably independent of the group (it reads none of the
    group's destinations).  A kernel that *does* read an open group's
    destinations forces that group to be emitted first, which fixes the
    emitted order as a valid topological reordering of the tape — on the
    deep narrow suite tapes this fuses the sum kernels of consecutive
    levels (each reads only the product side) and roughly halves the
    per-level Python dispatch.  The emitted order is re-verified
    structurally before planning (:func:`plan_memory` raises on any
    violation) and value-checked by :func:`verify_plan`.
    """
    if not fuse:
        return [[i] for i in range(len(tape.kernels))]
    groups: List[List[int]] = []
    # op -> (kernel indices, combined width, dest ranges) of the open group.
    open_groups: Dict[str, Tuple[List[int], int, List[Tuple[int, int]]]] = {}
    open_order: List[str] = []  # opcodes by group opening time

    def flush(op: str) -> None:
        entry = open_groups.pop(op, None)
        if entry is not None:
            groups.append(entry[0])
            open_order.remove(op)

    for i, kernel in enumerate(tape.kernels):
        # A group whose destinations this kernel reads must execute first.
        for op in list(open_order):
            if op != kernel.op and _reads_any(kernel, open_groups[op][2]):
                flush(op)
        entry = open_groups.get(kernel.op)
        if entry is not None:
            members, width, dests = entry
            if width + kernel.width <= fuse_width and not _reads_any(kernel, dests):
                members.append(i)
                dests.append((kernel.dest_start, kernel.dest_stop))
                open_groups[kernel.op] = (members, width + kernel.width, dests)
                continue
            flush(kernel.op)
        open_groups[kernel.op] = (
            [i],
            kernel.width,
            [(kernel.dest_start, kernel.dest_stop)],
        )
        open_order.append(kernel.op)
    for op in list(open_order):
        flush(op)
    return groups


def _check_topological(tape, groups: Sequence[Sequence[int]]) -> None:
    """Assert the fused emission order respects every tape dependency."""
    produced = np.zeros(tape.n_slots, dtype=bool)
    produced[: tape.n_inputs] = True
    for group in groups:
        for ki in group:
            kernel = tape.kernels[ki]
            for args in (kernel.arg0, kernel.arg1):
                if not produced[args].all():
                    raise AssertionError(
                        "kernel fusion produced an invalid schedule "
                        f"(kernel {ki} reads an unproduced slot)"
                    )
        for ki in group:
            kernel = tape.kernels[ki]
            produced[kernel.dest_start : kernel.dest_stop] = True


def plan_memory(
    tape, fuse: bool = True, fuse_width: int = DEFAULT_FUSE_WIDTH
) -> MemoryPlan:
    """Plan physical-slot execution for a :class:`~repro.spn.compiled.CompiledTape`.

    Runs the liveness analysis at (fused-)kernel granularity — a slot is
    live from the kernel that defines it (for inputs: the kernel that first
    *reads* it, since inputs are encoded lazily) through the kernel that
    last reads it, the root surviving to the end — and assigns every slot a
    physical row via best-fit interval allocation, each kernel's dest block
    staying one contiguous physical interval so the executor keeps its
    slice-store fast path.  Requires a tape with at least one kernel
    (slot-matrix execution is trivial without one; ``execute_batch`` keeps
    such tapes on the legacy path).
    """
    if not tape.kernels:
        raise ValueError("cannot plan an empty tape (no kernels)")
    groups = _fusion_groups(tape, fuse, fuse_width)
    if fuse:
        _check_topological(tape, groups)
    n_slots = tape.n_slots
    n_inputs = tape.n_inputs
    n_groups = len(groups)

    # Broadcast-constant operands: when every lane of a group's arg0 (or
    # arg1) is a constant input read nowhere else, the values travel as a
    # (width, 1) column broadcast across the batch instead of materialized
    # rows — the ``weight * child`` lanes of every weighted sum.
    is_const = np.zeros(n_slots, dtype=bool)
    const_prob = np.zeros(n_inputs, dtype=np.float64)
    for spec in tape.inputs:
        if spec.kind != "indicator":
            is_const[spec.index] = True
            const_prob[spec.index] = spec.prob
    total_reads = np.zeros(n_slots, dtype=np.int64)
    for kernel in tape.kernels:
        np.add.at(total_reads, kernel.arg0, 1)
        np.add.at(total_reads, kernel.arg1, 1)
    group_args: List[Tuple[np.ndarray, np.ndarray]] = []
    broadcast: List[Tuple[bool, bool]] = []
    for group in groups:
        arg0v = np.concatenate([tape.kernels[ki].arg0 for ki in group])
        arg1v = np.concatenate([tape.kernels[ki].arg1 for ki in group])
        group_args.append((arg0v, arg1v))
        flags = []
        for args in (arg0v, arg1v):
            ok = bool(is_const[args].all())
            if ok:
                occurrences = np.bincount(args, minlength=n_slots)[args]
                ok = bool((total_reads[args] == occurrences).all())
            flags.append(ok)
        broadcast.append((flags[0], flags[1]))

    # Liveness at fused-kernel granularity.  first_use/last_use are fused
    # indices; -1 marks a slot never read (dead inputs are never encoded,
    # dead op slots still occupy their kernel's dest interval but free
    # immediately afterwards).  Broadcast operand lanes do not count as
    # reads: their slots are never materialized.
    first_use = np.full(n_slots, -1, dtype=np.int64)
    last_use = np.full(n_slots, -1, dtype=np.int64)
    defined_at = np.full(n_slots, -1, dtype=np.int64)
    for gi, group in enumerate(groups):
        for ki in group:
            kernel = tape.kernels[ki]
            defined_at[kernel.dest_start : kernel.dest_stop] = gi
        bc0, bc1 = broadcast[gi]
        for args, skip in ((group_args[gi][0], bc0), (group_args[gi][1], bc1)):
            if skip:
                continue
            fresh = first_use[args] < 0
            if fresh.any():
                first_use[args[fresh]] = gi
            last_use[args] = gi
    last_use[tape.root_slot] = n_groups  # the root survives the whole run

    inputs_by_group: Dict[int, List[int]] = {}
    for slot in range(n_inputs):
        if first_use[slot] >= 0:
            inputs_by_group.setdefault(int(first_use[slot]), []).append(slot)

    expire: List[List[Tuple[int, int]]] = [[] for _ in range(n_groups + 1)]

    allocator = _FreeIntervals()
    phys_of = np.full(n_slots, -1, dtype=np.intp)
    input_kind = {s.index: s for s in tape.inputs}
    in_use = 0
    max_live = 0
    planned: List[PlannedKernel] = []

    for gi, group in enumerate(groups):
        # 1. Retire slots whose last read was the previous kernel.
        for start, width in expire[gi]:
            allocator.free(start, width)
            in_use -= width
        # 2. Materialize the inputs this kernel reads first, as one
        #    contiguous interval in slot order.
        encode = None
        fresh_inputs = inputs_by_group.get(gi, [])
        if fresh_inputs:
            base = allocator.alloc(len(fresh_inputs))
            in_use += len(fresh_inputs)
            ind_rows: List[int] = []
            ind_vars: List[int] = []
            ind_values: List[int] = []
            const_rows: List[int] = []
            const_probs: List[float] = []
            for offset, slot in enumerate(fresh_inputs):
                phys_of[slot] = base + offset
                spec = input_kind[slot]
                if spec.kind == "indicator":
                    ind_rows.append(base + offset)
                    ind_vars.append(spec.var)
                    ind_values.append(spec.value)
                else:
                    const_rows.append(base + offset)
                    const_probs.append(spec.prob)
            _queue_expiry(expire, fresh_inputs, last_use, phys_of, default_last=gi)
            const_probs_arr = np.array(const_probs, dtype=np.float64)
            with np.errstate(divide="ignore"):
                const_logs = np.log(const_probs_arr)
            ind_rows_arr = np.array(ind_rows, dtype=np.intp)
            const_rows_arr = np.array(const_rows, dtype=np.intp)
            encode = InputEncoding(
                ind_rows=ind_rows_arr,
                ind_vars=np.array(ind_vars, dtype=np.intp),
                ind_values=np.array(ind_values, dtype=np.int64),
                ind_slice=_as_stride_slice(ind_rows_arr),
                const_rows=const_rows_arr,
                const_probs=const_probs_arr,
                const_log_probs=const_logs,
                const_slice=_as_stride_slice(const_rows_arr),
            )
        # 3. Allocate this kernel's dest interval and emit the fused kernel.
        width = sum(tape.kernels[ki].width for ki in group)
        dest = allocator.alloc(width)
        in_use += width
        offset = dest
        source_slots: List[int] = []
        for ki in group:
            kernel = tape.kernels[ki]
            for slot in range(kernel.dest_start, kernel.dest_stop):
                phys_of[slot] = offset
                source_slots.append(slot)
                offset += 1
        dest_slots = np.array(source_slots, dtype=np.intp)
        _queue_expiry(expire, source_slots, last_use, phys_of, default_last=gi)
        arg0v, arg1v = group_args[gi]
        bc0, bc1 = broadcast[gi]
        empty = np.empty(0, dtype=np.intp)

        def _operand(args: np.ndarray, bc: bool):
            if bc:
                column = const_prob[args].reshape(-1, 1)
                with np.errstate(divide="ignore"):
                    log_column = np.log(column)
                return empty, None, column, log_column
            rows = phys_of[args].astype(np.intp, copy=False)
            return rows, _as_stride_slice(rows), None, None

        arg0, arg0_slice, const0, const0_log = _operand(arg0v, bc0)
        arg1, arg1_slice, const1, const1_log = _operand(arg1v, bc1)
        planned.append(
            PlannedKernel(
                op=tape.kernels[group[0]].op,
                dest_start=dest,
                dest_stop=dest + width,
                arg0=arg0,
                arg1=arg1,
                arg0_slice=arg0_slice,
                arg1_slice=arg1_slice,
                encode=encode,
                const_arg0=const0,
                const_arg0_log=const0_log,
                const_arg1=const1,
                const_arg1_log=const1_log,
                source_slots=dest_slots,
            )
        )
        max_live = max(max_live, in_use)

    final = planned[-1]
    root_phys = int(phys_of[tape.root_slot])
    root_direct = final.width == 1 and final.dest_start == root_phys
    return MemoryPlan(
        kernels=planned,
        n_physical=allocator.high_water,
        max_live=max_live,
        n_slots=n_slots,
        n_inputs=n_inputs,
        root_phys=root_phys,
        root_direct=root_direct,
        n_source_kernels=len(tape.kernels),
        fused=fuse,
    )


def _queue_expiry(expire, slots, last_use, phys_of, default_last: int) -> None:
    """Queue freshly placed slots for retirement after their last read.

    A slot retires at the start of the kernel after its last read
    (never-read slots retire right after their defining kernel,
    ``default_last``); slots whose last read is past the final kernel — the
    root — simply survive the run.  Adjacent physical rows expiring
    together merge into one interval so the allocator frees (and
    re-coalesces) runs, not single rows.
    """
    by_group: Dict[int, List[int]] = {}
    for slot in slots:
        last = int(last_use[slot])
        if last < 0:  # never read: retire immediately after definition
            last = default_last
        if last + 1 >= len(expire):  # lives to the end (the root)
            continue
        by_group.setdefault(last, []).append(int(phys_of[slot]))
    for last, rows in by_group.items():
        rows.sort()
        start = rows[0]
        prev = rows[0]
        bucket = expire[last + 1]
        for row in rows[1:]:
            if row == prev + 1:
                prev = row
                continue
            bucket.append((start, prev - start + 1))
            start = prev = row
        bucket.append((start, prev - start + 1))


# --------------------------------------------------------------------------- #
# Serialization (AOT artifacts)
# --------------------------------------------------------------------------- #
def plan_to_payload(plan: MemoryPlan) -> dict:
    """Serialize a :class:`MemoryPlan` to a JSON-compatible dictionary.

    Only declarative data is stored: derived strided-slice views are
    recomputed by :func:`_as_stride_slice` on load, and log columns by
    ``np.log`` — both bit-identical, because JSON round-trips every float
    exactly and ``log`` is deterministic.  Shipping the plan lets an AOT
    artifact skip :func:`plan_memory` entirely at cold start.
    """
    def operand(rows: np.ndarray, const: Optional[np.ndarray]):
        if const is not None:
            return {"const": const.ravel().tolist()}
        return {"rows": rows.tolist()}

    kernels = []
    for k in plan.kernels:
        record = {
            "op": k.op,
            "dest": [k.dest_start, k.dest_stop],
            "arg0": operand(k.arg0, k.const_arg0),
            "arg1": operand(k.arg1, k.const_arg1),
            "source_slots": k.source_slots.tolist(),
            "encode": None,
        }
        if k.encode is not None:
            record["encode"] = {
                "ind_rows": k.encode.ind_rows.tolist(),
                "ind_vars": k.encode.ind_vars.tolist(),
                "ind_values": k.encode.ind_values.tolist(),
                "const_rows": k.encode.const_rows.tolist(),
                "const_probs": k.encode.const_probs.tolist(),
            }
        kernels.append(record)
    return {
        "kernels": kernels,
        "n_physical": plan.n_physical,
        "max_live": plan.max_live,
        "n_slots": plan.n_slots,
        "n_inputs": plan.n_inputs,
        "root_phys": plan.root_phys,
        "root_direct": plan.root_direct,
        "n_source_kernels": plan.n_source_kernels,
        "fused": plan.fused,
    }


def _payload_int(payload: dict, key: str, context: str) -> int:
    try:
        return int(payload[key])
    except (KeyError, TypeError, ValueError):
        raise StructureError(f"{context}: missing or malformed field {key!r}") from None


def plan_from_payload(payload: dict) -> MemoryPlan:
    """Rebuild a plan from :func:`plan_to_payload` output, validating it.

    Every physical-row reference is checked against the recorded buffer
    height and every source slot against the recorded tape length, so a
    corrupted plan raises :class:`~repro.spn.graph.StructureError` at load
    time rather than an out-of-bounds gather at serve time.
    """
    if not isinstance(payload, dict):
        raise StructureError("plan section: expected a dict")
    context = "plan section"
    n_physical = _payload_int(payload, "n_physical", context)
    max_live = _payload_int(payload, "max_live", context)
    n_slots = _payload_int(payload, "n_slots", context)
    n_inputs = _payload_int(payload, "n_inputs", context)
    root_phys = _payload_int(payload, "root_phys", context)
    n_source_kernels = _payload_int(payload, "n_source_kernels", context)
    root_direct = bool(payload.get("root_direct", False))
    fused = bool(payload.get("fused", True))
    if n_physical < 1 or not 0 <= root_phys < n_physical:
        raise StructureError(f"{context}: root_phys {root_phys} out of range")
    records = payload.get("kernels")
    if not isinstance(records, list) or not records:
        raise StructureError(f"{context}: 'kernels' must be a non-empty list")

    def rows_array(values, limit: int, what: str, ctx: str) -> np.ndarray:
        try:
            rows = np.asarray(values, dtype=np.intp)
        except (TypeError, ValueError):
            raise StructureError(f"{ctx}: malformed {what}") from None
        if rows.ndim != 1:
            raise StructureError(f"{ctx}: malformed {what}")
        if rows.size and (int(rows.min()) < 0 or int(rows.max()) >= limit):
            raise StructureError(f"{ctx}: {what} references a row out of range")
        return rows

    kernels: List[PlannedKernel] = []
    for position, record in enumerate(records):
        ctx = f"plan kernel record {position}"
        if not isinstance(record, dict):
            raise StructureError(f"{ctx}: expected a dict")
        op = record.get("op")
        if op not in (OP_ADD, OP_MUL):
            raise StructureError(f"{ctx}: unknown opcode {op!r}")
        dest = record.get("dest")
        if not isinstance(dest, (list, tuple)) or len(dest) != 2:
            raise StructureError(f"{ctx}: malformed dest interval")
        try:
            dest_start, dest_stop = int(dest[0]), int(dest[1])
        except (TypeError, ValueError):
            raise StructureError(f"{ctx}: malformed dest interval") from None
        if not (0 <= dest_start < dest_stop <= n_physical):
            raise StructureError(f"{ctx}: dest interval out of range")
        width = dest_stop - dest_start

        empty = np.empty(0, dtype=np.intp)

        def operand(spec, which: str):
            if not isinstance(spec, dict):
                raise StructureError(f"{ctx}: malformed operand {which}")
            if "const" in spec:
                try:
                    column = np.asarray(spec["const"], dtype=np.float64).reshape(-1, 1)
                except (TypeError, ValueError):
                    raise StructureError(f"{ctx}: malformed operand {which}") from None
                if column.shape[0] != width:
                    raise StructureError(
                        f"{ctx}: operand {which} length does not match kernel width"
                    )
                with np.errstate(divide="ignore"):
                    log_column = np.log(column)
                return empty, None, column, log_column
            rows = rows_array(spec.get("rows"), n_physical, f"operand {which}", ctx)
            if rows.size != width:
                raise StructureError(
                    f"{ctx}: operand {which} length does not match kernel width"
                )
            return rows, _as_stride_slice(rows), None, None

        arg0, arg0_slice, const0, const0_log = operand(record.get("arg0"), "arg0")
        arg1, arg1_slice, const1, const1_log = operand(record.get("arg1"), "arg1")

        encode = None
        encode_record = record.get("encode")
        if encode_record is not None:
            if not isinstance(encode_record, dict):
                raise StructureError(f"{ctx}: malformed encode section")
            ind_rows = rows_array(
                encode_record.get("ind_rows"), n_physical, "encode ind_rows", ctx
            )
            const_rows = rows_array(
                encode_record.get("const_rows"), n_physical, "encode const_rows", ctx
            )
            try:
                ind_vars = np.asarray(encode_record.get("ind_vars"), dtype=np.intp)
                ind_values = np.asarray(encode_record.get("ind_values"), dtype=np.int64)
                const_probs = np.asarray(
                    encode_record.get("const_probs"), dtype=np.float64
                )
            except (TypeError, ValueError):
                raise StructureError(f"{ctx}: malformed encode section") from None
            if (
                ind_vars.shape != ind_rows.shape
                or ind_values.shape != ind_rows.shape
                or const_probs.shape != const_rows.shape
            ):
                raise StructureError(f"{ctx}: truncated encode section")
            with np.errstate(divide="ignore"):
                const_logs = np.log(const_probs)
            encode = InputEncoding(
                ind_rows=ind_rows,
                ind_vars=ind_vars,
                ind_values=ind_values,
                ind_slice=_as_stride_slice(ind_rows),
                const_rows=const_rows,
                const_probs=const_probs,
                const_log_probs=const_logs,
                const_slice=_as_stride_slice(const_rows),
            )

        source_slots = rows_array(
            record.get("source_slots"), n_slots, "source_slots", ctx
        )
        if source_slots.size != width:
            raise StructureError(
                f"{ctx}: source_slots length does not match kernel width"
            )
        kernels.append(
            PlannedKernel(
                op=op,
                dest_start=dest_start,
                dest_stop=dest_stop,
                arg0=arg0,
                arg1=arg1,
                arg0_slice=arg0_slice,
                arg1_slice=arg1_slice,
                encode=encode,
                const_arg0=const0,
                const_arg0_log=const0_log,
                const_arg1=const1,
                const_arg1_log=const1_log,
                source_slots=source_slots,
            )
        )
    return MemoryPlan(
        kernels=kernels,
        n_physical=n_physical,
        max_live=max_live,
        n_slots=n_slots,
        n_inputs=n_inputs,
        root_phys=root_phys,
        root_direct=root_direct,
        n_source_kernels=n_source_kernels,
        fused=fused,
    )


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
def _encode_inputs(
    encode: InputEncoding,
    block: np.ndarray,
    data: np.ndarray,
    log_domain: bool,
) -> None:
    """Materialize one kernel's fresh input rows into the physical buffer."""
    n_cols = data.shape[1]
    hit_value, miss_value = (0.0, -np.inf) if log_domain else (1.0, 0.0)
    if encode.ind_rows.size:
        target = encode.ind_slice if encode.ind_slice is not None else encode.ind_rows
        if n_cols == 0:
            block[target] = hit_value
        else:
            in_range = encode.ind_vars < n_cols
            cols = data[:, np.minimum(encode.ind_vars, n_cols - 1)].T
            hit = (cols < 0) | (cols == encode.ind_values[:, None])
            hit |= ~in_range[:, None]
            block[target] = np.where(hit, hit_value, miss_value)
    if encode.const_rows.size:
        target = (
            encode.const_slice if encode.const_slice is not None else encode.const_rows
        )
        block[target] = (
            encode.const_log_probs if log_domain else encode.const_probs
        )[:, None]


def execute_plan(
    plan: MemoryPlan,
    data: np.ndarray,
    log_domain: bool = False,
    out: Optional[np.ndarray] = None,
    profiler=None,
) -> np.ndarray:
    """Run a planned tape over one (already validated) evidence block.

    Writes the root values into ``out`` (allocated when ``None``) and
    returns it.  When the plan's final kernel produces exactly the root
    (``root_direct``), that kernel computes straight into ``out`` — no
    root-row copy at all; otherwise the root's physical row is copied out
    once.  The physical buffer is the calling thread's reusable scratch.

    ``profiler`` (a :class:`repro.observability.TapeProfiler`, resolved
    once per batch by the caller) switches to an instrumented copy of the
    kernel loop that records per-kernel elapsed/rows/bytes; the default
    ``None`` takes this uninstrumented loop, so unprofiled execution pays
    nothing.
    """
    if profiler is not None:
        return _execute_plan_profiled(plan, data, log_domain, out, profiler)
    n_rows = data.shape[0]
    if out is None:
        out = np.empty(n_rows, dtype=np.float64)
    block = plan.workspace(n_rows)
    last = len(plan.kernels) - 1
    for i, kernel in enumerate(plan.kernels):
        if kernel.encode is not None:
            _encode_inputs(kernel.encode, block, data, log_domain)
        a = _operand_block(kernel, block, log_domain, 0)
        b = _operand_block(kernel, block, log_domain, 1)
        if i == last and plan.root_direct:
            dest = out[None, :]
        else:
            dest = block[kernel.dest_start : kernel.dest_stop]
        if log_domain:
            if kernel.op == OP_ADD:
                np.logaddexp(a, b, out=dest)
            else:
                np.add(a, b, out=dest)
        else:
            if kernel.op == OP_ADD:
                np.add(a, b, out=dest)
            else:
                np.multiply(a, b, out=dest)
    if not plan.root_direct:
        out[:] = block[plan.root_phys]
    return out


def _execute_plan_profiled(
    plan: MemoryPlan,
    data: np.ndarray,
    log_domain: bool,
    out: Optional[np.ndarray],
    profiler,
) -> np.ndarray:
    """The instrumented twin of :func:`execute_plan` (same ops, same order).

    Records one sample per planned kernel — keyed ``k<index>`` in plan
    order, with input encoding attributed to a ``k<index>.encode``
    pseudo-kernel — plus the pass's total wall time (the coverage
    denominator).  Bytes count operand reads and destination writes at 8
    bytes per value off the plan's physical layout; a broadcast-constant
    operand contributes only its ``(width, 1)`` column.
    """
    n_rows = data.shape[0]
    if out is None:
        out = np.empty(n_rows, dtype=np.float64)
    block = plan.workspace(n_rows)
    last = len(plan.kernels) - 1
    t_pass = time.perf_counter()
    for i, kernel in enumerate(plan.kernels):
        if kernel.encode is not None:
            n_encoded = kernel.encode.ind_rows.size + kernel.encode.const_rows.size
            t0 = time.perf_counter()
            _encode_inputs(kernel.encode, block, data, log_domain)
            profiler.record(
                f"k{i:03d}.encode", "enc", n_encoded,
                time.perf_counter() - t0, n_rows, 8 * n_rows * n_encoded,
            )
        t0 = time.perf_counter()
        a = _operand_block(kernel, block, log_domain, 0)
        b = _operand_block(kernel, block, log_domain, 1)
        if i == last and plan.root_direct:
            dest = out[None, :]
        else:
            dest = block[kernel.dest_start : kernel.dest_stop]
        if log_domain:
            if kernel.op == OP_ADD:
                np.logaddexp(a, b, out=dest)
            else:
                np.add(a, b, out=dest)
        else:
            if kernel.op == OP_ADD:
                np.add(a, b, out=dest)
            else:
                np.multiply(a, b, out=dest)
        elapsed = time.perf_counter() - t0
        lane_bytes = 8 * n_rows * kernel.width
        nbytes = lane_bytes  # destination write
        nbytes += lane_bytes if kernel.const_arg0 is None else 8 * kernel.width
        nbytes += lane_bytes if kernel.const_arg1 is None else 8 * kernel.width
        profiler.record(f"k{i:03d}", kernel.op, kernel.width, elapsed, n_rows, nbytes)
    if not plan.root_direct:
        out[:] = block[plan.root_phys]
    profiler.record_pass(time.perf_counter() - t_pass)
    return out


def _operand_block(
    kernel: PlannedKernel, block: np.ndarray, log_domain: bool, which: int
) -> np.ndarray:
    """Fetch one operand: broadcast constant column, slice view, or gather."""
    if which == 0:
        if kernel.const_arg0 is not None:
            return kernel.const_arg0_log if log_domain else kernel.const_arg0
        return block[
            kernel.arg0_slice if kernel.arg0_slice is not None else kernel.arg0
        ]
    if kernel.const_arg1 is not None:
        return kernel.const_arg1_log if log_domain else kernel.const_arg1
    return block[kernel.arg1_slice if kernel.arg1_slice is not None else kernel.arg1]


# Shared shard pools, one per requested size.  ThreadPoolExecutor joins its
# workers at interpreter exit, so module-level pools need no teardown hook.
_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _shard_pool(n_threads: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(n_threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=n_threads, thread_name_prefix="tape-shard"
            )
            _POOLS[n_threads] = pool
        return pool


def shard_bounds(n_rows: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``n_rows`` into ``n_shards`` near-equal contiguous row ranges."""
    n_shards = max(1, min(n_shards, n_rows))
    edges = np.linspace(0, n_rows, n_shards + 1, dtype=np.int64)
    return [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(n_shards)
        if edges[i + 1] > edges[i]
    ]


def execute_sharded(
    plan: MemoryPlan,
    data: np.ndarray,
    log_domain: bool = False,
    out: Optional[np.ndarray] = None,
    options: ExecutionOptions = DEFAULT_EXECUTION,
    block_rows: Optional[int] = None,
    profiler=None,
) -> np.ndarray:
    """Run a planned tape over row shards on the shared thread pool.

    Each shard executes the planned block loop independently (with its own
    thread-local scratch buffer) into a disjoint range of ``out``; NumPy's
    reduction kernels release the GIL, so shards overlap on multicore
    hosts.  Batches too small to shard (fewer than two
    ``options.min_shard_rows`` spans) run on the calling thread.

    ``profiler`` is forwarded into the shard closures explicitly — context
    variables do not cross the pool's thread boundary — and
    ``TapeProfiler.record`` is thread-safe, so shard samples merge into one
    aggregate.
    """
    n_rows = data.shape[0]
    if out is None:
        out = np.empty(n_rows, dtype=np.float64)
    n_shards = min(options.n_threads, max(1, n_rows // options.min_shard_rows))
    bounds = shard_bounds(n_rows, n_shards)

    def run_shard(lo: int, hi: int) -> None:
        _blocked_plan(plan, data[lo:hi], log_domain, out[lo:hi], block_rows, profiler)

    if len(bounds) <= 1:
        run_shard(0, n_rows)
        return out
    pool = _shard_pool(options.n_threads)
    futures = [pool.submit(run_shard, lo, hi) for lo, hi in bounds]
    for future in futures:
        future.result()
    return out


def _blocked_plan(
    plan: MemoryPlan,
    data: np.ndarray,
    log_domain: bool,
    out: np.ndarray,
    block_rows: Optional[int],
    profiler=None,
) -> None:
    """Planned execution of one shard, in cache-sized row blocks."""
    n_rows = data.shape[0]
    block = block_rows or n_rows
    if n_rows <= block:
        execute_plan(plan, data, log_domain=log_domain, out=out, profiler=profiler)
        return
    for start in range(0, n_rows, block):
        stop = min(start + block, n_rows)
        execute_plan(
            plan, data[start:stop], log_domain=log_domain, out=out[start:stop],
            profiler=profiler,
        )


# --------------------------------------------------------------------------- #
# Verification against the legacy slot matrix
# --------------------------------------------------------------------------- #
def verify_plan(
    tape, plan: MemoryPlan, data: np.ndarray, log_domain: bool = False
) -> None:
    """Check a plan slot-by-slot against the legacy dense execution.

    Replays the planned program on ``data`` and, after every kernel,
    compares each freshly defined physical row **bit-exactly**
    (``array_equal``, NaN-aware) against the corresponding row of the
    legacy ``(n_slots, n_rows)`` slot matrix.  This is the ``check=True``
    path of planned/sharded execution; a mismatch raises
    :class:`~repro.spn.compiled.EngineMismatchError` naming the first
    diverging tape slot.
    """
    from .compiled import EngineMismatchError

    reference = tape.execute_slots(data, log_domain=log_domain)
    n_rows = data.shape[0]
    block = np.empty((plan.n_physical, n_rows), dtype=np.float64)
    for kernel in plan.kernels:
        if kernel.encode is not None:
            _encode_inputs(kernel.encode, block, data, log_domain)
        a = _operand_block(kernel, block, log_domain, 0)
        b = _operand_block(kernel, block, log_domain, 1)
        dest = block[kernel.dest_start : kernel.dest_stop]
        if log_domain:
            np.logaddexp(a, b, out=dest) if kernel.op == OP_ADD else np.add(
                a, b, out=dest
            )
        else:
            np.add(a, b, out=dest) if kernel.op == OP_ADD else np.multiply(
                a, b, out=dest
            )
        for offset, slot in enumerate(kernel.source_slots):
            got = block[kernel.dest_start + offset]
            want = reference[int(slot)]
            if not np.array_equal(got, want, equal_nan=True):
                raise EngineMismatchError(
                    f"planned execution diverges from the legacy slot matrix "
                    f"at tape slot {int(slot)}: {got} vs {want}"
                )
    root = block[plan.root_phys]
    if not np.array_equal(root, reference[tape.root_slot], equal_nan=True):
        raise EngineMismatchError(
            "planned execution diverges from the legacy slot matrix at the root"
        )
