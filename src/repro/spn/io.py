"""Serialization of SPNs.

Two formats are supported:

* a line-oriented text format (``.spn``) close to the arithmetic-circuit
  files emitted by PSDD/AC toolchains, which is what the paper's compiler
  consumes ("the compiler directly takes as input the SPNs generated from
  tools like [5]");
* JSON, convenient for interchange with other Python tooling.

Text format, one node per line, children must appear before parents::

    spn 1
    ind <id> <var> <value>
    par <id> <prob>
    sum <id> <k> <child_0> <weight_0> ... <child_{k-1}> <weight_{k-1}>
    usum <id> <k> <child_0> ... <child_{k-1}>
    prod <id> <k> <child_0> ... <child_{k-1}>
    root <id>

Node ids in a file are arbitrary non-negative integers; they are remapped to
dense ids on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .graph import SPN, StructureError
from .nodes import IndicatorLeaf, ParameterLeaf, ProductNode, SumNode

__all__ = ["dumps", "loads", "save", "load", "to_json", "from_json", "save_json", "load_json"]

_HEADER = "spn 1"


def dumps(spn: SPN) -> str:
    """Serialize ``spn`` to the text format (reachable nodes only)."""
    lines: List[str] = [_HEADER]
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            lines.append(f"ind {nid} {node.var} {node.value}")
        elif isinstance(node, ParameterLeaf):
            lines.append(f"par {nid} {node.prob!r}")
        elif isinstance(node, SumNode):
            if node.is_weighted:
                assert node.weights is not None
                parts = " ".join(
                    f"{c} {w!r}" for c, w in zip(node.child_ids, node.weights)
                )
                lines.append(f"sum {nid} {len(node.child_ids)} {parts}")
            else:
                parts = " ".join(str(c) for c in node.child_ids)
                lines.append(f"usum {nid} {len(node.child_ids)} {parts}")
        elif isinstance(node, ProductNode):
            parts = " ".join(str(c) for c in node.child_ids)
            lines.append(f"prod {nid} {len(node.child_ids)} {parts}")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node)!r}")
    lines.append(f"root {spn.root}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> SPN:
    """Parse the text format produced by :func:`dumps`."""
    lines = [ln.strip() for ln in text.splitlines() if ln.strip() and not ln.startswith("#")]
    if not lines or lines[0] != _HEADER:
        raise StructureError(f"missing or unsupported header; expected {_HEADER!r}")
    spn = SPN()
    id_map: Dict[int, int] = {}
    root_declared = False

    def mapped(old: str) -> int:
        key = int(old)
        if key not in id_map:
            raise StructureError(f"node {key} referenced before definition")
        return id_map[key]

    for line in lines[1:]:
        tokens = line.split()
        tag = tokens[0]
        if tag == "root":
            spn.set_root(mapped(tokens[1]))
            root_declared = True
            continue
        old_id = int(tokens[1])
        if old_id in id_map:
            raise StructureError(f"node id {old_id} defined twice")
        if tag == "ind":
            new_id = spn.add_indicator(int(tokens[2]), int(tokens[3]))
        elif tag == "par":
            new_id = spn.add_parameter(float(tokens[2]))
        elif tag == "sum":
            k = int(tokens[2])
            rest = tokens[3:]
            if len(rest) != 2 * k:
                raise StructureError(f"sum node {old_id}: expected {2 * k} fields, got {len(rest)}")
            children = [mapped(rest[2 * i]) for i in range(k)]
            weights = [float(rest[2 * i + 1]) for i in range(k)]
            new_id = spn.add_sum(children, weights=weights)
        elif tag == "usum":
            k = int(tokens[2])
            rest = tokens[3:]
            if len(rest) != k:
                raise StructureError(f"usum node {old_id}: expected {k} children, got {len(rest)}")
            new_id = spn.add_sum([mapped(t) for t in rest])
        elif tag == "prod":
            k = int(tokens[2])
            rest = tokens[3:]
            if len(rest) != k:
                raise StructureError(f"prod node {old_id}: expected {k} children, got {len(rest)}")
            new_id = spn.add_product([mapped(t) for t in rest])
        else:
            raise StructureError(f"unknown record type {tag!r}")
        id_map[old_id] = new_id

    if not root_declared:
        raise StructureError("file has no root declaration")
    return spn


def save(spn: SPN, path: Union[str, Path]) -> None:
    """Write the text format to ``path``."""
    Path(path).write_text(dumps(spn), encoding="utf-8")


def load(path: Union[str, Path]) -> SPN:
    """Read the text format from ``path``."""
    return loads(Path(path).read_text(encoding="utf-8"))


def to_json(spn: SPN) -> dict:
    """Serialize ``spn`` to a JSON-compatible dictionary."""
    nodes = []
    for nid in spn.topological_order():
        node = spn.node(nid)
        if isinstance(node, IndicatorLeaf):
            nodes.append({"id": nid, "type": "indicator", "var": node.var, "value": node.value})
        elif isinstance(node, ParameterLeaf):
            nodes.append({"id": nid, "type": "parameter", "prob": node.prob})
        elif isinstance(node, SumNode):
            record = {"id": nid, "type": "sum", "children": list(node.child_ids)}
            if node.is_weighted:
                assert node.weights is not None
                record["weights"] = list(node.weights)
            nodes.append(record)
        elif isinstance(node, ProductNode):
            nodes.append({"id": nid, "type": "product", "children": list(node.child_ids)})
    return {"format": "repro-spn", "version": 1, "root": spn.root, "nodes": nodes}


def _json_field(record, key: str, context: str):
    """Read a required field, raising :class:`StructureError` when absent.

    JSON documents arrive from disk and from artifact payloads; a missing
    or malformed field must surface as a typed serialization error, never
    as a bare ``KeyError``/``TypeError`` from deep inside reconstruction.
    """
    try:
        return record[key]
    except (KeyError, IndexError, TypeError):
        raise StructureError(f"{context}: missing field {key!r}") from None


def _json_int(value, context: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise StructureError(f"{context}: expected an integer, got {value!r}") from None


def from_json(payload: dict) -> SPN:
    """Deserialize the dictionary produced by :func:`to_json`.

    Malformed documents — missing fields, non-integer ids, children or
    roots referencing undefined nodes — are rejected with
    :class:`~repro.spn.graph.StructureError` (never a bare ``KeyError``),
    so callers layering their own integrity checks (the lifecycle artifact
    loader) can translate every corruption uniformly.
    """
    if not isinstance(payload, dict) or payload.get("format") != "repro-spn":
        raise StructureError("not a repro-spn JSON document")
    records = _json_field(payload, "nodes", "repro-spn document")
    if not isinstance(records, list):
        raise StructureError("repro-spn document: 'nodes' must be a list")
    spn = SPN()
    id_map: Dict[int, int] = {}

    def mapped_children(record, context: str):
        children = _json_field(record, "children", context)
        if not isinstance(children, list):
            raise StructureError(f"{context}: 'children' must be a list")
        out = []
        for c in children:
            child = _json_int(c, context)
            if child not in id_map:
                raise StructureError(
                    f"{context}: child {child} referenced before definition"
                )
            out.append(id_map[child])
        return out

    for position, record in enumerate(records):
        context = f"node record {position}"
        kind = _json_field(record, "type", context)
        old_id = _json_int(_json_field(record, "id", context), context)
        context = f"node {old_id}"
        if old_id in id_map:
            raise StructureError(f"{context}: defined twice")
        if kind == "indicator":
            new_id = spn.add_indicator(
                _json_int(_json_field(record, "var", context), context),
                _json_int(_json_field(record, "value", context), context),
            )
        elif kind == "parameter":
            new_id = spn.add_parameter(float(_json_field(record, "prob", context)))
        elif kind == "sum":
            children = mapped_children(record, context)
            weights = record.get("weights") if isinstance(record, dict) else None
            new_id = spn.add_sum(children, weights=weights)
        elif kind == "product":
            new_id = spn.add_product(mapped_children(record, context))
        else:
            raise StructureError(f"{context}: unknown node type {kind!r}")
        id_map[old_id] = new_id
    root = _json_int(_json_field(payload, "root", "repro-spn document"), "root")
    if root not in id_map:
        raise StructureError(f"root {root} references an undefined node")
    spn.set_root(id_map[root])
    return spn


def save_json(spn: SPN, path: Union[str, Path]) -> None:
    """Write the JSON format to ``path``."""
    Path(path).write_text(json.dumps(to_json(spn)), encoding="utf-8")


def load_json(path: Union[str, Path]) -> SPN:
    """Read the JSON format from ``path``."""
    return from_json(json.loads(Path(path).read_text(encoding="utf-8")))
