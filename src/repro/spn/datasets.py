"""Synthetic binary datasets used by the structure learner and the examples.

The benchmark datasets referenced by the paper (UCI [3] and the Lowd-Davis
suite [7]) are not redistributable inside this offline environment, so this
module provides a generator of *synthetic* datasets with a controllable
dependence structure: variables are grouped into latent clusters; variables
within a cluster are correlated through a shared hidden cause, and clusters
are mutually independent.  This is exactly the kind of structure LearnSPN-
style learners exploit (independence tests for product splits, instance
clustering for sum splits), so the learned networks exhibit realistic shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["DatasetSpec", "generate_dataset", "train_test_split", "empirical_loglik"]


@dataclass(frozen=True)
class DatasetSpec:
    """Specification of a synthetic binary dataset.

    Attributes
    ----------
    n_vars:
        Number of binary variables (columns).
    n_rows:
        Number of samples (rows).
    n_clusters:
        Number of latent variable clusters; variables in the same cluster are
        correlated, variables in different clusters are independent.
    noise:
        Probability of flipping a variable away from its cluster's hidden
        cause.  ``0.5`` makes all variables independent noise; small values
        create strong intra-cluster correlation.
    seed:
        PRNG seed.
    """

    n_vars: int
    n_rows: int
    n_clusters: int = 4
    noise: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_vars < 1 or self.n_rows < 1:
            raise ValueError("n_vars and n_rows must be >= 1")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if not 0.0 <= self.noise <= 0.5:
            raise ValueError("noise must be in [0, 0.5]")


def generate_dataset(spec: DatasetSpec) -> np.ndarray:
    """Generate a binary data matrix of shape ``(n_rows, n_vars)``.

    Each variable is assigned round-robin to one of ``n_clusters`` latent
    binary causes.  For every row, each cause is drawn uniformly and every
    variable copies its cause with probability ``1 - noise``.
    """
    rng = np.random.default_rng(spec.seed)
    n_clusters = min(spec.n_clusters, spec.n_vars)
    cluster_of = np.arange(spec.n_vars) % n_clusters
    causes = rng.integers(0, 2, size=(spec.n_rows, n_clusters))
    flips = rng.random(size=(spec.n_rows, spec.n_vars)) < spec.noise
    data = causes[:, cluster_of]
    data = np.where(flips, 1 - data, data)
    return data.astype(np.int64)


def train_test_split(
    data: np.ndarray, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffle ``data`` and split it into train and test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(data.shape[0])
    n_test = max(1, int(round(test_fraction * data.shape[0])))
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    return data[train_idx], data[test_idx]


def empirical_loglik(log_probs: Sequence[float]) -> float:
    """Average log-likelihood of a set of per-sample log probabilities."""
    values: List[float] = [float(v) for v in log_probs]
    if not values:
        raise ValueError("log_probs must not be empty")
    return float(np.mean(values))
