"""Vectorized execution of operation lists (the ``"vectorized"`` engine).

The reference executors in this package interpret an SPN one node (or one
binary operation) at a time in pure Python.  That is the right shape for a
functional ground truth, but it is orders of magnitude too slow for figure
reproductions and design-space sweeps over large networks and large evidence
batches.  This module provides the standard fix (the approach SPFlow and
other tensorized SPN libraries take): compile the network **once** into a
flat NumPy tape and then evaluate whole evidence batches with a handful of
fused array kernels.

Compilation (:func:`compile_tape`) lowers an
:class:`~repro.spn.linearize.OperationList` in three steps:

1. **Levelize** — operations are grouped by ASAP dependency level
   (:meth:`OperationList.levels`); operations within a level are mutually
   independent, so each level can execute as one array operation.
2. **Reorder** — operations are permuted so that every ``(level, opcode)``
   group writes a *contiguous* range of slots.  The scatter that a naive
   tape needs on its destination side becomes a plain slice assignment, and
   operand references are remapped through the resulting permutation.
3. **Pack** — each group becomes one :class:`TapeKernel` carrying its two
   gather index vectors and its destination slice.

Execution (:meth:`CompiledTape.execute_batch`) runs one
``np.add``/``np.multiply`` (or ``np.logaddexp``/``np.add`` in the log
domain) per kernel, reading operands through copy-free slice views when a
kernel's operand range is contiguous (the common case after the reorder
step) and fancy-indexed gathers otherwise.  The whole batch is evaluated
with ``O(depth)`` NumPy calls instead of ``O(n_operations * n_rows)``
Python bytecode.  The value buffer depends on the execution mode
(``execution=``, see :mod:`repro.spn.memplan`): the default **planned**
mode runs a memory-planned physical-slot program whose working set is the
tape's liveness peak (several times smaller than ``n_slots``), **sharded**
adds row-shard thread parallelism for very large batches, and **legacy**
keeps the original dense ``(n_slots, n_rows)`` slot matrix — all three
bit-identical.

A log-domain variant (``log_domain=True``) evaluates the same tape with
``+`` for products and ``logaddexp`` for sums, which is numerically safe for
deep networks whose linear-domain values underflow.

Evidence batches follow the canonical convention documented at
:data:`repro.spn.evaluate.MARGINALIZED`: integer arrays of shape
``(n_rows, n_vars)`` where ``-1`` marks an unobserved variable.

Cross-checking: :attr:`CompiledTape.slot_map` maps every slot of the source
operation list to its tape slot, so a full slot-by-slot comparison against
:meth:`OperationList.execute_values` is possible (the tests and the
``check=True`` paths of the engine dispatchers use this).
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..observability.profile import active_profiler
from .evaluate import MARGINALIZED, as_evidence_array
from .graph import SPN, StructureError
from .linearize import (
    OP_ADD,
    OP_MUL,
    InputSlot,
    OperationList,
    input_slots_from_payload,
    input_slots_to_payload,
    linearize,
)
from .memplan import (
    DEFAULT_FUSE_WIDTH,
    ExecutionOptions,
    MemoryPlan,
    _as_stride_slice as _as_slice,
    _blocked_plan,
    execute_sharded,
    plan_memory,
    resolve_execution,
    verify_plan,
)

__all__ = [
    "ENGINES",
    "CHECK_ROWS",
    "EngineMismatchError",
    "ExecutionOptions",
    "TapeKernel",
    "CompiledTape",
    "compile_tape",
    "cached_tape",
    "adopt_tape",
    "tape_to_payload",
    "tape_from_payload",
    "cross_check",
    "resolve_engine",
    "resolve_execution",
]

#: Names accepted by every ``engine=`` switch in the repository.
ENGINES = ("python", "vectorized")

#: Rows used by ``check=True`` cross-checks between execution engines.
CHECK_ROWS = 8

#: Target size of the per-block slot matrix in :meth:`CompiledTape.execute_batch`;
#: chosen to keep the working set inside the last-level cache.
_BLOCK_BYTES = 8 << 20


class EngineMismatchError(AssertionError):
    """Raised when a cross-check between two execution engines disagrees."""


def cross_check(
    result: np.ndarray,
    data: np.ndarray,
    reference_fn: Callable[[np.ndarray], np.ndarray],
    rtol: float = 1e-9,
    atol: float = 0.0,
    what: str = "vectorized engine",
) -> None:
    """Compare a vectorized result against a reference on a batch prefix.

    Evaluates ``reference_fn`` on the first :data:`CHECK_ROWS` rows of
    ``data`` and raises :class:`EngineMismatchError` when the corresponding
    prefix of ``result`` disagrees.  This is the single implementation behind
    every ``check=True`` switch in the repository.
    """
    head = np.asarray(data)[:CHECK_ROWS]
    reference = reference_fn(head)
    if not np.allclose(result[: len(head)], reference, rtol=rtol, atol=atol, equal_nan=True):
        raise EngineMismatchError(
            f"{what} disagrees with the python reference: "
            f"{result[: len(head)]} vs {reference}"
        )


def resolve_engine(engine: str) -> str:
    """Validate an ``engine=`` argument and return it.

    Raises ``ValueError`` with the list of known engines for anything that is
    not one of :data:`ENGINES`.
    """
    if engine not in ENGINES:
        known = ", ".join(repr(e) for e in ENGINES)
        raise ValueError(f"unknown engine {engine!r}; expected one of {known}")
    return engine


def canonical_value_tables(
    ind_slots: np.ndarray,
    ind_vars: np.ndarray,
    ind_values: np.ndarray,
    const_slots: np.ndarray,
    const_probs: np.ndarray,
    n_slots: int,
) -> tuple:
    """Canonical value ids for input slots plus sorted signature tables.

    Returns ``(canon, ind_keys, ind_first, base, uniq_probs, const_first,
    is_const, const_prob)``: ``canon`` maps every slot to the lowest slot
    carrying the same *value* (operation slots map to themselves), the key
    tables answer signature lookups via ``searchsorted``.  Computed once per
    tape construction (``CompiledTape.__post_init__``) and consumed by the
    static verifier (:mod:`repro.statics.verifier`); the grouping uses a
    plain sort + ``searchsorted`` inverse — cheaper than asking
    :func:`numpy.unique` for indices, which argsorts.  Input slots ascend,
    so a reversed scatter leaves the first — lowest — slot per signature.
    """
    canon = np.arange(n_slots, dtype=np.int64)
    is_const = np.zeros(n_slots, dtype=bool)
    const_prob = np.full(n_slots, np.nan, dtype=np.float64)
    base = int(ind_values.max()) + 1 if ind_values.size else 1
    if ind_slots.size:
        keys = ind_vars.astype(np.int64) * base + ind_values
        ind_keys = np.unique(keys)
        inverse = np.searchsorted(ind_keys, keys)
        ind_first = np.empty(ind_keys.size, dtype=np.int64)
        ind_first[inverse[::-1]] = np.asarray(ind_slots, dtype=np.int64)[::-1]
        canon[ind_slots] = ind_first[inverse]
    else:
        ind_keys = np.empty(0, dtype=np.int64)
        ind_first = np.empty(0, dtype=np.int64)
    if const_slots.size:
        is_const[const_slots] = True
        const_prob[const_slots] = const_probs
        uniq_probs = np.unique(const_probs)
        cinverse = np.searchsorted(uniq_probs, const_probs)
        const_first = np.empty(uniq_probs.size, dtype=np.int64)
        const_first[cinverse[::-1]] = np.asarray(const_slots, dtype=np.int64)[::-1]
        canon[const_slots] = const_first[cinverse]
    else:
        uniq_probs = np.empty(0, dtype=np.float64)
        const_first = np.empty(0, dtype=np.int64)
    return (canon, ind_keys, ind_first, base, uniq_probs, const_first, is_const, const_prob)


@dataclass(frozen=True)
class TapeKernel:
    """One fused array operation: a ``(level, opcode)`` group of the tape.

    Executes ``slots[dest_start:dest_stop] = gather(arg0) (op) gather(arg1)``
    where ``arg0``/``arg1`` are slot-index vectors of length
    ``dest_stop - dest_start``.
    """

    level: int
    op: str
    dest_start: int
    dest_stop: int
    arg0: np.ndarray
    arg1: np.ndarray

    @property
    def width(self) -> int:
        return self.dest_stop - self.dest_start

    @property
    def is_add(self) -> bool:
        return self.op == OP_ADD


@dataclass
class CompiledTape:
    """An operation list compiled into a levelized NumPy tape.

    Slots ``0..n_inputs-1`` hold the input vector (same
    :class:`~repro.spn.linearize.InputSlot` layout as the source operation
    list); the remaining slots hold operation results in tape order, which
    differs from the source order — use :attr:`slot_map` to translate.
    """

    inputs: List[InputSlot]
    kernels: List[TapeKernel]
    root_slot: int
    #: Maps source operation-list slots to tape slots (identity on inputs).
    slot_map: Dict[int, int] = field(repr=False, default_factory=dict)

    # Precomputed index vectors for the vectorized input encoding.
    _ind_slots: np.ndarray = field(repr=False, default=None)
    _ind_vars: np.ndarray = field(repr=False, default=None)
    _ind_values: np.ndarray = field(repr=False, default=None)
    _const_slots: np.ndarray = field(repr=False, default=None)
    _const_probs: np.ndarray = field(repr=False, default=None)

    def __post_init__(self) -> None:
        ind = [s for s in self.inputs if s.kind == "indicator"]
        const = [s for s in self.inputs if s.kind != "indicator"]
        self._ind_slots = np.array([s.index for s in ind], dtype=np.intp)
        self._ind_vars = np.array([s.var for s in ind], dtype=np.intp)
        self._ind_values = np.array([s.value for s in ind], dtype=np.int64)
        self._const_slots = np.array([s.index for s in const], dtype=np.intp)
        self._const_probs = np.array([s.prob for s in const], dtype=np.float64)
        # Log-domain passes fill the input block directly: indicator inputs
        # are only ever 1.0/0.0 (log 0.0/-inf, no transcendental needed) and
        # the constants' logs are precomputed here, once per tape.
        with np.errstate(divide="ignore"):
            self._const_log_probs = np.log(self._const_probs)
        # Contiguous operand ranges execute as copy-free slice views.
        self._arg0_views = [_as_slice(k.arg0) for k in self.kernels]
        self._arg1_views = [_as_slice(k.arg1) for k in self.kernels]
        # Memory plans, cached per (fuse, fuse_width); see memory_plan().
        # The lock makes concurrent first calls (serving worker pools
        # prewarming one tape) share a single plan — and therefore a
        # single set of per-thread scratch buffers.
        self._plan_cache: Dict[Tuple[bool, int], MemoryPlan] = {}
        self._plan_lock = threading.Lock()
        # Cached shape and canonical-value tables.  Kernel *structure* is
        # fixed at construction (structural edits build a fresh tape), so the
        # width sum is a constant; the tables depend only on ``inputs`` and
        # let the static verifier resolve value signatures without rebuilding
        # them per verification — it then trusts only this constructor, the
        # same contract as the index vectors above.
        self._n_operations = int(sum(k.width for k in self.kernels))
        self._canon_tables = canonical_value_tables(
            self._ind_slots,
            self._ind_vars,
            self._ind_values,
            self._const_slots,
            self._const_probs,
            len(self.inputs) + self._n_operations,
        )

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_operations(self) -> int:
        return self._n_operations

    @property
    def n_slots(self) -> int:
        return self.n_inputs + self.n_operations

    @property
    def n_levels(self) -> int:
        return self.kernels[-1].level if self.kernels else 0

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    # ------------------------------------------------------------------ #
    # Input encoding
    # ------------------------------------------------------------------ #
    def input_matrix(
        self,
        data: np.ndarray,
        log_domain: bool = False,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Encode an evidence batch as the ``(n_inputs, n_rows)`` input block.

        ``data`` is an integer array of shape ``(n_rows, n_vars)`` using the
        :data:`~repro.spn.evaluate.MARGINALIZED` convention: any negative
        value marks an unobserved variable, and variables whose index
        exceeds the number of columns are likewise treated as unobserved,
        mirroring :func:`repro.spn.evaluate.evaluate_batch`.  The dtype is
        validated by :func:`repro.spn.evaluate.as_evidence_array` (integral
        floats coerce exactly, fractional/NaN entries raise).

        With ``log_domain`` the block holds log-values directly: indicator
        hits/misses become ``0.0``/``-inf`` without a transcendental log
        over the whole block, and constants use the tape's precomputed log
        probabilities — a large share of a log pass's cost on wide batches.
        ``out`` (shape ``(n_inputs, n_rows)``) receives the encoding in
        place, letting :meth:`execute_slots` fill its slot matrix without an
        intermediate block copy.
        """
        data = as_evidence_array(data)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D evidence array, got shape {data.shape}")
        n_rows, n_cols = data.shape
        hit_value, miss_value = (0.0, -np.inf) if log_domain else (1.0, 0.0)
        block = (
            out if out is not None else np.empty((self.n_inputs, n_rows), dtype=np.float64)
        )
        if self._ind_slots.size:
            if n_cols == 0:
                block[self._ind_slots] = hit_value
            else:
                # Clip out-of-range variable indices to a valid column, then
                # force those indicators to "hit" (unobserved) with the mask.
                in_range = self._ind_vars < n_cols
                cols = data[:, np.minimum(self._ind_vars, n_cols - 1)].T
                hit = (cols < 0) | (cols == self._ind_values[:, None])
                hit |= ~in_range[:, None]
                block[self._ind_slots] = np.where(hit, hit_value, miss_value)
        if self._const_slots.size:
            block[self._const_slots] = (
                self._const_log_probs if log_domain else self._const_probs
            )[:, None]
        return block

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute_slots(
        self, data: np.ndarray, log_domain: bool = False, profiler=None
    ) -> np.ndarray:
        """Run the tape on an evidence batch and return all slot values.

        Returns the full ``(n_slots, n_rows)`` value matrix (in tape slot
        order); :meth:`execute_batch` is the root-only convenience wrapper.
        ``profiler`` (a :class:`repro.observability.TapeProfiler`) routes to
        an instrumented copy of the kernel loop; ``None`` — the default —
        keeps this loop untouched.
        """
        data = as_evidence_array(data)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D evidence array, got shape {data.shape}")
        if profiler is not None:
            return self._execute_slots_profiled(data, log_domain, profiler)
        n_rows = data.shape[0]
        slots = np.empty((self.n_slots, n_rows), dtype=np.float64)
        self.input_matrix(data, log_domain=log_domain, out=slots[: self.n_inputs])
        for kernel, view0, view1 in zip(self.kernels, self._arg0_views, self._arg1_views):
            # A contiguous operand range is a copy-free view; scattered
            # operands gather through fancy indexing.  Operands always live
            # below dest_start, so writing dest never aliases them.
            a = slots[view0 if view0 is not None else kernel.arg0]
            b = slots[view1 if view1 is not None else kernel.arg1]
            dest = slots[kernel.dest_start : kernel.dest_stop]
            if log_domain:
                # Products add log-values; sums combine with logaddexp, which
                # handles -inf (zero probability) operands exactly.
                np.logaddexp(a, b, out=dest) if kernel.is_add else np.add(a, b, out=dest)
            else:
                np.add(a, b, out=dest) if kernel.is_add else np.multiply(a, b, out=dest)
        return slots

    def _execute_slots_profiled(
        self, data: np.ndarray, log_domain: bool, profiler
    ) -> np.ndarray:
        """Instrumented twin of the :meth:`execute_slots` loop (legacy mode).

        One sample per tape kernel (keyed ``k<index>`` in tape order) plus
        an ``input_matrix`` pseudo-kernel for the dense input encoding;
        bytes count the two operand reads and the destination write of each
        lane at 8 bytes per value.
        """
        n_rows = data.shape[0]
        slots = np.empty((self.n_slots, n_rows), dtype=np.float64)
        t_pass = time.perf_counter()
        t0 = t_pass
        self.input_matrix(data, log_domain=log_domain, out=slots[: self.n_inputs])
        profiler.record(
            "input_matrix", "enc", self.n_inputs,
            time.perf_counter() - t0, n_rows, 8 * n_rows * self.n_inputs,
        )
        for i, (kernel, view0, view1) in enumerate(
            zip(self.kernels, self._arg0_views, self._arg1_views)
        ):
            t0 = time.perf_counter()
            a = slots[view0 if view0 is not None else kernel.arg0]
            b = slots[view1 if view1 is not None else kernel.arg1]
            dest = slots[kernel.dest_start : kernel.dest_stop]
            if log_domain:
                np.logaddexp(a, b, out=dest) if kernel.is_add else np.add(a, b, out=dest)
            else:
                np.add(a, b, out=dest) if kernel.is_add else np.multiply(a, b, out=dest)
            profiler.record(
                f"k{i:03d}", kernel.op, kernel.width,
                time.perf_counter() - t0, n_rows, 8 * n_rows * kernel.width * 3,
            )
        profiler.record_pass(time.perf_counter() - t_pass)
        return slots

    def memory_plan(
        self, fuse: bool = True, fuse_width: Optional[int] = None
    ) -> MemoryPlan:
        """The tape's :class:`~repro.spn.memplan.MemoryPlan` (cached).

        Planning runs once per tape and parameter set; the plan is what the
        default (``"planned"``) and ``"sharded"`` execution modes run, with
        a working set of ``plan.n_physical`` rows instead of the legacy
        ``n_slots``.
        """
        width = DEFAULT_FUSE_WIDTH if fuse_width is None else int(fuse_width)
        key = (bool(fuse), width)
        with self._plan_lock:
            plan = self._plan_cache.get(key)
            if plan is None:
                plan = plan_memory(self, fuse=fuse, fuse_width=width)
                self._plan_cache[key] = plan
        return plan

    def adopt_plan(
        self, plan: MemoryPlan, fuse: bool = True, fuse_width: Optional[int] = None
    ) -> None:
        """Seed the plan cache with a deserialized :class:`MemoryPlan`.

        AOT artifacts (:mod:`repro.lifecycle`) ship the memory plan alongside
        the tape; adopting it makes :meth:`memory_plan` — and therefore the
        planned/sharded executors — run without ever calling
        :func:`~repro.spn.memplan.plan_memory` at load time.
        """
        width = DEFAULT_FUSE_WIDTH if fuse_width is None else int(fuse_width)
        with self._plan_lock:
            self._plan_cache[(bool(fuse), width)] = plan

    def execute_batch(
        self,
        data: np.ndarray,
        log_domain: bool = False,
        execution: Union[ExecutionOptions, str, None] = None,
    ) -> np.ndarray:
        """Evaluate the root for a batch of evidence rows.

        Returns a ``(n_rows,)`` vector of root values (log-values with
        ``log_domain=True``).  ``execution`` selects the executor
        (:class:`~repro.spn.memplan.ExecutionOptions` or a bare mode
        string): the default **planned** mode runs the memory-planned
        physical-slot program — working set ``plan.n_physical`` rows
        instead of ``n_slots``, root written directly into the output
        vector — **sharded** additionally fans row shards out on a thread
        pool, and **legacy** keeps the original dense slot matrix.  All
        modes are bit-identical; ``execution.check`` verifies planned
        output against the legacy slot matrix on a batch prefix.  Large
        batches are processed in row blocks sized so the working set stays
        cache-resident (big-batch execution otherwise degrades
        superlinearly once the matrix spills to RAM) — the planned modes
        fit several times more rows per block.
        """
        data = np.asarray(data)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D evidence array, got shape {data.shape}")
        options = resolve_execution(execution)
        n_rows = data.shape[0]
        # Resolved once per batch: ``None`` (no profiler active) keeps every
        # executor below on its uninstrumented kernel loop.
        profiler = active_profiler()
        if options.mode == "legacy" or not self.kernels:
            # A kernel-less tape (the SPN is a single leaf) has no program
            # to plan; the dense path answers it directly.
            block = max(64, _BLOCK_BYTES // (8 * max(self.n_slots, 1)))
            if n_rows <= block:
                return self.execute_slots(
                    data, log_domain=log_domain, profiler=profiler
                )[self.root_slot].copy()
            out = np.empty(n_rows, dtype=np.float64)
            for start in range(0, n_rows, block):
                chunk = self.execute_slots(
                    data[start : start + block], log_domain=log_domain,
                    profiler=profiler,
                )
                out[start : start + block] = chunk[self.root_slot]
            return out
        plan = self.memory_plan(fuse=options.fuse, fuse_width=options.fuse_width)
        data = as_evidence_array(data)
        if options.check:
            # Static verification precedes the value replay: dataflow
            # violations (aliased slots, understated liveness) are proved
            # wholesale rather than hoped-to-surface on the prefix rows.
            # Memoized per plan object — checked batches pay it once.
            if not getattr(plan, "_statics_verified", False):
                from ..statics.verifier import verify_compiled

                verify_compiled(self, plan)
                plan._statics_verified = True
            verify_plan(self, plan, data[:CHECK_ROWS], log_domain=log_domain)
        block = max(64, _BLOCK_BYTES // (8 * max(plan.n_physical, 1)))
        out = np.empty(n_rows, dtype=np.float64)
        if options.mode == "sharded":
            return execute_sharded(
                plan, data, log_domain=log_domain, out=out,
                options=options, block_rows=block, profiler=profiler,
            )
        _blocked_plan(plan, data, log_domain, out, block, profiler)
        return out

    def execute(
        self, evidence: Optional[Mapping[int, int]] = None, log_domain: bool = False
    ) -> float:
        """Single-evidence convenience wrapper (mirrors ``OperationList.execute``)."""
        n_vars = int(max((s.var for s in self.inputs if s.kind == "indicator"), default=-1)) + 1
        row = np.full((1, max(n_vars, 1)), MARGINALIZED, dtype=np.int64)
        for var, value in (evidence or {}).items():
            if 0 <= var < n_vars:
                row[0, var] = value
        return float(self.execute_batch(row, log_domain=log_domain)[0])


def _group_operations(ops: OperationList) -> List[List[int]]:
    """Source operation indices grouped by (ASAP level, opcode), in tape order."""
    levels = ops.levels()
    groups: Dict[tuple, List[int]] = {}
    for op in ops.operations:
        groups.setdefault((levels[op.index], op.op), []).append(op.index)
    return [groups[key] for key in sorted(groups)]


def compile_tape(
    source: Union[OperationList, SPN], decompose: str = "balanced"
) -> CompiledTape:
    """Compile an operation list (or an SPN) into a :class:`CompiledTape`.

    Accepts either an already-lowered
    :class:`~repro.spn.linearize.OperationList` or an
    :class:`~repro.spn.graph.SPN`, which is first lowered with
    :func:`~repro.spn.linearize.linearize` (``decompose`` is only used in
    that case).  Compilation is pure Python and runs once per network; the
    resulting tape can be reused across arbitrarily many batches.
    """
    ops = source if isinstance(source, OperationList) else linearize(source, decompose)
    n_inputs = ops.n_inputs
    levels = ops.levels()

    slot_map: Dict[int, int] = {s: s for s in range(n_inputs)}
    tape_position = n_inputs
    grouped = _group_operations(ops)
    for group in grouped:
        for op_index in group:
            slot_map[n_inputs + op_index] = tape_position
            tape_position += 1

    kernels: List[TapeKernel] = []
    dest = n_inputs
    for group in grouped:
        first = ops.operations[group[0]]
        arg0 = np.array([slot_map[ops.operations[i].arg0] for i in group], dtype=np.intp)
        arg1 = np.array([slot_map[ops.operations[i].arg1] for i in group], dtype=np.intp)
        kernels.append(
            TapeKernel(
                level=levels[first.index],
                op=first.op,
                dest_start=dest,
                dest_stop=dest + len(group),
                arg0=arg0,
                arg1=arg1,
            )
        )
        dest += len(group)

    return CompiledTape(
        inputs=list(ops.inputs),
        kernels=kernels,
        root_slot=slot_map[ops.root_slot],
        slot_map=slot_map,
    )


# --------------------------------------------------------------------------- #
# Per-object tape cache
# --------------------------------------------------------------------------- #
#: id(source) -> (weakref to source, fingerprint, pinned children, tape).
#: Keyed by identity because neither SPN nor OperationList is hashable;
#: entries are evicted when the source object is garbage collected.
_TAPE_CACHE: Dict[int, Tuple["weakref.ref", tuple, tuple, CompiledTape]] = {}


def _fingerprint_parts(source: Union[OperationList, SPN]) -> Tuple[tuple, tuple]:
    # InputSlot, Operation and every SPN node are immutable value objects, so
    # any structural or parameter change replaces objects and shows up in the
    # children tuple; collecting it is orders of magnitude cheaper than
    # recompiling.
    if isinstance(source, OperationList):
        return ("ops", source.root_slot), (*source.inputs, *source.operations)
    return ("spn", source.root), tuple(source.nodes())


def cached_tape(source: Union[OperationList, SPN]) -> CompiledTape:
    """Compile ``source`` once and reuse the tape across calls.

    The cache is keyed on object identity plus a cheap content fingerprint:
    the object ids of the SPN's nodes, or of the operation list's inputs
    and operations — all immutable value objects, so any change replaces
    them.  The cache entry holds strong references to the fingerprinted
    children, so a garbage-collected child's address can never be reused by
    a replacement object while the entry is alive (an id match therefore
    always means "same objects").  Re-evaluating the same network pays the
    one-off compilation only once; a mutated network recompiles
    automatically.  The engine dispatchers (``evaluate_batch`` and friends)
    route through this.
    """
    key = id(source)
    tag, children = _fingerprint_parts(source)
    fingerprint = (tag, tuple(map(id, children)))
    entry = _TAPE_CACHE.get(key)
    if entry is not None:
        ref, cached_fingerprint, _, tape = entry
        if ref() is source and cached_fingerprint == fingerprint:
            return tape
    tape = compile_tape(source)
    ref = weakref.ref(source, lambda _, key=key: _TAPE_CACHE.pop(key, None))
    _TAPE_CACHE[key] = (ref, fingerprint, children, tape)
    return tape


def adopt_tape(source: Union[OperationList, SPN], tape: CompiledTape) -> CompiledTape:
    """Seed the tape cache so ``source`` evaluates through ``tape``.

    The AOT-artifact loader (:mod:`repro.lifecycle`) uses this to attach a
    deserialized tape to its reconstructed SPN: every evaluation dispatcher
    (``evaluate_batch`` and friends) routes through :func:`cached_tape`, so
    after adoption the whole query surface runs on the shipped tape with no
    recompilation.  The entry is stored exactly like a :func:`cached_tape`
    miss, so later structural mutation of ``source`` still triggers a fresh
    compile.
    """
    key = id(source)
    tag, children = _fingerprint_parts(source)
    fingerprint = (tag, tuple(map(id, children)))
    ref = weakref.ref(source, lambda _, key=key: _TAPE_CACHE.pop(key, None))
    _TAPE_CACHE[key] = (ref, fingerprint, children, tape)
    return tape


# --------------------------------------------------------------------------- #
# Serialization (AOT artifacts)
# --------------------------------------------------------------------------- #
def tape_to_payload(tape: CompiledTape) -> dict:
    """Serialize a :class:`CompiledTape` to a JSON-compatible dictionary.

    Only the four declarative fields are stored — ``__post_init__`` rebuilds
    every derived index structure on reconstruction, so a round-tripped tape
    is state-for-state identical to a freshly compiled one.
    """
    return {
        "inputs": input_slots_to_payload(tape.inputs),
        "kernels": [
            [k.level, k.op, k.dest_start, k.dest_stop, k.arg0.tolist(), k.arg1.tolist()]
            for k in tape.kernels
        ],
        "root_slot": tape.root_slot,
        "slot_map": {str(s): t for s, t in tape.slot_map.items()},
    }


def tape_from_payload(payload: dict) -> CompiledTape:
    """Rebuild a tape from :func:`tape_to_payload` output, validating it.

    Truncated kernel records, operand indices reaching into a kernel's own
    (or a later) destination range, and out-of-range roots raise
    :class:`~repro.spn.graph.StructureError` — the artifact loader
    translates these into its typed corruption errors.
    """
    if not isinstance(payload, dict):
        raise StructureError("tape section: expected a dict")
    inputs = input_slots_from_payload(payload.get("inputs"))
    records = payload.get("kernels")
    if not isinstance(records, list):
        raise StructureError("tape section: 'kernels' must be a list")
    n_inputs = len(inputs)
    kernels: List[TapeKernel] = []
    dest_cursor = n_inputs
    for position, record in enumerate(records):
        context = f"tape kernel record {position}"
        if not isinstance(record, (list, tuple)) or len(record) != 6:
            raise StructureError(f"{context}: truncated record, expected 6 fields")
        level, op, dest_start, dest_stop, arg0, arg1 = record
        try:
            level = int(level)
            dest_start, dest_stop = int(dest_start), int(dest_stop)
            arg0 = np.asarray(arg0, dtype=np.intp)
            arg1 = np.asarray(arg1, dtype=np.intp)
        except (TypeError, ValueError):
            raise StructureError(f"{context}: malformed field values") from None
        if op not in (OP_ADD, OP_MUL):
            raise StructureError(f"{context}: unknown opcode {op!r}")
        if dest_start != dest_cursor or dest_stop <= dest_start:
            raise StructureError(f"{context}: destination range is not contiguous")
        width = dest_stop - dest_start
        if arg0.ndim != 1 or arg1.ndim != 1 or arg0.size != width or arg1.size != width:
            raise StructureError(
                f"{context}: truncated operand vectors, expected length {width}"
            )
        # Operands must already be defined: tape order guarantees every
        # operand slot lies strictly below the kernel's destination range.
        for arg in (arg0, arg1):
            if arg.size and (int(arg.min()) < 0 or int(arg.max()) >= dest_start):
                raise StructureError(
                    f"{context}: operand references an undefined slot"
                )
        kernels.append(
            TapeKernel(
                level=level, op=op, dest_start=dest_start, dest_stop=dest_stop,
                arg0=arg0, arg1=arg1,
            )
        )
        dest_cursor = dest_stop
    try:
        root_slot = int(payload.get("root_slot"))
    except (TypeError, ValueError):
        raise StructureError("tape section: malformed root_slot") from None
    n_slots = dest_cursor
    if not 0 <= root_slot < max(n_slots, 1):
        raise StructureError(f"tape section: root_slot {root_slot} out of range")
    slot_map_records = payload.get("slot_map", {})
    if not isinstance(slot_map_records, dict):
        raise StructureError("tape section: 'slot_map' must be a dict")
    slot_map: Dict[int, int] = {}
    for key, value in slot_map_records.items():
        try:
            source, target = int(key), int(value)
        except (TypeError, ValueError):
            raise StructureError("tape section: malformed slot_map entry") from None
        if not 0 <= target < max(n_slots, 1):
            raise StructureError(
                f"tape section: slot_map target for slot {source} out of range"
            )
        slot_map[source] = target
    return CompiledTape(
        inputs=inputs, kernels=kernels, root_slot=root_slot, slot_map=slot_map
    )
