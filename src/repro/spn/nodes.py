"""Node types of a Sum-Product Network (SPN).

An SPN (also called an arithmetic circuit) is a rooted directed acyclic graph
whose internal nodes are sums and products and whose leaves are either
*indicator* variables (lambda_{X=x}, set from the evidence at query time) or
*parameter* leaves (constants such as edge weights or leaf probabilities).

The classes in this module are intentionally small value objects.  All graph
level behaviour (scopes, validity, evaluation, linearization) lives in
:mod:`repro.spn.graph` and its sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

__all__ = [
    "NodeId",
    "Node",
    "LeafNode",
    "IndicatorLeaf",
    "ParameterLeaf",
    "SumNode",
    "ProductNode",
    "is_leaf",
    "is_internal",
]

# Node identifiers are plain integers; the SPN class assigns them densely.
NodeId = int


@dataclass(frozen=True)
class Node:
    """Base class for all SPN nodes.

    Attributes
    ----------
    id:
        Integer identifier, unique within one :class:`~repro.spn.graph.SPN`.
    """

    id: NodeId

    @property
    def kind(self) -> str:
        """Short lowercase tag identifying the node type."""
        raise NotImplementedError

    @property
    def children(self) -> Tuple[NodeId, ...]:
        """Identifiers of the child nodes (empty for leaves)."""
        return ()


@dataclass(frozen=True)
class LeafNode(Node):
    """Common base class for leaf nodes (no children)."""

    @property
    def children(self) -> Tuple[NodeId, ...]:
        return ()


@dataclass(frozen=True)
class IndicatorLeaf(LeafNode):
    """Indicator leaf lambda_{var = value}.

    During evaluation the leaf takes value ``1.0`` when the evidence assigns
    ``value`` to ``var`` (or when ``var`` is unobserved and the query is a
    marginal), and ``0.0`` otherwise.
    """

    var: int = 0
    value: int = 0

    @property
    def kind(self) -> str:
        return "indicator"

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"I{self.id}[x{self.var}={self.value}]"


@dataclass(frozen=True)
class ParameterLeaf(LeafNode):
    """Constant-valued leaf (a model parameter).

    Parameter leaves hold probabilities or weights that were moved into the
    leaf layer so that the internal nodes form a pure +/x computation graph,
    exactly as the processor and the GPU kernel expect.
    """

    prob: float = 1.0

    @property
    def kind(self) -> str:
        return "parameter"

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"P{self.id}[{self.prob:.4g}]"


@dataclass(frozen=True)
class SumNode(Node):
    """Weighted sum node.

    ``weights`` may be ``None`` for an unweighted sum (arithmetic-circuit
    style, where the weights already appear as :class:`ParameterLeaf`
    children of product nodes underneath).  When present, ``weights`` must
    have the same length as ``child_ids``.
    """

    child_ids: Tuple[NodeId, ...] = field(default_factory=tuple)
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.weights is not None and len(self.weights) != len(self.child_ids):
            raise ValueError(
                f"sum node {self.id}: {len(self.child_ids)} children but "
                f"{len(self.weights)} weights"
            )
        if len(self.child_ids) == 0:
            raise ValueError(f"sum node {self.id} has no children")

    @property
    def kind(self) -> str:
        return "sum"

    @property
    def children(self) -> Tuple[NodeId, ...]:
        return self.child_ids

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"S{self.id}({len(self.child_ids)})"


@dataclass(frozen=True)
class ProductNode(Node):
    """Product node over two or more children with disjoint scopes."""

    child_ids: Tuple[NodeId, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.child_ids) == 0:
            raise ValueError(f"product node {self.id} has no children")

    @property
    def kind(self) -> str:
        return "product"

    @property
    def children(self) -> Tuple[NodeId, ...]:
        return self.child_ids

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"P{self.id}({len(self.child_ids)})"


def is_leaf(node: Node) -> bool:
    """Return ``True`` when ``node`` is an indicator or parameter leaf."""
    return isinstance(node, LeafNode)


def is_internal(node: Node) -> bool:
    """Return ``True`` when ``node`` is a sum or product node."""
    return isinstance(node, (SumNode, ProductNode))


def normalized_weights(weights: Sequence[float]) -> Tuple[float, ...]:
    """Return ``weights`` rescaled to sum to one.

    Raises
    ------
    ValueError
        If any weight is negative or all weights are zero.
    """
    if any(w < 0 for w in weights):
        raise ValueError("sum-node weights must be non-negative")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("sum-node weights must not all be zero")
    return tuple(float(w) / total for w in weights)
