"""Lowering of an SPN into the flat forms used by all execution backends.

The paper executes SPNs in two equivalent low-level forms:

* **Algorithm 1** — a list of binary operations (``r0 = IN[0] * IN[1]``, ...),
  represented here by :class:`OperationList`;
* **Algorithm 2** — a for-loop over vectors ``O`` (op selector), ``B`` and
  ``C`` (operand pointers), represented here by :class:`VectorProgram`.

Both are produced by :func:`linearize`, which also performs *binarization*:
k-ary sums and products are decomposed into balanced (or chain) trees of
two-operand additions and multiplications, and sum weights are materialized
as constant input slots — exactly the shape the GPU kernel and the custom
processor consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .graph import SPN, StructureError
from .nodes import IndicatorLeaf, ParameterLeaf, ProductNode, SumNode

__all__ = [
    "OP_ADD",
    "OP_MUL",
    "InputSlot",
    "Operation",
    "OperationList",
    "VectorProgram",
    "linearize",
    "input_slots_to_payload",
    "input_slots_from_payload",
]

#: ``InputSlot.kind`` vocabulary (payload validation rejects anything else).
INPUT_KINDS = ("indicator", "parameter", "weight")

OP_ADD = "add"
OP_MUL = "mul"


@dataclass(frozen=True)
class InputSlot:
    """Description of one entry of the input vector ``IN``.

    ``kind`` is one of ``"indicator"``, ``"parameter"`` or ``"weight"``.
    Indicator slots carry ``var``/``value``; parameter and weight slots carry
    a constant ``prob``.
    """

    index: int
    kind: str
    var: int = -1
    value: int = -1
    prob: float = 1.0


def input_slots_to_payload(inputs: Sequence[InputSlot]) -> list:
    """Serialize input slots to a JSON-compatible list of records.

    Probabilities survive a JSON round-trip exactly (``repr`` of a float is
    shortest-round-trip in Python 3), which is what the artifact layer's
    bit-identity guarantee rests on.
    """
    return [[slot.index, slot.kind, slot.var, slot.value, slot.prob] for slot in inputs]


def input_slots_from_payload(records) -> List[InputSlot]:
    """Rebuild input slots from :func:`input_slots_to_payload` output.

    Malformed records raise :class:`~repro.spn.graph.StructureError` so the
    artifact loader can translate corruption uniformly.
    """
    if not isinstance(records, list):
        raise StructureError("input section: expected a list of slot records")
    inputs: List[InputSlot] = []
    for position, record in enumerate(records):
        context = f"input slot record {position}"
        if not isinstance(record, (list, tuple)) or len(record) != 5:
            raise StructureError(f"{context}: expected 5 fields")
        index, kind, var, value, prob = record
        try:
            index, var, value = int(index), int(var), int(value)
            prob = float(prob)
        except (TypeError, ValueError):
            raise StructureError(f"{context}: malformed field values") from None
        if index != position:
            raise StructureError(f"{context}: index {index} out of order")
        if kind not in INPUT_KINDS:
            raise StructureError(f"{context}: unknown slot kind {kind!r}")
        inputs.append(InputSlot(index=index, kind=kind, var=var, value=value, prob=prob))
    return inputs


@dataclass(frozen=True)
class Operation:
    """One binary arithmetic operation ``dest = arg0 (op) arg1``.

    Slot indices ``< n_inputs`` refer to the input vector; larger indices
    refer to results of earlier operations (operation ``i`` writes slot
    ``n_inputs + i``).
    """

    index: int
    op: str
    arg0: int
    arg1: int

    def __post_init__(self) -> None:
        if self.op not in (OP_ADD, OP_MUL):
            raise ValueError(f"unknown opcode {self.op!r}")

    @property
    def is_add(self) -> bool:
        return self.op == OP_ADD

    @property
    def is_mul(self) -> bool:
        return self.op == OP_MUL


@dataclass
class OperationList:
    """Algorithm 1: an SPN lowered to a topologically ordered list of binary ops."""

    inputs: List[InputSlot]
    operations: List[Operation]
    root_slot: int
    #: Maps SPN node id -> slot holding that node's value (for reachable nodes).
    node_slot: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_operations(self) -> int:
        return len(self.operations)

    @property
    def n_slots(self) -> int:
        return self.n_inputs + self.n_operations

    def dest_slot(self, op_index: int) -> int:
        """Slot written by operation ``op_index``."""
        return self.n_inputs + op_index

    def op_counts(self) -> Tuple[int, int]:
        """Return ``(n_additions, n_multiplications)``."""
        adds = sum(1 for op in self.operations if op.is_add)
        return adds, self.n_operations - adds

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def input_vector(self, evidence: Optional[Mapping[int, int]] = None) -> np.ndarray:
        """Build the ``IN`` vector for the given evidence.

        Unobserved variables marginalize to 1.0 in their indicator slots,
        following the evidence convention documented at
        :data:`repro.spn.evaluate.MARGINALIZED` (absent or negative values
        mean "not observed").
        """
        evidence = evidence or {}
        vec = np.empty(self.n_inputs, dtype=np.float64)
        for slot in self.inputs:
            if slot.kind == "indicator":
                observed = evidence.get(slot.var)
                if observed is None or observed < 0:
                    vec[slot.index] = 1.0
                else:
                    vec[slot.index] = 1.0 if observed == slot.value else 0.0
            else:
                vec[slot.index] = slot.prob
        return vec

    def execute_values(self, input_vector: Sequence[float]) -> np.ndarray:
        """Run the operation list on an explicit input vector.

        Returns the full slot array ``A`` of length :attr:`n_slots`.
        """
        if len(input_vector) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input values, got {len(input_vector)}"
            )
        slots = np.empty(self.n_slots, dtype=np.float64)
        slots[: self.n_inputs] = np.asarray(input_vector, dtype=np.float64)
        base = self.n_inputs
        for op in self.operations:
            a = slots[op.arg0]
            b = slots[op.arg1]
            slots[base + op.index] = a + b if op.is_add else a * b
        return slots

    def execute(self, evidence: Optional[Mapping[int, int]] = None) -> float:
        """Evaluate the SPN for the given evidence and return the root value."""
        slots = self.execute_values(self.input_vector(evidence))
        return float(slots[self.root_slot])

    # ------------------------------------------------------------------ #
    # Graph-shape queries used by the performance models and the compiler
    # ------------------------------------------------------------------ #
    def levels(self) -> List[int]:
        """ASAP level of every operation (inputs are level 0).

        Operations in the same level are mutually independent; this is the
        "group" decomposition of Fig. 2(a) used by the GPU implementation.
        """
        level = [0] * self.n_slots
        base = self.n_inputs
        for op in self.operations:
            level[base + op.index] = 1 + max(level[op.arg0], level[op.arg1])
        return [level[base + i] for i in range(self.n_operations)]

    def groups(self) -> List[List[int]]:
        """Operations grouped by ASAP level (list of lists of operation indices)."""
        levels = self.levels()
        if not levels:
            return []
        grouped: List[List[int]] = [[] for _ in range(max(levels))]
        for op_index, lvl in enumerate(levels):
            grouped[lvl - 1].append(op_index)
        return grouped

    def depth(self) -> int:
        """Longest dependency chain, in operations."""
        levels = self.levels()
        return max(levels) if levels else 0

    def fanout(self) -> List[int]:
        """Number of consumers of every slot (inputs and operation results)."""
        counts = [0] * self.n_slots
        for op in self.operations:
            counts[op.arg0] += 1
            counts[op.arg1] += 1
        return counts

    def average_parallelism(self) -> float:
        """Mean number of operations per dependency level."""
        d = self.depth()
        return self.n_operations / d if d else 0.0

    def to_vector_program(self) -> "VectorProgram":
        """Convert to the Algorithm 2 (for-loop over vectors) form."""
        o = np.array([0 if op.is_add else 1 for op in self.operations], dtype=np.int64)
        b = np.array([op.arg0 for op in self.operations], dtype=np.int64)
        c = np.array([op.arg1 for op in self.operations], dtype=np.int64)
        return VectorProgram(
            inputs=list(self.inputs),
            op_select=o,
            operand_b=b,
            operand_c=c,
            root_slot=self.root_slot,
        )

    # ------------------------------------------------------------------ #
    # Serialization (AOT artifacts)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """Serialize to a JSON-compatible dictionary (see :mod:`repro.lifecycle`)."""
        return {
            "inputs": input_slots_to_payload(self.inputs),
            "operations": [[op.index, op.op, op.arg0, op.arg1] for op in self.operations],
            "root_slot": self.root_slot,
            "node_slot": {str(nid): slot for nid, slot in self.node_slot.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "OperationList":
        """Rebuild from :meth:`to_payload` output, validating every reference.

        Truncated records, unknown opcodes, operands referencing slots that
        are not yet defined, and out-of-range roots all raise
        :class:`~repro.spn.graph.StructureError`.
        """
        if not isinstance(payload, dict):
            raise StructureError("operation-list section: expected a dict")
        inputs = input_slots_from_payload(payload.get("inputs"))
        records = payload.get("operations")
        if not isinstance(records, list):
            raise StructureError("operation-list section: 'operations' must be a list")
        n_inputs = len(inputs)
        operations: List[Operation] = []
        for position, record in enumerate(records):
            context = f"operation record {position}"
            if not isinstance(record, (list, tuple)) or len(record) != 4:
                raise StructureError(f"{context}: expected 4 fields")
            index, op, arg0, arg1 = record
            try:
                index, arg0, arg1 = int(index), int(arg0), int(arg1)
            except (TypeError, ValueError):
                raise StructureError(f"{context}: malformed field values") from None
            if index != position:
                raise StructureError(f"{context}: index {index} out of order")
            limit = n_inputs + position  # slots defined so far
            if not (0 <= arg0 < limit and 0 <= arg1 < limit):
                raise StructureError(
                    f"{context}: operand references an undefined slot"
                )
            try:
                operations.append(Operation(index=index, op=op, arg0=arg0, arg1=arg1))
            except ValueError as exc:
                raise StructureError(f"{context}: {exc}") from None
        try:
            root_slot = int(payload.get("root_slot"))
        except (TypeError, ValueError):
            raise StructureError("operation-list section: malformed root_slot") from None
        n_slots = n_inputs + len(operations)
        if not 0 <= root_slot < n_slots:
            raise StructureError(
                f"operation-list section: root_slot {root_slot} out of range"
            )
        node_slot_records = payload.get("node_slot", {})
        if not isinstance(node_slot_records, dict):
            raise StructureError("operation-list section: 'node_slot' must be a dict")
        node_slot: Dict[int, int] = {}
        for key, slot in node_slot_records.items():
            try:
                nid, slot = int(key), int(slot)
            except (TypeError, ValueError):
                raise StructureError(
                    "operation-list section: malformed node_slot entry"
                ) from None
            if not 0 <= slot < n_slots:
                raise StructureError(
                    f"operation-list section: node_slot for node {nid} out of range"
                )
            node_slot[nid] = slot
        return cls(
            inputs=inputs,
            operations=operations,
            root_slot=root_slot,
            node_slot=node_slot,
        )


@dataclass
class VectorProgram:
    """Algorithm 2: the SPN as a for-loop over index vectors.

    ``op_select[i] == 0`` selects a sum, ``1`` selects a product; ``operand_b``
    and ``operand_c`` hold the operand slot indices of operation ``i``.
    """

    inputs: List[InputSlot]
    op_select: np.ndarray
    operand_b: np.ndarray
    operand_c: np.ndarray
    root_slot: int

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_operations(self) -> int:
        return int(self.op_select.shape[0])

    def input_vector(self, evidence: Optional[Mapping[int, int]] = None) -> np.ndarray:
        helper = OperationList(
            inputs=list(self.inputs), operations=[], root_slot=self.root_slot
        )
        return helper.input_vector(evidence)

    def execute(self, evidence: Optional[Mapping[int, int]] = None) -> float:
        """Interpret the vector program exactly as Algorithm 2 does."""
        vec = self.input_vector(evidence)
        m, n = self.n_inputs, self.n_operations
        slots = np.empty(m + n, dtype=np.float64)
        slots[:m] = vec
        for i in range(n):
            a = slots[self.operand_b[i]]
            b = slots[self.operand_c[i]]
            slots[m + i] = a + b if self.op_select[i] == 0 else a * b
        return float(slots[self.root_slot])


class _Lowerer:
    """Stateful helper turning an SPN into an :class:`OperationList`."""

    def __init__(self, spn: SPN, decompose: str) -> None:
        if decompose not in ("balanced", "chain"):
            raise ValueError(f"decompose must be 'balanced' or 'chain', got {decompose!r}")
        self._spn = spn
        self._decompose = decompose
        self._inputs: List[InputSlot] = []
        self._operations: List[Operation] = []
        self._node_slot: Dict[int, int] = {}

    # -- input slot helpers ------------------------------------------------
    def _add_input(self, **kwargs) -> int:
        index = len(self._inputs)
        self._inputs.append(InputSlot(index=index, **kwargs))
        return index

    # -- operation helpers ---------------------------------------------------
    def _emit(self, op: str, arg0: int, arg1: int) -> int:
        index = len(self._operations)
        self._operations.append(Operation(index=index, op=op, arg0=arg0, arg1=arg1))
        return index  # dest slot computed later as n_inputs + index

    def run(self) -> OperationList:
        spn = self._spn
        order = spn.topological_order()

        # First pass: create one input slot per reachable leaf, in id order,
        # so that the input vector layout is deterministic.
        for nid in sorted(order):
            node = spn.node(nid)
            if isinstance(node, IndicatorLeaf):
                self._node_slot[nid] = self._add_input(
                    kind="indicator", var=node.var, value=node.value
                )
            elif isinstance(node, ParameterLeaf):
                self._node_slot[nid] = self._add_input(kind="parameter", prob=node.prob)

        # Weight slots are appended per sum node (in topological order) so the
        # layout only depends on the graph.
        weight_slot: Dict[Tuple[int, int], int] = {}
        for nid in order:
            node = spn.node(nid)
            if isinstance(node, SumNode) and node.is_weighted:
                assert node.weights is not None
                for pos, w in enumerate(node.weights):
                    weight_slot[(nid, pos)] = self._add_input(kind="weight", prob=w)

        n_inputs = len(self._inputs)

        def emit(op: str, a: int, b: int) -> int:
            idx = self._emit(op, a, b)
            return n_inputs + idx

        def reduce_slots(op: str, slots: List[int]) -> int:
            if not slots:
                raise StructureError("cannot reduce an empty operand list")
            if len(slots) == 1:
                return slots[0]
            if self._decompose == "chain":
                acc = slots[0]
                for s in slots[1:]:
                    acc = emit(op, acc, s)
                return acc
            # Balanced reduction: repeatedly pair adjacent operands.  This
            # minimizes the dependency depth, which matters for every backend.
            current = list(slots)
            while len(current) > 1:
                nxt: List[int] = []
                for i in range(0, len(current) - 1, 2):
                    nxt.append(emit(op, current[i], current[i + 1]))
                if len(current) % 2 == 1:
                    nxt.append(current[-1])
                current = nxt
            return current[0]

        # Second pass: lower internal nodes bottom-up.
        for nid in order:
            node = spn.node(nid)
            if isinstance(node, (IndicatorLeaf, ParameterLeaf)):
                continue
            if isinstance(node, ProductNode):
                child_slots = [self._node_slot[c] for c in node.children]
                self._node_slot[nid] = reduce_slots(OP_MUL, child_slots)
            elif isinstance(node, SumNode):
                if node.is_weighted:
                    terms = []
                    for pos, c in enumerate(node.children):
                        w_slot = weight_slot[(nid, pos)]
                        terms.append(emit(OP_MUL, w_slot, self._node_slot[c]))
                else:
                    terms = [self._node_slot[c] for c in node.children]
                self._node_slot[nid] = reduce_slots(OP_ADD, terms)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node type {type(node)!r}")

        root_slot = self._node_slot[spn.root]
        return OperationList(
            inputs=self._inputs,
            operations=self._operations,
            root_slot=root_slot,
            node_slot=dict(self._node_slot),
        )


def linearize(spn: SPN, decompose: str = "balanced") -> OperationList:
    """Lower an SPN into an :class:`OperationList` (Algorithm 1 form).

    Parameters
    ----------
    spn:
        The network to lower.  Must have a root.
    decompose:
        How k-ary nodes are decomposed into binary operations: ``"balanced"``
        (default, minimizes dependency depth) or ``"chain"`` (maximizes it;
        useful for ablations on the effect of graph depth).
    """
    return _Lowerer(spn, decompose).run()
