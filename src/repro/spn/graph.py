"""The :class:`SPN` container: a rooted DAG of sum, product and leaf nodes.

The class offers a small builder API (``add_indicator`` / ``add_parameter`` /
``add_sum`` / ``add_product`` / ``set_root``), structural queries (topological
order, scopes, depth, statistics) and validity checks (smoothness and
decomposability), which together form the substrate every other package in
this repository builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .nodes import (
    IndicatorLeaf,
    Node,
    NodeId,
    ParameterLeaf,
    ProductNode,
    SumNode,
    is_leaf,
)

__all__ = ["SPN", "SPNStats", "StructureError"]


class StructureError(ValueError):
    """Raised when an SPN violates a structural requirement."""


@dataclass(frozen=True)
class SPNStats:
    """Summary statistics of an SPN graph."""

    n_nodes: int
    n_edges: int
    n_sum: int
    n_product: int
    n_indicator: int
    n_parameter: int
    n_vars: int
    depth: int
    n_binary_ops: int

    def __str__(self) -> str:  # pragma: no cover - human readable helper
        return (
            f"SPN(nodes={self.n_nodes}, edges={self.n_edges}, sums={self.n_sum}, "
            f"products={self.n_product}, indicators={self.n_indicator}, "
            f"params={self.n_parameter}, vars={self.n_vars}, depth={self.depth}, "
            f"binary_ops={self.n_binary_ops})"
        )


class SPN:
    """A sum-product network represented as a rooted DAG.

    Nodes are created through the ``add_*`` methods, which assign dense
    integer identifiers.  Children must exist before their parents are added,
    which guarantees the graph is acyclic by construction.
    """

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, Node] = {}
        self._root: Optional[NodeId] = None
        # Caches invalidated on every mutation.
        self._topo_cache: Optional[List[NodeId]] = None
        self._scope_cache: Optional[Dict[NodeId, FrozenSet[int]]] = None

    # ------------------------------------------------------------------ #
    # Builder API
    # ------------------------------------------------------------------ #
    def _new_id(self) -> NodeId:
        return len(self._nodes)

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._scope_cache = None

    def _check_children(self, child_ids: Sequence[NodeId]) -> None:
        for cid in child_ids:
            if cid not in self._nodes:
                raise StructureError(f"child node {cid} does not exist yet")

    def add_indicator(self, var: int, value: int) -> NodeId:
        """Add an indicator leaf lambda_{var = value} and return its id."""
        if var < 0 or value < 0:
            raise StructureError("variable index and value must be non-negative")
        nid = self._new_id()
        self._nodes[nid] = IndicatorLeaf(id=nid, var=var, value=value)
        self._invalidate()
        return nid

    def add_parameter(self, prob: float) -> NodeId:
        """Add a constant parameter leaf and return its id."""
        if prob < 0.0:
            raise StructureError(f"parameter leaf value must be non-negative, got {prob}")
        nid = self._new_id()
        self._nodes[nid] = ParameterLeaf(id=nid, prob=float(prob))
        self._invalidate()
        return nid

    def add_sum(
        self,
        child_ids: Sequence[NodeId],
        weights: Optional[Sequence[float]] = None,
    ) -> NodeId:
        """Add a (possibly weighted) sum node over existing children."""
        self._check_children(child_ids)
        nid = self._new_id()
        w = tuple(float(x) for x in weights) if weights is not None else None
        self._nodes[nid] = SumNode(id=nid, child_ids=tuple(child_ids), weights=w)
        self._invalidate()
        return nid

    def add_product(self, child_ids: Sequence[NodeId]) -> NodeId:
        """Add a product node over existing children."""
        self._check_children(child_ids)
        nid = self._new_id()
        self._nodes[nid] = ProductNode(id=nid, child_ids=tuple(child_ids))
        self._invalidate()
        return nid

    def set_root(self, node_id: NodeId) -> None:
        """Declare ``node_id`` as the root of the network."""
        if node_id not in self._nodes:
            raise StructureError(f"root node {node_id} does not exist")
        self._root = node_id

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> NodeId:
        if self._root is None:
            raise StructureError("SPN has no root; call set_root() first")
        return self._root

    @property
    def has_root(self) -> bool:
        return self._root is not None

    def node(self, node_id: NodeId) -> Node:
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterable[Node]:
        """Iterate over all nodes in insertion (id) order."""
        return (self._nodes[i] for i in range(len(self._nodes)))

    def node_ids(self) -> List[NodeId]:
        return list(range(len(self._nodes)))

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[NodeId]:
        """Return node ids reachable from the root, children before parents."""
        if self._topo_cache is not None:
            return list(self._topo_cache)
        order: List[NodeId] = []
        visited: set = set()
        # Iterative DFS to avoid recursion limits on deep networks.
        stack: List[Tuple[NodeId, bool]] = [(self.root, False)]
        while stack:
            nid, expanded = stack.pop()
            if expanded:
                order.append(nid)
                continue
            if nid in visited:
                continue
            visited.add(nid)
            stack.append((nid, True))
            for cid in self._nodes[nid].children:
                if cid not in visited:
                    stack.append((cid, False))
        self._topo_cache = order
        return list(order)

    def reachable_ids(self) -> FrozenSet[NodeId]:
        """Ids of all nodes reachable from the root."""
        return frozenset(self.topological_order())

    def parents(self) -> Dict[NodeId, List[NodeId]]:
        """Map from node id to the ids of its parents (reachable nodes only)."""
        result: Dict[NodeId, List[NodeId]] = {nid: [] for nid in self.topological_order()}
        for nid in self.topological_order():
            for cid in self._nodes[nid].children:
                result[cid].append(nid)
        return result

    def scopes(self) -> Dict[NodeId, FrozenSet[int]]:
        """Map from node id to its scope (set of variable indices).

        Parameter leaves have an empty scope; indicator leaves have the
        singleton scope of their variable; internal nodes take the union of
        their children's scopes.
        """
        if self._scope_cache is not None:
            return dict(self._scope_cache)
        scopes: Dict[NodeId, FrozenSet[int]] = {}
        for nid in self.topological_order():
            node = self._nodes[nid]
            if isinstance(node, IndicatorLeaf):
                scopes[nid] = frozenset({node.var})
            elif isinstance(node, ParameterLeaf):
                scopes[nid] = frozenset()
            else:
                merged: set = set()
                for cid in node.children:
                    merged |= scopes[cid]
                scopes[nid] = frozenset(merged)
        self._scope_cache = scopes
        return dict(scopes)

    def variables(self) -> List[int]:
        """Sorted list of variable indices appearing in the network."""
        vars_: set = set()
        for node in self.nodes():
            if isinstance(node, IndicatorLeaf):
                vars_.add(node.var)
        return sorted(vars_)

    def num_values(self) -> Dict[int, int]:
        """Map variable index -> number of distinct values seen in indicators."""
        values: Dict[int, set] = {}
        for node in self.nodes():
            if isinstance(node, IndicatorLeaf):
                values.setdefault(node.var, set()).add(node.value)
        return {var: len(vals) for var, vals in values.items()}

    def depth(self) -> int:
        """Length of the longest leaf-to-root path (leaves have depth 0)."""
        depths: Dict[NodeId, int] = {}
        for nid in self.topological_order():
            node = self._nodes[nid]
            if is_leaf(node):
                depths[nid] = 0
            else:
                depths[nid] = 1 + max(depths[cid] for cid in node.children)
        return depths[self.root]

    def stats(self) -> SPNStats:
        """Return summary statistics (reachable nodes only)."""
        n_sum = n_prod = n_ind = n_par = n_edges = n_ops = 0
        for nid in self.topological_order():
            node = self._nodes[nid]
            if isinstance(node, SumNode):
                n_sum += 1
                n_edges += len(node.children)
                # A k-ary weighted sum costs k multiplications and k-1 additions
                # once lowered to binary operations; an unweighted sum costs k-1.
                n_ops += len(node.children) - 1
                if node.is_weighted:
                    n_ops += len(node.children)
            elif isinstance(node, ProductNode):
                n_prod += 1
                n_edges += len(node.children)
                n_ops += len(node.children) - 1
            elif isinstance(node, IndicatorLeaf):
                n_ind += 1
            elif isinstance(node, ParameterLeaf):
                n_par += 1
        return SPNStats(
            n_nodes=len(self.topological_order()),
            n_edges=n_edges,
            n_sum=n_sum,
            n_product=n_prod,
            n_indicator=n_ind,
            n_parameter=n_par,
            n_vars=len(self.variables()),
            depth=self.depth(),
            n_binary_ops=n_ops,
        )

    # ------------------------------------------------------------------ #
    # Validity
    # ------------------------------------------------------------------ #
    def check_smooth(self) -> None:
        """Check smoothness (completeness): sum children share the same scope.

        Parameter-leaf children (empty scope) are ignored, so arithmetic
        circuits with explicit weight leaves pass the check.
        """
        scopes = self.scopes()
        for nid in self.topological_order():
            node = self._nodes[nid]
            if not isinstance(node, SumNode):
                continue
            child_scopes = [scopes[c] for c in node.children if scopes[c]]
            if not child_scopes:
                continue
            first = child_scopes[0]
            for cs in child_scopes[1:]:
                if cs != first:
                    raise StructureError(
                        f"sum node {nid} is not smooth: child scopes {sorted(first)} "
                        f"vs {sorted(cs)}"
                    )

    def check_decomposable(self) -> None:
        """Check decomposability: product children have pairwise disjoint scopes."""
        scopes = self.scopes()
        for nid in self.topological_order():
            node = self._nodes[nid]
            if not isinstance(node, ProductNode):
                continue
            seen: set = set()
            for cid in node.children:
                overlap = seen & scopes[cid]
                if overlap:
                    raise StructureError(
                        f"product node {nid} is not decomposable: variables "
                        f"{sorted(overlap)} appear in more than one child"
                    )
                seen |= scopes[cid]

    def check_valid(self) -> None:
        """Run all structural checks (root present, smooth, decomposable)."""
        _ = self.root
        self.check_smooth()
        self.check_decomposable()

    def is_valid(self) -> bool:
        """Return True when :meth:`check_valid` passes."""
        try:
            self.check_valid()
        except StructureError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def bernoulli_leaf(spn: "SPN", var: int, p_true: float) -> NodeId:
        """Add a univariate Bernoulli distribution as a weighted sum of indicators."""
        if not 0.0 <= p_true <= 1.0:
            raise StructureError(f"probability must be in [0, 1], got {p_true}")
        i0 = spn.add_indicator(var, 0)
        i1 = spn.add_indicator(var, 1)
        return spn.add_sum([i0, i1], weights=[1.0 - p_true, p_true])

    def copy(self) -> "SPN":
        """Return a deep structural copy of this network."""
        clone = SPN()
        clone._nodes = dict(self._nodes)
        clone._root = self._root
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        root = self._root if self._root is not None else "?"
        return f"<SPN nodes={len(self._nodes)} root={root}>"
