"""Deterministic random generation of valid SPN structures.

The benchmark SPNs used in the paper were learned with LearnPSDD on the UCI
and Lowd-Davis dataset suites; neither the datasets nor the toolchain are
available offline, so the suite (:mod:`repro.suite`) instead instantiates
structures from this generator with per-benchmark shape profiles.  Throughput
in operations/cycle depends on the *shape* of the operation DAG (size, depth,
fan-out and data reuse), which the generator controls explicitly, rather than
on the learned parameters.

The generator follows the usual region-graph recipe: a scope of variables is
recursively split into disjoint parts (product nodes) and alternative splits
are mixed (sum nodes), which yields smooth and decomposable networks by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph import SPN
from .nodes import normalized_weights

__all__ = [
    "GeneratorConfig",
    "generate_spn",
    "RatSpnConfig",
    "generate_rat_spn",
    "random_evidence",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for :func:`generate_spn`.

    Attributes
    ----------
    n_vars:
        Number of (binary, unless ``n_values`` says otherwise) random variables.
    n_values:
        Number of values per variable (2 for the benchmark datasets).
    sum_children:
        Number of alternative decompositions mixed at every sum node.
    product_parts:
        Number of scope parts at every product node.
    max_depth:
        Maximum recursion depth before scopes are forced into leaf mixtures.
    leaf_components:
        Number of mixture components for a single-variable leaf region.
    reuse_probability:
        Probability of reusing an already-generated node for a repeated
        (scope, depth) region instead of generating a fresh one.  Higher
        values increase fan-out (data reuse), which stresses the register
        file and crossbar of the processor model.
    seed:
        Seed for the underlying PRNG, making the structure deterministic.
    """

    n_vars: int
    n_values: int = 2
    sum_children: int = 2
    product_parts: int = 2
    max_depth: int = 16
    leaf_components: int = 2
    reuse_probability: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_vars < 1:
            raise ValueError("n_vars must be >= 1")
        if self.n_values < 2:
            raise ValueError("n_values must be >= 2")
        if self.sum_children < 1 or self.product_parts < 2:
            raise ValueError("sum_children must be >= 1 and product_parts >= 2")
        if not 0.0 <= self.reuse_probability <= 1.0:
            raise ValueError("reuse_probability must be in [0, 1]")


class _Generator:
    def __init__(self, config: GeneratorConfig) -> None:
        self._cfg = config
        self._rng = np.random.default_rng(config.seed)
        self._spn = SPN()
        # Cache of generated region roots, keyed by (scope tuple, depth band).
        self._region_cache: Dict[Tuple[Tuple[int, ...], int], List[int]] = {}
        # One shared set of indicators per variable keeps the input layer compact.
        self._indicators: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    def _indicator(self, var: int, value: int) -> int:
        key = (var, value)
        if key not in self._indicators:
            self._indicators[key] = self._spn.add_indicator(var, value)
        return self._indicators[key]

    def _leaf_mixture(self, var: int) -> int:
        """A categorical distribution over one variable as a weighted sum."""
        cfg = self._cfg
        children = [self._indicator(var, v) for v in range(cfg.n_values)]
        raw = self._rng.dirichlet(np.ones(cfg.n_values))
        return self._spn.add_sum(children, weights=normalized_weights(raw.tolist()))

    def _split_scope(self, scope: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        """Randomly partition ``scope`` into ``product_parts`` non-empty parts."""
        cfg = self._cfg
        vars_ = list(scope)
        self._rng.shuffle(vars_)
        n_parts = min(cfg.product_parts, len(vars_))
        parts: List[List[int]] = [[] for _ in range(n_parts)]
        # Guarantee every part is non-empty, then spread the rest uniformly.
        for i in range(n_parts):
            parts[i].append(vars_[i])
        for v in vars_[n_parts:]:
            parts[int(self._rng.integers(0, n_parts))].append(v)
        return [tuple(sorted(p)) for p in parts]

    def _region(self, scope: Tuple[int, ...], depth: int) -> int:
        """Generate (or reuse) a node whose scope is exactly ``scope``."""
        cfg = self._cfg
        key = (scope, depth)
        cached = self._region_cache.get(key)
        if cached and self._rng.random() < cfg.reuse_probability:
            return cached[int(self._rng.integers(0, len(cached)))]

        if len(scope) == 1:
            var = scope[0]
            if cfg.leaf_components <= 1:
                node = self._leaf_mixture(var)
            else:
                components = [self._leaf_mixture(var) for _ in range(cfg.leaf_components)]
                raw = self._rng.dirichlet(np.ones(len(components)))
                node = self._spn.add_sum(components, weights=normalized_weights(raw.tolist()))
        elif depth >= cfg.max_depth:
            # Fully factorized fallback keeps the recursion bounded.
            parts = [self._region((v,), depth + 1) for v in scope]
            node = self._spn.add_product(parts)
        else:
            alternatives: List[int] = []
            for _ in range(cfg.sum_children):
                parts = self._split_scope(scope)
                children = [self._region(p, depth + 1) for p in parts]
                if len(children) == 1:
                    alternatives.append(children[0])
                else:
                    alternatives.append(self._spn.add_product(children))
            if len(alternatives) == 1:
                node = alternatives[0]
            else:
                raw = self._rng.dirichlet(np.ones(len(alternatives)))
                node = self._spn.add_sum(
                    alternatives, weights=normalized_weights(raw.tolist())
                )

        self._region_cache.setdefault(key, []).append(node)
        return node

    def run(self) -> SPN:
        scope = tuple(range(self._cfg.n_vars))
        root = self._region(scope, depth=0)
        self._spn.set_root(root)
        return self._spn


def generate_spn(config: GeneratorConfig) -> SPN:
    """Generate a smooth, decomposable SPN according to ``config``.

    The same configuration always produces the same network.
    """
    spn = _Generator(config).run()
    spn.check_valid()
    return spn


@dataclass(frozen=True)
class RatSpnConfig:
    """Shape parameters for :func:`generate_rat_spn` (random tensorized SPNs).

    The construction follows the region-graph recipe of random sum-product
    networks (Peharz et al., UAI 2019, cited in the paper's introduction):
    the variable set is recursively split into two random parts down to
    ``depth`` levels, ``repetitions`` times with different random splits;
    every internal region holds ``n_sums`` sum nodes whose children are
    cross-products of the child regions' nodes, and every leaf region holds
    ``n_leaf_components`` factorized leaf distributions.

    The resulting network size is approximately
    ``repetitions * n_regions * n_sums**3`` internal operations plus
    ``n_vars * n_leaf_components`` leaf operations, which gives direct
    control over benchmark sizes.

    ``split_balance`` controls the shape of the variable decomposition
    ("vtree"): ``0.5`` yields balanced splits (shallow, wide networks), while
    small values (e.g. ``0.1``) yield right-linear splits like the vtrees
    LearnPSDD tends to learn, producing the deep, narrow operation DAGs whose
    limited per-level parallelism is responsible for the GPU's sublinear
    thread scaling in the paper.  With unbalanced splits the recursion runs
    until scopes become singletons, so ``depth`` acts as an upper bound only
    for balanced splits.
    """

    n_vars: int
    depth: int = 3
    repetitions: int = 2
    n_sums: int = 2
    n_leaf_components: int = 2
    n_values: int = 2
    split_balance: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_vars < 2:
            raise ValueError("n_vars must be >= 2")
        if self.depth < 1 or self.repetitions < 1:
            raise ValueError("depth and repetitions must be >= 1")
        if self.n_sums < 1 or self.n_leaf_components < 1:
            raise ValueError("n_sums and n_leaf_components must be >= 1")
        if self.n_values < 2:
            raise ValueError("n_values must be >= 2")
        if not 0.0 < self.split_balance <= 0.5:
            raise ValueError("split_balance must be in (0, 0.5]")


class _RatGenerator:
    """Builds a random tensorized SPN over a region graph."""

    def __init__(self, config: RatSpnConfig) -> None:
        self._cfg = config
        self._rng = np.random.default_rng(config.seed)
        self._spn = SPN()
        self._indicators: Dict[Tuple[int, int], int] = {}
        # Leaf mixtures are cached per (variable, component) so repetitions
        # share the input layer, creating realistic fan-out at the leaves.
        self._leaf_cache: Dict[Tuple[int, int], int] = {}

    def _indicator(self, var: int, value: int) -> int:
        key = (var, value)
        if key not in self._indicators:
            self._indicators[key] = self._spn.add_indicator(var, value)
        return self._indicators[key]

    def _leaf_mixture(self, var: int, component: int) -> int:
        key = (var, component)
        if key not in self._leaf_cache:
            cfg = self._cfg
            children = [self._indicator(var, v) for v in range(cfg.n_values)]
            raw = self._rng.dirichlet(np.ones(cfg.n_values))
            self._leaf_cache[key] = self._spn.add_sum(
                children, weights=normalized_weights(raw.tolist())
            )
        return self._leaf_cache[key]

    def _leaf_region(self, scope: Tuple[int, ...]) -> List[int]:
        """Return ``n_leaf_components`` factorized distributions over ``scope``."""
        cfg = self._cfg
        nodes = []
        for component in range(cfg.n_leaf_components):
            factors = [self._leaf_mixture(v, component) for v in scope]
            if len(factors) == 1:
                nodes.append(factors[0])
            else:
                nodes.append(self._spn.add_product(factors))
        return nodes

    def _region(self, scope: Tuple[int, ...], depth: int) -> List[int]:
        cfg = self._cfg
        if len(scope) == 1 or depth >= cfg.depth:
            return self._leaf_region(scope)
        # Random split into two non-empty parts; split_balance sets the
        # fraction of variables sent to the left part (0.5 = balanced).
        vars_ = list(scope)
        self._rng.shuffle(vars_)
        left_size = int(round(cfg.split_balance * len(vars_)))
        left_size = min(max(1, left_size), len(vars_) - 1)
        left = tuple(sorted(vars_[:left_size]))
        right = tuple(sorted(vars_[left_size:]))
        left_nodes = self._region(left, depth + 1)
        right_nodes = self._region(right, depth + 1)
        products = [
            self._spn.add_product([a, b]) for a in left_nodes for b in right_nodes
        ]
        sums = []
        for _ in range(cfg.n_sums):
            raw = self._rng.dirichlet(np.ones(len(products)))
            sums.append(self._spn.add_sum(products, weights=normalized_weights(raw.tolist())))
        return sums

    def run(self) -> SPN:
        cfg = self._cfg
        scope = tuple(range(cfg.n_vars))
        roots: List[int] = []
        for _ in range(cfg.repetitions):
            roots.extend(self._region(scope, depth=0))
        if len(roots) == 1:
            self._spn.set_root(roots[0])
        else:
            raw = self._rng.dirichlet(np.ones(len(roots)))
            root = self._spn.add_sum(roots, weights=normalized_weights(raw.tolist()))
            self._spn.set_root(root)
        return self._spn


def generate_rat_spn(config: RatSpnConfig) -> SPN:
    """Generate a random tensorized SPN (RAT-SPN style region graph).

    The same configuration always produces the same network; the result is
    smooth, decomposable and normalized.
    """
    spn = _RatGenerator(config).run()
    spn.check_valid()
    return spn


def random_evidence(
    n_vars: int,
    n_values: int = 2,
    observed_fraction: float = 1.0,
    seed: int = 0,
    n_samples: Optional[int] = None,
) -> np.ndarray:
    """Draw random evidence rows for ``n_vars`` variables.

    Returns an integer array of shape ``(n_samples, n_vars)``; unobserved
    entries (chosen independently with probability ``1 - observed_fraction``)
    hold the :data:`repro.spn.evaluate.MARGINALIZED` sentinel (``-1``), the
    canonical evidence convention shared by every engine.  With
    ``n_samples=None`` a single row is returned as a 2-D array of shape
    ``(1, n_vars)``.
    """
    if not 0.0 <= observed_fraction <= 1.0:
        raise ValueError("observed_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    rows = 1 if n_samples is None else int(n_samples)
    data = rng.integers(0, n_values, size=(rows, n_vars))
    if observed_fraction < 1.0:
        mask = rng.random(size=data.shape) >= observed_fraction
        data = np.where(mask, -1, data)
    return data
