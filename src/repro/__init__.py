"""repro: reproduction of the DATE 2020 SPN custom-processor paper.

The package is organized as follows:

* :mod:`repro.api` — the unified typed query API: ``Likelihood`` /
  ``LogLikelihood`` / ``Marginal`` / ``Conditional`` / ``MPE`` query
  objects and the :class:`~repro.api.session.InferenceSession` front door
  (planning, execution, platform throughput);
* :mod:`repro.spn` — sum-product network substrate (data structures, exact
  evaluation, lowering to operation lists, structure learning, serialization);
* :mod:`repro.suite` — the benchmark suite used in the paper's evaluation;
* :mod:`repro.baselines` — CPU and GPU (SIMT) performance models;
* :mod:`repro.processor` — the proposed VLIW SPN processor: ISA, components
  and a cycle-accurate simulator;
* :mod:`repro.compiler` — the SPN-to-VLIW compiler;
* :mod:`repro.analysis` and :mod:`repro.experiments` — metrics, reporting and
  one module per paper table/figure;
* :mod:`repro.serving` — request-level inference service with dynamic
  micro-batching over the execution engines.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
