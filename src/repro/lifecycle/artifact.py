"""Ahead-of-time model artifacts: SPN + compiled tape + memory plan in one file.

The source paper assumes SPNs arrive as *compiled* objects from external
learners; the server-side analogue is an artifact that carries everything a
cold-starting server needs — the network, its levelized
:class:`~repro.spn.compiled.CompiledTape`, and the tape's
:class:`~repro.spn.memplan.MemoryPlan` — so loading a model performs **zero
compilation or planning**: deserialize, adopt, serve.  Because JSON
round-trips every float exactly and the derived structures are recomputed
deterministically, a loaded artifact executes **bit-identically**
(``array_equal``) to the freshly compiled model it was built from, on every
execution mode and every query kind.

File layout (one JSON document)::

    {
      "format": "repro-spn-artifact",
      "version": 1,
      "content_hash": "<sha256 of the canonical body encoding>",
      "body": {
        "name": ..., "model_version": ..., "n_vars": ..., "tolerance": ...,
        "fuse": ..., "fuse_width": ..., "metadata": {...},
        "spn":  <repro.spn.io.to_json document>,
        "ops":  <OperationList.to_payload document>,
        "tape": <tape_to_payload document>,
        "plan": <plan_to_payload document>
      }
    }

``content_hash`` is the sha256 of ``json.dumps(body, sort_keys=True,
separators=(",", ":"))`` — a canonical encoding, so the hash is stable
across writers.  Loading verifies the hash before reconstructing anything;
a flipped byte raises :class:`ArtifactIntegrityError`, and a structurally
malformed body (truncated sections, dangling references) raises
:class:`ArtifactFormatError`.  Both derive from
:class:`~repro.spn.graph.StructureError`.

``tolerance`` is the artifact's **shadow-validation contract**: the maximum
absolute deviation this model is allowed to show against an incumbent on a
golden-evidence replay before the registry lets it take traffic
(``0.0`` = bit-identical, the default; see :mod:`repro.lifecycle.registry`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..faults.hooks import active_plan as _active_fault_plan
from ..faults.plan import InjectedCrash

from ..spn.compiled import CompiledTape, tape_from_payload, tape_to_payload
from ..spn.graph import SPN, StructureError
from ..spn.io import from_json as spn_from_json, to_json as spn_to_json
from ..spn.linearize import OperationList, linearize
from ..spn.memplan import (
    DEFAULT_FUSE_WIDTH,
    MemoryPlan,
    plan_from_payload,
    plan_to_payload,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactIntegrityError",
    "ModelArtifact",
    "build_artifact",
    "artifact_from_payload",
    "save_artifact",
    "load_artifact",
]

ARTIFACT_FORMAT = "repro-spn-artifact"
ARTIFACT_VERSION = 1


class ArtifactError(StructureError):
    """Base class for artifact load failures (a :class:`StructureError`)."""


class ArtifactFormatError(ArtifactError):
    """The document is structurally malformed: wrong format marker, missing
    or truncated sections, dangling references between sections."""


class ArtifactIntegrityError(ArtifactError):
    """The document is well-formed JSON but its content hash (or a recorded
    cross-section invariant) does not match — the bytes were corrupted or
    tampered with after packaging."""


def _canonical_bytes(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def content_hash(body: dict) -> str:
    """sha256 hex digest of the canonical JSON encoding of ``body``."""
    return hashlib.sha256(_canonical_bytes(body)).hexdigest()


@dataclass
class ModelArtifact:
    """A packaged model: SPN, compiled tape, memory plan, and provenance.

    ``tape`` already has ``plan`` adopted into its plan cache for the
    recorded ``(fuse, fuse_width)``, so :meth:`session` (and anything else
    evaluating through the tape) never plans.  ``ops`` is reconstructed
    lazily from the stored payload — cold-start latency pays only for what
    serving actually touches (the sweep query kinds that need the
    operation list resolve it on first use).
    """

    name: str
    version: str
    spn: SPN
    tape: CompiledTape
    plan: MemoryPlan
    n_vars: int
    tolerance: float = 0.0
    fuse: bool = True
    fuse_width: int = DEFAULT_FUSE_WIDTH
    metadata: dict = field(default_factory=dict)
    content_hash: str = ""
    _ops_payload: Optional[dict] = field(repr=False, default=None)
    _ops: Optional[OperationList] = field(repr=False, default=None)

    @property
    def ops(self) -> OperationList:
        """The Algorithm-1 operation list (reconstructed on first access)."""
        if self._ops is None:
            if self._ops_payload is not None:
                try:
                    self._ops = OperationList.from_payload(self._ops_payload)
                except ArtifactError:
                    raise
                except StructureError as exc:
                    raise ArtifactFormatError(f"ops section: {exc}") from None
            else:
                self._ops = linearize(self.spn)
        return self._ops

    def session(
        self,
        engine: str = "vectorized",
        check: bool = False,
        execution=None,
    ):
        """An :class:`~repro.api.session.InferenceSession` on the AOT tape.

        The session adopts the artifact's tape (and therefore its memory
        plan) into the evaluation caches, so every query kind runs on the
        shipped program with no compile or plan work.
        """
        from ..api.session import InferenceSession

        session = InferenceSession(
            self.spn,
            engine=engine,
            check=check,
            execution=execution,
            tape=self.tape if engine == "vectorized" else None,
            n_vars=self.n_vars,
        )
        if self._ops is not None or self._ops_payload is not None:
            session._ops = self.ops
        return session

    def to_payload(self) -> dict:
        """The full on-disk document (body wrapped with format + hash)."""
        body = {
            "name": self.name,
            "model_version": self.version,
            "n_vars": self.n_vars,
            "tolerance": self.tolerance,
            "fuse": self.fuse,
            "fuse_width": self.fuse_width,
            "metadata": self.metadata,
            "spn": spn_to_json(self.spn),
            "ops": self._ops_payload
            if self._ops_payload is not None
            else self.ops.to_payload(),
            "tape": tape_to_payload(self.tape),
            "plan": plan_to_payload(self.plan),
        }
        return {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "content_hash": content_hash(body),
            "body": body,
        }


def build_artifact(
    spn: SPN,
    name: str,
    version: str = "1",
    tolerance: float = 0.0,
    fuse: bool = True,
    fuse_width: Optional[int] = None,
    metadata: Optional[dict] = None,
    ops: Optional[OperationList] = None,
) -> ModelArtifact:
    """Compile ``spn`` and package it as a :class:`ModelArtifact`.

    This is the only place the lifecycle compiles: ``linearize`` →
    ``compile_tape`` → ``plan_memory`` run here, once, at build time; every
    later load skips all three.  ``tolerance`` records the shadow-validation
    contract the registry enforces when this artifact is published over an
    incumbent.
    """
    from ..spn.compiled import compile_tape

    if tolerance < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    width = DEFAULT_FUSE_WIDTH if fuse_width is None else int(fuse_width)
    # Canonicalize node ids (one io round trip: dense ids in topological
    # document order) so the packaged document is byte-stable — re-saving a
    # loaded artifact reproduces the identical body and content hash.  A
    # supplied ``ops`` is kept only if the network was already canonical;
    # otherwise its node ids would reference the pre-canonical labels.
    document = spn_to_json(spn)
    spn = spn_from_json(document)
    if ops is not None and spn_to_json(spn) != document:
        ops = None
    ops = ops if ops is not None else linearize(spn)
    tape = compile_tape(ops)
    plan = tape.memory_plan(fuse=fuse, fuse_width=width)
    n_vars = max((s.var for s in tape.inputs if s.kind == "indicator"), default=-1) + 1
    artifact = ModelArtifact(
        name=name,
        version=str(version),
        spn=spn,
        tape=tape,
        plan=plan,
        n_vars=n_vars,
        tolerance=float(tolerance),
        fuse=bool(fuse),
        fuse_width=width,
        metadata=dict(metadata or {}),
        _ops=ops,
    )
    artifact.content_hash = content_hash(artifact.to_payload()["body"])
    return artifact


def _body_field(body: dict, key: str):
    if key not in body:
        raise ArtifactFormatError(f"artifact body: missing section {key!r}")
    return body[key]


def artifact_from_payload(payload: dict) -> ModelArtifact:
    """Reconstruct a :class:`ModelArtifact` from its on-disk document.

    Load order: format/version check → content-hash verification →
    per-section reconstruction.  The hash runs first so any byte flip is
    reported as :class:`ArtifactIntegrityError`; a document whose hash is
    *consistent* but whose sections are malformed (the typed corruption a
    buggy writer produces) surfaces as :class:`ArtifactFormatError` naming
    the broken section.
    """
    if not isinstance(payload, dict) or payload.get("format") != ARTIFACT_FORMAT:
        raise ArtifactFormatError(
            f"not a {ARTIFACT_FORMAT} document (format marker missing or wrong)"
        )
    if payload.get("version") != ARTIFACT_VERSION:
        raise ArtifactFormatError(
            f"unsupported artifact version {payload.get('version')!r}; "
            f"this reader supports version {ARTIFACT_VERSION}"
        )
    body = payload.get("body")
    if not isinstance(body, dict):
        raise ArtifactFormatError("artifact body: missing or not a dict")
    recorded = payload.get("content_hash")
    actual = content_hash(body)
    if recorded != actual:
        raise ArtifactIntegrityError(
            f"content hash mismatch: recorded {recorded!r}, computed {actual!r}"
        )

    def section(key: str, loader):
        data = _body_field(body, key)
        try:
            return loader(data)
        except ArtifactError:
            raise
        except StructureError as exc:
            raise ArtifactFormatError(f"{key} section: {exc}") from None

    spn = section("spn", spn_from_json)
    tape = section("tape", tape_from_payload)
    plan = section("plan", plan_from_payload)
    ops_payload = _body_field(body, "ops")
    if not isinstance(ops_payload, dict):
        raise ArtifactFormatError("ops section: expected a dict")
    try:
        n_vars = int(_body_field(body, "n_vars"))
        tolerance = float(body.get("tolerance", 0.0))
        fuse = bool(body.get("fuse", True))
        fuse_width = int(body.get("fuse_width", DEFAULT_FUSE_WIDTH))
    except (TypeError, ValueError):
        raise ArtifactFormatError("artifact body: malformed scalar field") from None
    name = _body_field(body, "name")
    version = _body_field(body, "model_version")
    if not isinstance(name, str) or not isinstance(version, str):
        raise ArtifactFormatError("artifact body: name/model_version must be strings")
    metadata = body.get("metadata", {})
    if not isinstance(metadata, dict):
        raise ArtifactFormatError("artifact body: metadata must be a dict")

    # Cross-section invariants: the tape and plan must describe the same
    # program.  A mismatch means sections from different builds were
    # spliced together — an integrity failure, not a format one.
    if plan.n_slots != tape.n_slots or plan.n_inputs != tape.n_inputs:
        raise ArtifactIntegrityError(
            "plan/tape mismatch: the plan was built for a different tape "
            f"(plan {plan.n_inputs}+{plan.n_slots - plan.n_inputs} slots, "
            f"tape {tape.n_inputs}+{tape.n_slots - tape.n_inputs})"
        )
    # Static verification gate: the section loaders above only validate
    # *format* (ranges, record shapes); the dataflow verifier proves the
    # semantic invariants — topological order, def-before-use, liveness,
    # slot interference, root reachability — so a spliced or miscompiled
    # plan whose every index is individually in range still gets rejected
    # here rather than serving wrong numbers.
    from ..statics.verifier import VerificationError, verify_compiled

    try:
        verify_compiled(tape, plan)
    except VerificationError as exc:
        raise ArtifactIntegrityError(f"static verification failed: {exc}") from None
    tape.adopt_plan(plan, fuse=fuse, fuse_width=fuse_width)
    return ModelArtifact(
        name=name,
        version=version,
        spn=spn,
        tape=tape,
        plan=plan,
        n_vars=n_vars,
        tolerance=tolerance,
        fuse=fuse,
        fuse_width=fuse_width,
        metadata=metadata,
        content_hash=actual,
        _ops_payload=ops_payload,
    )


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Required for the rename itself to be durable (the file's own fsync
    only covers its *contents*).  Platforms that refuse ``open`` on a
    directory (some network filesystems, Windows) degrade gracefully —
    atomicity still holds, only rename durability is best-effort there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_artifact(artifact: ModelArtifact, path: Union[str, Path]) -> Path:
    """Write the artifact document to ``path`` — atomic *and* crash-safe.

    The document is written to a sibling ``*.tmp`` file, flushed and
    fsynced, then renamed over ``path``, and the parent directory is
    fsynced so the rename itself is durable.  A crash at any point —
    including between the write and the rename (the instrumented
    ``artifact.save_crash`` fault site) — leaves either the old complete
    file or the new complete file, never a torn one, and never leaks the
    tmp file: it is unlinked on every failure path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    plan = _active_fault_plan()
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(artifact.to_payload()))
            handle.flush()
            os.fsync(handle.fileno())
        if plan is not None:
            plan.maybe_raise("artifact.save_crash", InjectedCrash)
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)
    return path


def load_artifact(path: Union[str, Path]) -> ModelArtifact:
    """Read, verify, and reconstruct an artifact from ``path``.

    Unparseable JSON raises :class:`ArtifactFormatError`; hash mismatches
    raise :class:`ArtifactIntegrityError`; section-level corruption raises
    :class:`ArtifactFormatError` naming the section.  The read text passes
    through the ``artifact.load_corruption`` fault site (one seeded
    character flip when armed) — the content hash is what turns silent
    on-disk corruption into a typed load failure.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ArtifactFormatError(f"cannot read artifact {path}: {exc}") from None
    fault_plan = _active_fault_plan()
    if fault_plan is not None:
        text = fault_plan.corrupt_text("artifact.load_corruption", text)
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ArtifactFormatError(f"artifact {path} is not valid JSON: {exc}") from None
    return artifact_from_payload(payload)
