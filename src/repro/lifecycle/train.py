"""Training pipeline: dataset → LearnSPN → compiled AOT artifact, in parallel.

Mirrors the sweep runner (:func:`repro.experiments.sweeps.run_sweep`): jobs
are content-hashed — spec + hyper-parameters + the whole package source
fingerprint — against an on-disk cache whose entries **are the artifact
files themselves**, so a cache hit is exactly an AOT cold start
(:func:`~repro.lifecycle.artifact.load_artifact`) and a corrupted cache
entry is detected by the artifact integrity check and recomputed.  Misses
fan out over a ``ProcessPoolExecutor`` (learning is pure Python and
CPU-bound, so processes — not threads — buy parallelism), falling back to
in-process execution when at most one job misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from ..spn.datasets import DatasetSpec, generate_dataset
from ..spn.learn import LearnConfig, learn_spn
from .artifact import (
    ArtifactError,
    ModelArtifact,
    build_artifact,
    load_artifact,
    save_artifact,
)

__all__ = [
    "DEFAULT_ARTIFACT_DIR",
    "TrainingJob",
    "TrainingResult",
    "job_key",
    "train_artifact",
    "train_many",
]

#: Default artifact cache, next to the sweep cache.
DEFAULT_ARTIFACT_DIR = Path(".cache") / "artifacts"


@dataclass(frozen=True)
class TrainingJob:
    """One learn → compile → package unit of work."""

    name: str
    dataset: DatasetSpec
    version: str = "1"
    config: LearnConfig = field(default_factory=LearnConfig)
    tolerance: float = 0.0
    fuse: bool = True
    fuse_width: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "dataset": {
                "n_vars": self.dataset.n_vars,
                "n_rows": self.dataset.n_rows,
                "n_clusters": self.dataset.n_clusters,
                "noise": self.dataset.noise,
                "seed": self.dataset.seed,
            },
            "config": self.config.as_dict(),
            "tolerance": self.tolerance,
            "fuse": self.fuse,
            "fuse_width": self.fuse_width,
        }


@dataclass(frozen=True)
class TrainingResult:
    """Outcome of one job: the artifact plus provenance of how it was made."""

    job: TrainingJob
    artifact: ModelArtifact
    cached: bool
    elapsed: float
    path: Optional[Path] = None


def job_key(job: TrainingJob, code: Optional[str] = None) -> str:
    """Stable content hash of a job (the artifact-cache key).

    Folds in the package source fingerprint exactly like the sweep cache
    (:func:`repro.experiments.sweeps.cache_key`): any change to learner,
    compiler, or planner code invalidates every cached artifact.
    """
    from ..experiments.sweeps import CACHE_VERSION, _code_fingerprint

    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "code": code if code is not None else _code_fingerprint(),
            **job.as_dict(),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def train_artifact(job: TrainingJob) -> ModelArtifact:
    """Run one job in-process: generate data, learn, compile, package.

    The artifact's metadata records full provenance — the dataset spec, the
    learner hyper-parameters, and the training-set average log-likelihood —
    so a served model can always be traced back to how it was trained.
    """
    data = generate_dataset(job.dataset)
    spn = learn_spn(data, job.config)
    metadata = {
        "trained": True,
        "dataset": job.as_dict()["dataset"],
        "learn_config": job.config.as_dict(),
    }
    return build_artifact(
        spn,
        name=job.name,
        version=job.version,
        tolerance=job.tolerance,
        fuse=job.fuse,
        fuse_width=job.fuse_width,
        metadata=metadata,
    )


def _train_job_payload(job: TrainingJob) -> tuple:
    """Worker entry point: returns the artifact *document* (picklable)."""
    start = time.perf_counter()
    artifact = train_artifact(job)
    return artifact.to_payload(), time.perf_counter() - start


def train_many(
    jobs: Sequence[TrainingJob],
    parallel: bool = True,
    max_workers: Optional[int] = None,
    artifact_dir: Optional[Path] = DEFAULT_ARTIFACT_DIR,
) -> List[TrainingResult]:
    """Run many jobs with caching and process-pool parallelism.

    Jobs whose artifact already exists in ``artifact_dir`` (keyed by
    :func:`job_key`) load from disk — the AOT path, no learning, no
    compilation.  The rest run on a ``ProcessPoolExecutor`` (in-process
    when ``parallel=False`` or at most one job misses, matching
    :func:`~repro.experiments.sweeps.run_sweep`), and their artifacts are
    written back to the cache.  Results keep the order of ``jobs``.
    """
    from ..experiments.sweeps import _code_fingerprint
    from .artifact import artifact_from_payload

    caching = artifact_dir is not None
    code = _code_fingerprint() if caching else None
    results: List[Optional[TrainingResult]] = [None] * len(jobs)
    misses: List[int] = []
    for i, job in enumerate(jobs):
        if caching:
            path = Path(artifact_dir) / f"{job_key(job, code)}.json"
            try:
                start = time.perf_counter()
                artifact = load_artifact(path)
                results[i] = TrainingResult(
                    job=job,
                    artifact=artifact,
                    cached=True,
                    elapsed=time.perf_counter() - start,
                    path=path,
                )
                continue
            except ArtifactError:
                pass  # absent or corrupted: recompute (and overwrite)
        misses.append(i)

    if misses:
        miss_jobs = [jobs[i] for i in misses]
        if parallel and len(miss_jobs) > 1:
            workers = max_workers or min(len(miss_jobs), os.cpu_count() or 1)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_train_job_payload, miss_jobs))
        else:
            outcomes = [_train_job_payload(job) for job in miss_jobs]
        for i, (payload, elapsed) in zip(misses, outcomes):
            artifact = artifact_from_payload(payload)
            path = None
            if caching:
                path = Path(artifact_dir) / f"{job_key(jobs[i], code)}.json"
                save_artifact(artifact, path)
            results[i] = TrainingResult(
                job=jobs[i],
                artifact=artifact,
                cached=False,
                elapsed=elapsed,
                path=path,
            )

    return [r for r in results if r is not None]
