"""Versioned model registry: publish, shadow-validate, hot-swap, rollback.

The registry owns the name → live-version mapping a serving process routes
through.  Its contract:

* **publish** installs a new version under a name.  When an incumbent is
  live and validation is on, the candidate must first *replay the golden
  evidence set* (:mod:`repro.lifecycle.golden`) and stay within the
  candidate artifact's recorded ``tolerance`` of the incumbent's replay
  (``0.0`` = bit-identical, the default).  A candidate that deviates is
  rejected with :class:`ShadowValidationError` and the registry is left
  untouched — the incumbent keeps serving.
* **atomic hot-swap** — the live pointer flips under the registry lock,
  so a reader either sees the old version or the new one, never a mix.
  Readers that *pin* the resolved entry (the server pins at admission)
  keep executing in-flight work on the old version's tape after the swap.
* **rollback** re-points the live version at any retained older version
  without revalidation (it served traffic before; validation gates entry
  into the store, not re-activation).

The registry is engine-agnostic: entries hold an
:class:`~repro.api.session.InferenceSession` (usually built from a
:class:`~repro.lifecycle.artifact.ModelArtifact`, whose AOT tape makes
installation compile-free) plus the artifact when one exists.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .artifact import ModelArtifact
from .golden import golden_evidence, golden_replay, replay_deviation

__all__ = [
    "ShadowValidationError",
    "ModelVersion",
    "PublishReport",
    "ModelRegistry",
]


class ShadowValidationError(RuntimeError):
    """A candidate version deviated from the incumbent beyond its tolerance."""

    def __init__(
        self, name: str, version: str, deviation: float, tolerance: float
    ) -> None:
        super().__init__(
            f"model {name!r} version {version!r} failed shadow validation: "
            f"golden-replay deviation {deviation!r} exceeds tolerance {tolerance!r}"
        )
        self.name = name
        self.version = version
        self.deviation = deviation
        self.tolerance = tolerance


@dataclass(frozen=True)
class ModelVersion:
    """One installed version: the session serving it plus its provenance."""

    name: str
    version: str
    session: object
    artifact: Optional[ModelArtifact] = None


@dataclass(frozen=True)
class PublishReport:
    """What a successful publish did."""

    name: str
    version: str
    previous_version: Optional[str]
    validated: bool
    deviation: float = 0.0
    tolerance: float = 0.0


@dataclass
class _Entry:
    versions: Dict[str, ModelVersion] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    live: Optional[str] = None


class ModelRegistry:
    """Thread-safe versioned name → model store with atomic live pointers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                name for name, e in self._entries.items() if e.live is not None
            )

    def versions(self, name: str) -> List[str]:
        """Installed versions of ``name``, oldest first."""
        with self._lock:
            entry = self._entries.get(name)
            return list(entry.order) if entry else []

    def live_version(self, name: str) -> Optional[str]:
        with self._lock:
            entry = self._entries.get(name)
            return entry.live if entry else None

    def resolve(self, name: str) -> Optional[ModelVersion]:
        """The live :class:`ModelVersion` for ``name`` (``None`` if absent).

        One lock acquisition, one pointer read: callers that hold on to the
        returned object keep the pre-swap version for as long as they need
        it — this is how in-flight requests drain on the old tape.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.live is None:
                return None
            return entry.versions[entry.live]

    def get(self, name: str, version: str) -> Optional[ModelVersion]:
        with self._lock:
            entry = self._entries.get(name)
            return entry.versions.get(version) if entry else None

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def publish(
        self,
        name: str,
        version: str,
        session,
        artifact: Optional[ModelArtifact] = None,
        validate: bool = True,
        golden_rows: Optional[int] = None,
    ) -> PublishReport:
        """Install ``session`` as the live version of ``name``.

        With ``validate`` (the default) and an incumbent live, the candidate
        replays the golden-evidence set first and must stay within the
        candidate's tolerance (``artifact.tolerance`` when an artifact is
        given, else bit-identical).  Validation runs *outside* the registry
        lock — the incumbent serves unhindered while the candidate shadows
        — and only the pointer flip itself is locked.  Re-publishing an
        existing version string raises ``ValueError`` (versions are
        immutable once installed; pick a new version or roll back).
        """
        version = str(version)
        with self._lock:
            entry = self._entries.setdefault(name, _Entry())
            if version in entry.versions:
                raise ValueError(
                    f"model {name!r} version {version!r} is already installed"
                )
            incumbent = entry.versions[entry.live] if entry.live else None

        tolerance = float(artifact.tolerance) if artifact is not None else 0.0
        deviation = 0.0
        validated = False
        if validate and incumbent is not None:
            kwargs = {} if golden_rows is None else {"n_rows": int(golden_rows)}
            evidence = golden_evidence(incumbent.session.n_vars, **kwargs)
            reference = golden_replay(incumbent.session, evidence)
            candidate = golden_replay(session, evidence)
            deviation = replay_deviation(candidate, reference)
            validated = True
            if deviation > tolerance:
                raise ShadowValidationError(name, version, deviation, tolerance)

        model = ModelVersion(
            name=name, version=version, session=session, artifact=artifact
        )
        with self._lock:
            entry = self._entries.setdefault(name, _Entry())
            if version in entry.versions:
                raise ValueError(
                    f"model {name!r} version {version!r} is already installed"
                )
            previous = entry.live
            entry.versions[version] = model
            entry.order.append(version)
            entry.live = version  # the atomic hot-swap: one pointer store
        return PublishReport(
            name=name,
            version=version,
            previous_version=previous,
            validated=validated,
            deviation=deviation,
            tolerance=tolerance,
        )

    def rollback(self, name: str, version: Optional[str] = None) -> ModelVersion:
        """Re-point ``name`` at ``version`` (default: the previous one).

        The target must already be installed; no revalidation runs.  Returns
        the now-live :class:`ModelVersion`.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.live is None:
                raise KeyError(f"no live model named {name!r}")
            if version is None:
                live_index = entry.order.index(entry.live)
                if live_index == 0:
                    raise ValueError(
                        f"model {name!r} has no version older than {entry.live!r}"
                    )
                version = entry.order[live_index - 1]
            version = str(version)
            if version not in entry.versions:
                raise KeyError(
                    f"model {name!r} has no installed version {version!r}"
                )
            entry.live = version
            return entry.versions[version]

    def remove(self, name: str) -> None:
        """Drop ``name`` and every installed version."""
        with self._lock:
            self._entries.pop(name, None)
