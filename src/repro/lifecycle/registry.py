"""Versioned model registry: publish, shadow-validate, hot-swap, rollback.

The registry owns the name → live-version mapping a serving process routes
through.  Its contract:

* **publish** installs a new version under a name.  When an incumbent is
  live and validation is on, the candidate must first *replay the golden
  evidence set* (:mod:`repro.lifecycle.golden`) and stay within the
  candidate artifact's recorded ``tolerance`` of the incumbent's replay
  (``0.0`` = bit-identical, the default).  A candidate that deviates is
  rejected with :class:`ShadowValidationError` and the registry is left
  untouched — the incumbent keeps serving.
* **atomic hot-swap** — the live pointer flips under the registry lock,
  so a reader either sees the old version or the new one, never a mix.
  Readers that *pin* the resolved entry (the server pins at admission)
  keep executing in-flight work on the old version's tape after the swap.
* **rollback** re-points the live version at any retained older version
  without revalidation (it served traffic before; validation gates entry
  into the store, not re-activation).

The registry is engine-agnostic: entries hold an
:class:`~repro.api.session.InferenceSession` (usually built from a
:class:`~repro.lifecycle.artifact.ModelArtifact`, whose AOT tape makes
installation compile-free) plus the artifact when one exists.

Every lifecycle transition emits a **structured event**: an INFO/WARNING
log line on the ``repro.lifecycle`` logger, a trace event in the
:data:`repro.observability.TRACER` ring buffer (recorded even while
request tracing is off — lifecycle transitions are rare and always worth
keeping), and a labeled counter in the process-wide metrics registry.
``lifecycle.publish`` carries the measured golden-replay deviation and the
validate+swap duration; ``lifecycle.shadow_validation_failed`` and
``lifecycle.rollback`` carry the rejection and re-point details.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults.hooks import active_plan as _active_fault_plan
from ..faults.plan import InjectedCrash
from ..observability import REGISTRY, TRACER, metrics_enabled
from .artifact import ModelArtifact
from .golden import golden_evidence, golden_replay, replay_deviation

__all__ = [
    "ShadowValidationError",
    "ModelVersion",
    "PublishReport",
    "ModelRegistry",
]


logger = logging.getLogger("repro.lifecycle")


class ShadowValidationError(RuntimeError):
    """A candidate version deviated from the incumbent beyond its tolerance."""

    def __init__(
        self, name: str, version: str, deviation: float, tolerance: float
    ) -> None:
        super().__init__(
            f"model {name!r} version {version!r} failed shadow validation: "
            f"golden-replay deviation {deviation!r} exceeds tolerance {tolerance!r}"
        )
        self.name = name
        self.version = version
        self.deviation = deviation
        self.tolerance = tolerance


@dataclass(frozen=True)
class ModelVersion:
    """One installed version: the session serving it plus its provenance."""

    name: str
    version: str
    session: object
    artifact: Optional[ModelArtifact] = None


@dataclass(frozen=True)
class PublishReport:
    """What a successful publish did."""

    name: str
    version: str
    previous_version: Optional[str]
    validated: bool
    deviation: float = 0.0
    tolerance: float = 0.0


@dataclass
class _Entry:
    versions: Dict[str, ModelVersion] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    live: Optional[str] = None


class ModelRegistry:
    """Thread-safe versioned name → model store with atomic live pointers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                name for name, e in self._entries.items() if e.live is not None
            )

    def versions(self, name: str) -> List[str]:
        """Installed versions of ``name``, oldest first."""
        with self._lock:
            entry = self._entries.get(name)
            return list(entry.order) if entry else []

    def live_version(self, name: str) -> Optional[str]:
        with self._lock:
            entry = self._entries.get(name)
            return entry.live if entry else None

    def resolve(self, name: str) -> Optional[ModelVersion]:
        """The live :class:`ModelVersion` for ``name`` (``None`` if absent).

        One lock acquisition, one pointer read: callers that hold on to the
        returned object keep the pre-swap version for as long as they need
        it — this is how in-flight requests drain on the old tape.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.live is None:
                return None
            return entry.versions[entry.live]

    def get(self, name: str, version: str) -> Optional[ModelVersion]:
        with self._lock:
            entry = self._entries.get(name)
            return entry.versions.get(version) if entry else None

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def publish(
        self,
        name: str,
        version: str,
        session,
        artifact: Optional[ModelArtifact] = None,
        validate: bool = True,
        golden_rows: Optional[int] = None,
    ) -> PublishReport:
        """Install ``session`` as the live version of ``name``.

        With ``validate`` (the default) and an incumbent live, the candidate
        replays the golden-evidence set first and must stay within the
        candidate's tolerance (``artifact.tolerance`` when an artifact is
        given, else bit-identical).  Validation runs *outside* the registry
        lock — the incumbent serves unhindered while the candidate shadows
        — and only the pointer flip itself is locked.  Re-publishing an
        existing version string raises ``ValueError`` (versions are
        immutable once installed; pick a new version or roll back).
        """
        version = str(version)
        started = time.perf_counter()
        with self._lock:
            entry = self._entries.setdefault(name, _Entry())
            if version in entry.versions:
                raise ValueError(
                    f"model {name!r} version {version!r} is already installed"
                )
            incumbent = entry.versions[entry.live] if entry.live else None

        # Static verification gate: prove the candidate's IR well-formed
        # *before* spending shadow-validation replay time on it.  Catches
        # what the replay cannot — a plan that computes right values on the
        # golden rows but aliases live slots, understates liveness, or
        # carries dead kernels.  Runs outside the lock like validation.
        from ..statics.verifier import verify_compiled

        if artifact is not None:
            verify_compiled(artifact.tape, artifact.plan)
        elif getattr(session, "tape", None) is not None:
            verify_compiled(session.tape, None)

        tolerance = float(artifact.tolerance) if artifact is not None else 0.0
        deviation = 0.0
        validated = False
        if validate and incumbent is not None:
            kwargs = {} if golden_rows is None else {"n_rows": int(golden_rows)}
            evidence = golden_evidence(incumbent.session.n_vars, **kwargs)
            reference = golden_replay(incumbent.session, evidence)
            candidate = golden_replay(session, evidence)
            deviation = replay_deviation(candidate, reference)
            validated = True
            if deviation > tolerance:
                self._emit(
                    "lifecycle.shadow_validation_failed",
                    logging.WARNING,
                    name=name,
                    version=version,
                    incumbent=incumbent.version,
                    deviation=deviation,
                    tolerance=tolerance,
                    duration_ms=(time.perf_counter() - started) * 1e3,
                )
                raise ShadowValidationError(name, version, deviation, tolerance)

        model = ModelVersion(
            name=name, version=version, session=session, artifact=artifact
        )
        fault_plan = _active_fault_plan()
        if fault_plan is not None:
            # ``lifecycle.publish_crash``: die after validation but before
            # the pointer flip — the incumbent must keep serving untouched
            # (the chaos soak and the lifecycle tests assert exactly that).
            fault_plan.maybe_raise("lifecycle.publish_crash", InjectedCrash)
        with self._lock:
            entry = self._entries.setdefault(name, _Entry())
            if version in entry.versions:
                raise ValueError(
                    f"model {name!r} version {version!r} is already installed"
                )
            previous = entry.live
            entry.versions[version] = model
            entry.order.append(version)
            entry.live = version  # the atomic hot-swap: one pointer store
        self._emit(
            "lifecycle.publish",
            logging.INFO,
            name=name,
            version=version,
            previous=previous,
            validated=validated,
            deviation=deviation,
            tolerance=tolerance,
            duration_ms=(time.perf_counter() - started) * 1e3,
        )
        return PublishReport(
            name=name,
            version=version,
            previous_version=previous,
            validated=validated,
            deviation=deviation,
            tolerance=tolerance,
        )

    def rollback(self, name: str, version: Optional[str] = None) -> ModelVersion:
        """Re-point ``name`` at ``version`` (default: the previous one).

        The target must already be installed; no revalidation runs.  Returns
        the now-live :class:`ModelVersion`.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.live is None:
                raise KeyError(f"no live model named {name!r}")
            if version is None:
                live_index = entry.order.index(entry.live)
                if live_index == 0:
                    raise ValueError(
                        f"model {name!r} has no version older than {entry.live!r}"
                    )
                version = entry.order[live_index - 1]
            version = str(version)
            if version not in entry.versions:
                raise KeyError(
                    f"model {name!r} has no installed version {version!r}"
                )
            previous = entry.live
            entry.live = version
            model = entry.versions[version]
        self._emit(
            "lifecycle.rollback",
            logging.INFO,
            name=name,
            version=version,
            previous=previous,
        )
        return model

    def remove(self, name: str) -> None:
        """Drop ``name`` and every installed version."""
        with self._lock:
            self._entries.pop(name, None)

    # ------------------------------------------------------------------ #
    # Structured events
    # ------------------------------------------------------------------ #
    @staticmethod
    def _emit(event: str, level: int, *, name: str, **attrs) -> None:
        """Record one lifecycle transition in all three sinks.

        Log line (human operators), trace event (``always=True`` — a swap
        must be reconstructible from the trace export even when request
        tracing is off), and a per-model counter in the process-wide
        registry (dashboards alert on ``*_total`` rates).  Emission is
        deliberately outside the registry lock: a slow logging handler
        must never serialize the serving path's ``resolve`` calls.
        """
        logger.log(
            level,
            "%s: %s",
            event,
            " ".join(
                [f"name={name}"]
                + [f"{key}={value}" for key, value in attrs.items()]
            ),
        )
        TRACER.event(event, always=True, model=name, **attrs)
        if metrics_enabled():
            counter = event.replace(".", "_", 1).replace(".", "_") + "_total"
            REGISTRY.counter(counter, model=name).inc()
