"""Lifecycle CLI: build AOT artifacts and health-check a serving cold start.

Two subcommands, the deployment loop CI exercises end to end
(``.github/workflows/ci.yml``):

``build``
    Package a model as an AOT artifact file.  ``--model`` names a suite
    benchmark (:mod:`repro.suite.registry`); ``--train`` instead learns a
    model from the synthetic dataset generators
    (:mod:`repro.lifecycle.train`) with ``--n-vars`` / ``--n-rows`` /
    ``--seed`` controlling the dataset spec.

``serve-check``
    The golden-replay gate for a freshly restarted server: load the
    artifact, host it on an :class:`~repro.serving.server.InferenceServer`
    (pure deserialization — no compile, no plan), replay the golden
    evidence set through the *served* path, and require the responses to be
    bit-identical to an offline session on the same artifact.  Exit code 0
    on pass, 1 on any deviation.

Examples::

    python -m repro.lifecycle build --model Banknote --out banknote.json
    python -m repro.lifecycle build --train --n-vars 12 --out learned.json
    python -m repro.lifecycle serve-check banknote.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np


def _cmd_build(args: argparse.Namespace) -> int:
    from .artifact import save_artifact

    if args.train:
        from ..spn.datasets import DatasetSpec
        from .train import TrainingJob, train_artifact

        name = args.model or f"learned-{args.n_vars}v"
        job = TrainingJob(
            name=name,
            dataset=DatasetSpec(
                n_vars=args.n_vars, n_rows=args.n_rows, seed=args.seed
            ),
            version=args.version,
        )
        artifact = train_artifact(job)
    else:
        if not args.model:
            print("build: --model NAME is required without --train", file=sys.stderr)
            return 2
        from ..suite.registry import benchmark_artifact

        artifact = benchmark_artifact(args.model, version=args.version)
    path = save_artifact(artifact, Path(args.out))
    print(
        f"built {artifact.name!r} version {artifact.version} "
        f"({artifact.n_vars} vars) -> {path}"
    )
    print(f"content hash: {artifact.content_hash}")
    return 0


def _cmd_serve_check(args: argparse.Namespace) -> int:
    from ..serving.server import InferenceServer
    from .artifact import load_artifact
    from .golden import golden_evidence, replay_deviation

    from ..api.queries import Likelihood, LogLikelihood, Marginal

    artifact = load_artifact(Path(args.path))
    print(
        f"loaded {artifact.name!r} version {artifact.version} "
        f"({artifact.n_vars} vars, hash {artifact.content_hash[:12]})"
    )
    # load_artifact already ran the static gate; assert it explicitly so
    # this check certifies the gate itself, not just the happy path.
    from ..statics.verifier import verify_compiled

    tape_facts, plan_facts = verify_compiled(artifact.tape, artifact.plan)
    print(
        f"static verification: {tape_facts.n_kernels} tape kernels, "
        f"{plan_facts.n_kernels} planned kernels, "
        f"{plan_facts.n_physical} physical rows -> OK"
    )
    evidence = golden_evidence(artifact.n_vars, n_rows=args.rows)
    queries = {
        "likelihood": Likelihood(evidence=evidence),
        "log_likelihood": LogLikelihood(evidence=evidence),
        "marginal": Marginal(evidence=evidence, normalize=True),
    }
    session = artifact.session()
    reference = {key: np.asarray(session.run(q)) for key, q in queries.items()}
    with InferenceServer(models=[artifact]) as server:
        served = {
            key: np.asarray(server.query(artifact.name, q))
            for key, q in queries.items()
        }
        # The stats control endpoint is part of the serving surface this
        # gate certifies: it must respond, serialize to strict JSON, and
        # account for the replay traffic just issued.
        stats = server.control("stats")
        json.loads(json.dumps(stats))
        if stats["metrics"]["requests"] < len(queries):
            print(
                f"stats endpoint undercounts: {stats['metrics']['requests']} "
                f"requests reported, {len(queries)} issued -> FAIL"
            )
            return 1
        print(
            f"stats endpoint: {int(stats['metrics']['requests'])} requests, "
            f"live versions {stats['models']} -> OK"
        )
    deviation = replay_deviation(served, reference)
    tolerance = float(artifact.tolerance)
    verdict = "PASS" if deviation <= tolerance else "FAIL"
    print(
        f"golden replay over {evidence.shape[0]} rows: deviation {deviation!r} "
        f"(tolerance {tolerance!r}) -> {verdict}"
    )
    return 0 if deviation <= tolerance else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lifecycle",
        description="Build AOT model artifacts and golden-check a cold start.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="package a model as an AOT artifact file")
    build.add_argument("--model", help="suite benchmark name (or artifact name with --train)")
    build.add_argument("--train", action="store_true", help="learn a model instead of using a suite profile")
    build.add_argument("--n-vars", type=int, default=12, help="dataset width for --train")
    build.add_argument("--n-rows", type=int, default=2000, help="dataset rows for --train")
    build.add_argument("--seed", type=int, default=0, help="dataset seed for --train")
    build.add_argument("--version", default="1", help="artifact version string")
    build.add_argument("--out", required=True, help="output artifact path")
    build.set_defaults(func=_cmd_build)

    check = sub.add_parser(
        "serve-check", help="cold-start a server from an artifact and golden-replay it"
    )
    check.add_argument("path", help="artifact file to load")
    check.add_argument("--rows", type=int, default=64, help="golden-evidence rows")
    check.set_defaults(func=_cmd_serve_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
