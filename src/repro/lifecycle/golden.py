"""Golden-evidence replay: the deterministic gate behind shadow validation.

A *golden-evidence set* is a deterministic batch of evidence rows — mixed
observed / marginalized entries, a fully-marginalized row (the partition
function), and a fully-observed row — generated from ``(n_vars, seed)``
only, so every process that knows a model's width replays the exact same
rows.  :func:`golden_replay` evaluates a session's core query surface on
the set; :func:`replay_deviation` reduces two replays to a single scalar
(maximum absolute deviation, ``0.0`` for bit-identical), which the model
registry compares against an artifact's recorded tolerance before a
candidate version may take traffic (:mod:`repro.lifecycle.registry`).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..spn.evaluate import MARGINALIZED

__all__ = [
    "GOLDEN_ROWS",
    "GOLDEN_SEED",
    "golden_evidence",
    "golden_replay",
    "replay_deviation",
]

#: Default number of rows in a golden-evidence set.
GOLDEN_ROWS = 64

#: Default seed; fixed so every builder/server pair replays the same rows.
GOLDEN_SEED = 20200318


def golden_evidence(
    n_vars: int, seed: int = GOLDEN_SEED, n_rows: int = GOLDEN_ROWS
) -> np.ndarray:
    """A deterministic ``(n_rows, n_vars)`` evidence batch.

    Rows mix observed values and :data:`~repro.spn.evaluate.MARGINALIZED`
    entries with varying observance density; row 0 is fully marginalized
    (the partition function — any weight corruption moves it) and row 1 is
    fully observed (a single joint state — sensitive to individual leaves).
    """
    if n_vars < 1:
        raise ValueError(f"n_vars must be >= 1, got {n_vars}")
    rng = np.random.default_rng([int(seed), int(n_vars)])
    values = rng.integers(0, 2, size=(n_rows, n_vars))
    # Per-row observance density spanning sparse to dense evidence.
    density = np.linspace(0.1, 0.9, n_rows)[:, None]
    observed = rng.random(size=(n_rows, n_vars)) < density
    data = np.where(observed, values, MARGINALIZED)
    if n_rows > 0:
        data[0, :] = MARGINALIZED
    if n_rows > 1:
        data[1, :] = values[1]
    return data.astype(np.int64)


def golden_replay(session, evidence: np.ndarray) -> Dict[str, np.ndarray]:
    """Evaluate the golden set through a session's core query surface.

    Returns linear likelihoods, log likelihoods, and normalized marginals
    — the three passes every other query kind is composed from (sweep
    kinds are deterministic functions of repeated log passes, and
    ``Sample`` draws from per-row conditionals, so agreement here implies
    agreement everywhere the same tape executes).
    """
    from ..api.queries import Likelihood, LogLikelihood, Marginal

    return {
        "likelihood": np.asarray(session.run(Likelihood(evidence=evidence))),
        "log_likelihood": np.asarray(session.run(LogLikelihood(evidence=evidence))),
        "marginal": np.asarray(
            session.run(Marginal(evidence=evidence, normalize=True))
        ),
    }


def replay_deviation(
    candidate: Dict[str, np.ndarray], reference: Dict[str, np.ndarray]
) -> float:
    """Maximum absolute deviation between two replays.

    ``0.0`` means bit-identical (checked with ``array_equal`` first, so
    matching NaN/inf patterns short-circuit to exact equality); ``inf``
    means structural disagreement — different query sets, shapes, or
    NaN/inf placement.  Otherwise the largest absolute difference over the
    finite entries.
    """
    if set(candidate) != set(reference):
        return float("inf")
    worst = 0.0
    for key, want in reference.items():
        got = np.asarray(candidate[key])
        want = np.asarray(want)
        if got.shape != want.shape:
            return float("inf")
        if np.array_equal(got, want, equal_nan=True):
            continue
        finite_got = np.isfinite(got)
        finite_want = np.isfinite(want)
        if not np.array_equal(finite_got, finite_want) or not np.array_equal(
            got[~finite_got], want[~finite_want], equal_nan=True
        ):
            return float("inf")
        if finite_want.any():
            worst = max(
                worst, float(np.max(np.abs(got[finite_got] - want[finite_want])))
            )
    return worst
