"""Model lifecycle: learn → compile → AOT artifact → versioned registry.

The production loop around the SPN substrate (ROADMAP item 4):

* :mod:`~repro.lifecycle.artifact` — content-hashed, integrity-checked
  files carrying an SPN together with its compiled tape and memory plan,
  so server cold start is deserialization, not compilation, and executes
  bit-identically to a fresh compile.
* :mod:`~repro.lifecycle.train` — a parallel learn → compile → package
  pipeline over the synthetic dataset generators, cached on disk the same
  way the sweep runner caches measurements.
* :mod:`~repro.lifecycle.golden` — deterministic golden-evidence replay,
  the measurement behind shadow validation.
* :mod:`~repro.lifecycle.registry` — the versioned model store with
  shadow-validated publish, atomic hot-swap, and rollback that
  :class:`~repro.serving.server.InferenceServer` routes through.

``python -m repro.lifecycle`` exposes the build/serve-check CLI used by CI.
"""

from .artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ArtifactError,
    ArtifactFormatError,
    ArtifactIntegrityError,
    ModelArtifact,
    artifact_from_payload,
    build_artifact,
    load_artifact,
    save_artifact,
)
from .golden import (
    GOLDEN_ROWS,
    GOLDEN_SEED,
    golden_evidence,
    golden_replay,
    replay_deviation,
)
from .registry import (
    ModelRegistry,
    ModelVersion,
    PublishReport,
    ShadowValidationError,
)
from .train import (
    DEFAULT_ARTIFACT_DIR,
    TrainingJob,
    TrainingResult,
    job_key,
    train_artifact,
    train_many,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactIntegrityError",
    "ModelArtifact",
    "build_artifact",
    "artifact_from_payload",
    "save_artifact",
    "load_artifact",
    "GOLDEN_ROWS",
    "GOLDEN_SEED",
    "golden_evidence",
    "golden_replay",
    "replay_deviation",
    "ModelRegistry",
    "ModelVersion",
    "PublishReport",
    "ShadowValidationError",
    "DEFAULT_ARTIFACT_DIR",
    "TrainingJob",
    "TrainingResult",
    "job_key",
    "train_artifact",
    "train_many",
]
