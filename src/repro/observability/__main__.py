"""Observability CLI: dump a metrics snapshot or summarize a trace export.

Two subcommands:

``snapshot``
    Print the process-wide :data:`~repro.observability.REGISTRY` — as JSON
    (default) or Prometheus text (``--format prometheus``).  With
    ``--demo`` a small served workload runs first so the snapshot has
    something to show (a fresh process's registry is empty by definition);
    this doubles as an end-to-end smoke test of the instrumented serving
    path.

``trace``
    Summarize a span JSONL file (written by
    ``repro.observability.TRACER.export_jsonl``): span counts and total /
    mean duration per span name, the number of distinct traces, and the
    slowest traces with their dominant spans.

Examples::

    python -m repro.observability snapshot --demo
    python -m repro.observability snapshot --format prometheus
    python -m repro.observability trace spans.jsonl --top 10
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List


def _run_demo_workload() -> None:
    """Serve a short query stream so the registry has live numbers."""
    from .. import observability
    from ..serving import InferenceServer

    observability.configure(metrics=True, tracing=True)
    with InferenceServer(models=["Banknote"]) as server:
        for value in (0, 1):
            server.query("Banknote", {0: value}, kind="log_likelihood")
        server.query("Banknote", {1: 1}, kind="likelihood")


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from .metrics import REGISTRY

    if args.demo:
        _run_demo_workload()
    if args.format == "prometheus":
        sys.stdout.write(REGISTRY.render_prometheus())
    else:
        json.dump(REGISTRY.snapshot(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


def _load_spans(path: Path) -> List[dict]:
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                print(f"{path}:{line_no}: not JSON, skipped", file=sys.stderr)
                continue
            if isinstance(record, dict):
                spans.append(record)
    return spans


def _cmd_trace(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if not path.exists():
        print(f"trace: no such file {path}", file=sys.stderr)
        return 2
    spans = _load_spans(path)
    if not spans:
        print(f"trace: {path} holds no spans")
        return 0

    by_name: Dict[str, List[float]] = defaultdict(list)
    by_trace: Dict[str, List[dict]] = defaultdict(list)
    for span in spans:
        by_name[str(span.get("name", "?"))].append(float(span.get("duration_s", 0.0)))
        by_trace[str(span.get("trace_id", "?"))].append(span)

    print(f"{len(spans)} spans, {len(by_trace)} traces, {len(by_name)} span names\n")
    header = f"{'span':<28} {'count':>7} {'total_ms':>10} {'mean_ms':>9} {'max_ms':>9}"
    print(header)
    print("-" * len(header))
    rows = sorted(by_name.items(), key=lambda kv: sum(kv[1]), reverse=True)
    for name, durations in rows[: args.top]:
        total = sum(durations)
        print(
            f"{name:<28} {len(durations):>7} {total * 1e3:>10.3f} "
            f"{total / len(durations) * 1e3:>9.3f} {max(durations) * 1e3:>9.3f}"
        )

    def trace_duration(records: List[dict]) -> float:
        # Root spans (no parent) bound the trace; fall back to the sum when
        # the roots were evicted from the ring buffer.
        roots = [r for r in records if not r.get("parent_id")]
        pool = roots or records
        return sum(float(r.get("duration_s", 0.0)) for r in pool)

    slowest = sorted(by_trace.items(), key=lambda kv: trace_duration(kv[1]), reverse=True)
    print(f"\nslowest traces (of {len(by_trace)}):")
    for trace_id, records in slowest[: min(args.top, 5)]:
        dominant = max(records, key=lambda r: float(r.get("duration_s", 0.0)))
        print(
            f"  {trace_id}: {trace_duration(records) * 1e3:.3f} ms over "
            f"{len(records)} spans; dominant {dominant.get('name')!r} "
            f"({float(dominant.get('duration_s', 0.0)) * 1e3:.3f} ms)"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description="Dump a metrics snapshot or summarize a trace JSONL export.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    snapshot = sub.add_parser("snapshot", help="print the process-wide metrics registry")
    snapshot.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="output format (default json)",
    )
    snapshot.add_argument(
        "--demo", action="store_true",
        help="serve a small workload first so the snapshot is non-empty",
    )
    snapshot.set_defaults(func=_cmd_snapshot)

    trace = sub.add_parser("trace", help="summarize an exported span JSONL file")
    trace.add_argument("path", help="JSONL file written by TRACER.export_jsonl")
    trace.add_argument("--top", type=int, default=20, help="rows per table")
    trace.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
