"""Opt-in per-fused-kernel profiling of compiled-tape execution.

The paper's claims are about where cycles and bytes go during SPN
inference; this module measures exactly that for the software executors.
A :class:`TapeProfiler` used as a context manager activates itself for the
current thread/task::

    with TapeProfiler() as prof:
        session.run(LogLikelihood(evidence=batch))
    print(prof.render())

While active, every tape execution — planned, sharded or legacy, via
:meth:`repro.spn.compiled.CompiledTape.execute_batch` — records one sample
per fused kernel: **elapsed** wall time (monotonic clock), **rows**
processed and **bytes** moved (operand reads + destination writes at 8
bytes/value, straight off the memory plan's physical layout — the
quantity the paper argues is the bottleneck).  Input-encoding work is
attributed to a per-kernel ``encode`` pseudo-entry, so the aggregate
accounts for essentially all of a pass's wall time (the benchmark gate
requires >= 90%).

The hooks this relies on are *compiled out* when no profiler is active:
executors resolve :func:`active_profiler` **once per batch** and take the
original uninstrumented kernel loop when it returns ``None`` — per-kernel
timing never taxes an unprofiled run.  Sharded execution passes the
resolved profiler into its worker threads explicitly (context variables
do not cross thread-pool boundaries); :meth:`TapeProfiler.record` is
thread-safe, so shard samples merge into the same aggregate.

Aggregation is by **kernel key** (tape position, opcode, fused width):
:meth:`TapeProfiler.table` returns the "top kernels" rows sorted by total
elapsed, with share-of-total columns, and :meth:`TapeProfiler.render`
formats the ASCII table the CLI and the docs show.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["KernelStat", "TapeProfiler", "active_profiler"]

_ACTIVE: ContextVar[Optional["TapeProfiler"]] = ContextVar(
    "repro_tape_profiler", default=None
)


def active_profiler() -> Optional["TapeProfiler"]:
    """The profiler active for this thread/task, or ``None`` (the fast path).

    Executors call this once per batch; a ``None`` answer routes to the
    uninstrumented kernel loop, so disabled-profiling overhead is a single
    context-variable read per batch.
    """
    return _ACTIVE.get()


@dataclass
class KernelStat:
    """Aggregated samples of one fused kernel across profiled batches."""

    key: str
    op: str
    width: int
    calls: int = 0
    elapsed_s: float = 0.0
    rows: int = 0
    bytes: int = 0

    def merge_sample(self, elapsed_s: float, rows: int, nbytes: int) -> None:
        self.calls += 1
        self.elapsed_s += elapsed_s
        self.rows += rows
        self.bytes += nbytes


@dataclass
class TapeProfiler:
    """Collects per-kernel samples while active (see module docstring)."""

    #: Wall time of whole profiled tape passes (set by the executors around
    #: the kernel loop) — the denominator of :meth:`coverage`.
    pass_elapsed_s: float = 0.0
    n_passes: int = 0
    _stats: Dict[str, KernelStat] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------ #
    # Activation
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "TapeProfiler":
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        _ACTIVE.reset(self._token)
        return False

    # ------------------------------------------------------------------ #
    # Recording (called by the executors)
    # ------------------------------------------------------------------ #
    def record(
        self, key: str, op: str, width: int, elapsed_s: float, rows: int, nbytes: int
    ) -> None:
        """Merge one kernel execution sample (thread-safe, shards included)."""
        with self._lock:
            stat = self._stats.get(key)
            if stat is None:
                stat = KernelStat(key=key, op=op, width=width)
                self._stats[key] = stat
            stat.merge_sample(elapsed_s, rows, nbytes)

    def record_pass(self, elapsed_s: float) -> None:
        """Account one whole tape pass's wall time (coverage denominator)."""
        with self._lock:
            self.pass_elapsed_s += elapsed_s
            self.n_passes += 1

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def total_elapsed_s(self) -> float:
        with self._lock:
            return sum(s.elapsed_s for s in self._stats.values())

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(s.bytes for s in self._stats.values())

    def coverage(self) -> float:
        """Fraction of profiled pass wall time attributed to kernels.

        ``sum(kernel elapsed) / sum(pass elapsed)`` — 1.0 means every
        profiled microsecond is attributed to a specific kernel; the
        benchmark gate requires >= 0.9.  ``0.0`` before any pass ran.
        """
        with self._lock:
            kernel_time = sum(s.elapsed_s for s in self._stats.values())
            pass_time = self.pass_elapsed_s
        return kernel_time / pass_time if pass_time > 0 else 0.0

    def table(self, top: Optional[int] = None) -> List[Dict[str, object]]:
        """Top-kernels rows sorted by total elapsed, share columns included."""
        with self._lock:
            stats = sorted(
                self._stats.values(), key=lambda s: s.elapsed_s, reverse=True
            )
            total_time = sum(s.elapsed_s for s in stats) or 1.0
        if top is not None:
            stats = stats[:top]
        return [
            {
                "kernel": s.key,
                "op": s.op,
                "width": s.width,
                "calls": s.calls,
                "elapsed_s": s.elapsed_s,
                "share": s.elapsed_s / total_time,
                "rows": s.rows,
                "bytes": s.bytes,
                "gb_per_s": (s.bytes / s.elapsed_s / 1e9) if s.elapsed_s > 0 else 0.0,
            }
            for s in stats
        ]

    def render(self, top: int = 20) -> str:
        """The top-kernels ASCII table (what the CLI prints)."""
        rows = self.table(top=top)
        header = (
            f"{'kernel':<18} {'op':<4} {'width':>5} {'calls':>7} "
            f"{'elapsed_ms':>10} {'share':>6} {'rows':>10} {'MB':>9} {'GB/s':>6}"
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row['kernel']:<18} {row['op']:<4} {row['width']:>5} "
                f"{row['calls']:>7} {row['elapsed_s'] * 1e3:>10.3f} "
                f"{row['share']:>6.1%} {row['rows']:>10} "
                f"{row['bytes'] / 1e6:>9.2f} {row['gb_per_s']:>6.1f}"
            )
        lines.append(
            f"total: {self.total_elapsed_s * 1e3:.3f} ms kernel time over "
            f"{self.n_passes} passes ({self.coverage():.1%} of pass wall time)"
        )
        return "\n".join(lines)
