"""Process-wide metrics registry: counters, gauges and fixed-bucket histograms.

Every layer of the system — serving admission, the micro-batch queue, the
model-lifecycle registry, the tape executors — reports into one substrate so
"what is the server doing right now" has a single answer.  The design is the
standard pull-model shape (Prometheus client libraries, OpenMetrics), kept
zero-dependency:

* a :class:`MetricsRegistry` owns named instruments, each identified by a
  metric **name** plus a sorted **label set** (``requests_total{kind="mpe",
  model="Audio"}``); :func:`MetricsRegistry.counter` and friends are
  get-or-create, so instrument handles can be cached by hot paths or looked
  up ad hoc by cold ones;
* three instrument kinds: :class:`Counter` (monotone float), :class:`Gauge`
  (set/add), and :class:`Histogram` (fixed upper-bound buckets plus a
  bounded rolling sample window for exact quantiles — the window is what
  keeps :meth:`Histogram.quantile` exact while bucket counts stay
  Prometheus-renderable and the memory stays bounded);
* every update is thread-safe (one lock per instrument; registration takes
  the registry lock), so serving workers, admission threads and background
  publishers hammer the same instruments without coordination;
* two read forms: :meth:`MetricsRegistry.snapshot` — one consistent
  JSON-serializable dict keyed ``name{label="v",...}`` — and
  :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format, so a scrape endpoint (or the
  ``python -m repro.observability snapshot`` CLI) is a string away.

:data:`REGISTRY` is the process-wide default registry.  Subsystems that
need isolated numbers (each :class:`~repro.serving.metrics.ServingMetrics`
instance, tests) construct private registries; naming conventions are
documented in ``docs/observability.md``.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "LATENCY_BUCKETS",
]

#: Default histogram upper bounds (seconds), log-spaced across the latency
#: range a served query can realistically land in: 100us to 10s.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)

#: Default rolling-window size for histogram quantile samples.
DEFAULT_WINDOW = 8192

LabelValue = Union[str, int, float, bool]


def _label_key(labels: Mapping[str, LabelValue]) -> str:
    """Render a label mapping as the canonical sorted ``{k="v",...}`` suffix."""
    if not labels:
        return ""
    parts = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + parts + "}"


class Counter:
    """A monotonically increasing value (requests served, rows executed)."""

    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, LabelValue]):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot_value(self) -> float:
        return self.value


class Gauge:
    """A value that goes both ways (queue depth, live model versions)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, LabelValue]):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket distribution with a bounded window for exact quantiles.

    ``buckets`` are inclusive upper bounds (an implicit ``+Inf`` bucket is
    always appended); ``observe`` increments the matching cumulative-style
    counts, the running sum/count, and a rolling deque of the most recent
    ``window`` raw samples.  Quantiles are computed exactly over that
    window (the tail of a long-running server's traffic), not interpolated
    from buckets — bucket counts exist for the Prometheus rendering and for
    all-of-history rate math.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, LabelValue],
        buckets: Sequence[float] = LATENCY_BUCKETS,
        window: int = DEFAULT_WINDOW,
    ):
        self.name = name
        self.labels = dict(labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.buckets: Tuple[float, ...] = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +Inf bucket last
        self._sum = 0.0
        self._count = 0
        self._samples: Deque[float] = deque(maxlen=max(int(window), 1))

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._samples.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Exact quantile over the rolling window; ``None`` with no samples.

        Linear interpolation between order statistics (the ``np.quantile``
        default), implemented locally so the registry has no NumPy
        dependency on its read path.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        if len(samples) == 1:
            return samples[0]
        position = q * (len(samples) - 1)
        lo = math.floor(position)
        hi = min(lo + 1, len(samples) - 1)
        frac = position - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    def snapshot_value(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        return {
            "buckets": {
                **{str(bound): counts[i] for i, bound in enumerate(self.buckets)},
                "+Inf": counts[-1],
            },
            "count": total,
            "sum": sum_,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Thread-safe name+labels → instrument store with snapshot/rendering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, str], Instrument] = {}

    # ------------------------------------------------------------------ #
    # Registration (get-or-create)
    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, labels: Mapping, **kwargs) -> Instrument:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        window: int = DEFAULT_WINDOW,
        **labels: LabelValue,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, buckets=buckets, window=window
        )

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def instruments(self) -> List[Instrument]:
        with self._lock:
            return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, object]:
        """One consistent reading of every instrument, JSON-serializable.

        Keys are ``name`` or ``name{label="v",...}`` (labels sorted);
        counter/gauge values are floats, histograms nest ``{buckets,
        count, sum}``.  The dict round-trips through ``json.dumps``.
        """
        return {
            instrument.name + _label_key(instrument.labels): instrument.snapshot_value()
            for instrument in self.instruments()
        }

    def render_prometheus(self) -> str:
        """The Prometheus/OpenMetrics text exposition of every instrument."""
        lines: List[str] = []
        seen_types = set()
        for instrument in self.instruments():
            if instrument.name not in seen_types:
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
                seen_types.add(instrument.name)
            label_key = _label_key(instrument.labels)
            if isinstance(instrument, Histogram):
                snap = instrument.snapshot_value()
                cumulative = 0
                for bound in (*instrument.buckets, "+Inf"):
                    cumulative += snap["buckets"][str(bound)]
                    bucket_labels = dict(instrument.labels, le=str(bound))
                    lines.append(
                        f"{instrument.name}_bucket{_label_key(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(f"{instrument.name}_sum{label_key} {snap['sum']}")
                lines.append(f"{instrument.name}_count{label_key} {snap['count']}")
            else:
                lines.append(f"{instrument.name}{label_key} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Drop every instrument (tests; a fresh process starts empty anyway)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide default registry every subsystem reports into unless it
#: was handed a private one.
REGISTRY = MetricsRegistry()
