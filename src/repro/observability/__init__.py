"""Unified observability: metrics, request tracing and kernel profiling.

Three zero-dependency pillars, threaded through every layer of the
reproduction (session → tape executors → serving → lifecycle):

* :mod:`repro.observability.metrics` — a process-wide registry of
  counters, gauges and fixed-bucket histograms (:data:`REGISTRY`), with
  snapshot-as-dict and Prometheus text rendering;
* :mod:`repro.observability.trace` — contextvar-propagated span tracing
  into a bounded ring buffer (:data:`TRACER`), JSONL-exportable, so one
  served query yields a span tree from admission to response scatter;
* :mod:`repro.observability.profile` — an opt-in per-fused-kernel
  profiler (:class:`TapeProfiler`) for compiled-tape execution.

Switchboard semantics (the benchmark gate in
``benchmarks/test_bench_observability.py`` enforces the costs):

* **metrics** default **on** — serving-layer counters amortize per
  request/batch, never per kernel;
* **tracing** default **off** — each instrumentation site costs one
  attribute read while off; enabling it stays within the gated overhead
  budget on the planned executor;
* **profiling** is per-call opt-in (``with TapeProfiler():``), never a
  global flag — per-kernel clocks are the one genuinely expensive
  instrument, and :func:`configure` deliberately has no switch for it.

``python -m repro.observability`` dumps a metrics snapshot or summarizes
an exported trace; see ``docs/observability.md`` for the naming scheme,
span taxonomy and profiler contract.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from .profile import TapeProfiler, active_profiler
from .trace import TRACER, Span, TraceContext, Tracer, current_trace_id

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "TRACER",
    "Tracer",
    "Span",
    "TraceContext",
    "current_trace_id",
    "TapeProfiler",
    "active_profiler",
    "configure",
    "metrics_enabled",
    "tracing_enabled",
    "observability_scope",
]

#: Metrics master switch (module-level so the hot-path check is one global
#: read; flipped only through :func:`configure`).
_METRICS_ENABLED = True


def metrics_enabled() -> bool:
    """Whether the serving layers record into their metric registries."""
    return _METRICS_ENABLED


def tracing_enabled() -> bool:
    """Whether :data:`TRACER` records spans (one attribute read)."""
    return TRACER.enabled


def configure(
    metrics: Optional[bool] = None, tracing: Optional[bool] = None
) -> None:
    """Flip the process-wide observability switches (``None`` = leave as is).

    ``configure(metrics=False, tracing=False)`` is "observability
    disabled" — the state the <=2% overhead gate measures; the default
    state is ``metrics=True, tracing=False``.  Per-kernel profiling has no
    switch here: activate a :class:`TapeProfiler` around the code you want
    profiled.
    """
    global _METRICS_ENABLED
    if metrics is not None:
        _METRICS_ENABLED = bool(metrics)
    if tracing is not None:
        TRACER.enabled = bool(tracing)


@contextmanager
def observability_scope(
    metrics: Optional[bool] = None, tracing: Optional[bool] = None
) -> Iterator[None]:
    """Temporarily reconfigure the switches (tests and benchmarks)."""
    saved = (_METRICS_ENABLED, TRACER.enabled)
    configure(metrics=metrics, tracing=tracing)
    try:
        yield
    finally:
        configure(metrics=saved[0], tracing=saved[1])
