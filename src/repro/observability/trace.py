"""Lightweight span tracing: where did one query spend its time?

A **span** is a named, monotonic-clock-timed interval with a trace id, a
span id and a parent span id; the spans of one served query form a tree —
admission → queue wait → batch assembly → plan → encode → tape passes →
response scatter — all sharing the **trace id** minted at admission.  The
pieces:

* trace context propagates through a :class:`contextvars.ContextVar`, so
  nested ``with TRACER.span(...)`` blocks parent automatically and async
  code inherits context for free.  Threads do **not** inherit context
  (each serving worker thread starts blank), so the serving layer carries
  an explicit :class:`TraceContext` on every queued work item and
  re-enters it with :func:`Tracer.activate` — that is how a query keeps
  one trace id across the admission thread, any number of worker threads,
  and micro-batch splits;
* finished spans land in a bounded in-memory **ring buffer**
  (``deque(maxlen=capacity)``): a long-running server keeps the most
  recent window of spans and never grows;
* :meth:`Tracer.export_jsonl` writes the buffer one JSON object per line
  for offline analysis (``python -m repro.observability trace <file>``
  summarizes one).

Tracing is **disabled by default** and costs one attribute read per
instrumentation site when off (``TRACER.span`` returns a shared no-op
context manager).  Enable it with ``repro.observability.configure
(tracing=True)``.  **Events** — zero-duration records used by the model
lifecycle for publish/swap/rollback transitions — can be recorded with
``always=True`` so the control-plane audit trail exists even when request
tracing is off; they are rare by construction.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "current_trace_id",
]

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_CAPACITY = 8192


@dataclass(frozen=True)
class TraceContext:
    """The propagation half of a span: its trace id and span id."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One finished (or in-flight) span record."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    #: Monotonic start (``perf_counter``) — for durations and ordering.
    t_start: float
    #: Wall-clock start (``time.time``) — for correlating exports.
    t_wall: float
    duration_s: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    kind: str = "span"  # "span" | "event"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "t_wall": self.t_wall,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        """No-op attribute setter (mirrors :class:`_LiveSpan.set`)."""


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into the tracer's ring buffer."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._token = None

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (pass counts, row counts)."""
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self._token = self._tracer._context.set(
            TraceContext(self._span.trace_id, self._span.span_id)
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._context.reset(self._token)
        self._span.duration_s = time.perf_counter() - self._span.t_start
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._append(self._span)
        return False


class Tracer:
    """Contextvar-propagated span tracing into a bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        #: Master switch — flipped by :func:`repro.observability.configure`.
        self.enabled = False
        self._context: ContextVar[Optional[TraceContext]] = ContextVar(
            "repro_trace_context", default=None
        )
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque(maxlen=max(int(capacity), 1))
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Context propagation
    # ------------------------------------------------------------------ #
    def _next_id(self, prefix: str) -> str:
        with self._lock:
            return f"{prefix}{next(self._ids):08x}"

    def current(self) -> Optional[TraceContext]:
        """The active trace context of this thread/task (``None`` outside spans)."""
        return self._context.get()

    @contextmanager
    def activate(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Re-enter a captured context in another thread.

        Serving workers run queued rows on threads that never saw the
        admission span; activating the work item's captured context makes
        every span opened inside parent to the admitted query — one trace
        id from admission to response.  ``None`` deactivates (spans opened
        inside start fresh traces).
        """
        token = self._context.set(context)
        try:
            yield
        finally:
            self._context.reset(token)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: object) -> Union[_LiveSpan, _NullSpan]:
        """Open a span (used as a context manager).

        Disabled tracing returns a shared no-op manager — the caller's
        ``with`` costs two trivial calls and no allocation.
        """
        if not self.enabled:
            return _NULL_SPAN
        parent = self._context.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._next_id("t"), None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._next_id("s"),
            parent_id=parent_id,
            t_start=time.perf_counter(),
            t_wall=time.time(),
            attrs=dict(attrs),
        )
        return _LiveSpan(self, span)

    def event(self, name: str, always: bool = False, **attrs: object) -> None:
        """Record a zero-duration structured event.

        ``always=True`` bypasses the enabled switch — the model lifecycle
        uses it so publish/swap/rollback transitions are auditable even
        when request tracing is off (they are rare, bounded control-plane
        operations).
        """
        if not (self.enabled or always):
            return
        parent = self._context.get()
        self._append(
            Span(
                name=name,
                trace_id=parent.trace_id if parent else self._next_id("t"),
                span_id=self._next_id("e"),
                parent_id=parent.span_id if parent else None,
                t_start=time.perf_counter(),
                t_wall=time.time(),
                duration_s=0.0,
                attrs=dict(attrs),
                kind="event",
            )
        )

    def _append(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------ #
    # Reading / export
    # ------------------------------------------------------------------ #
    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        """Finished spans in the buffer (optionally one trace's), oldest first."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def export_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the buffered spans to ``path``, one JSON object per line."""
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans():
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")
        return path

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


#: The process-wide tracer every instrumentation site reports into.
TRACER = Tracer()


def current_trace_id() -> Optional[str]:
    """The active trace id of the calling thread/task, if any."""
    context = TRACER.current()
    return context.trace_id if context else None
