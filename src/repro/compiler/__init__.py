"""The SPN-to-VLIW compiler (cone extraction, scheduling, register allocation)."""

from .cones import Cone, ConeGraph, ConeOperand, extract_cones
from .driver import CompiledKernel, compile_operation_list, compile_spn, verify_program
from .scheduler import CompileStats, ScheduleOptions, Scheduler

__all__ = [
    "Cone",
    "ConeGraph",
    "ConeOperand",
    "extract_cones",
    "CompiledKernel",
    "compile_operation_list",
    "compile_spn",
    "verify_program",
    "CompileStats",
    "ScheduleOptions",
    "Scheduler",
]
