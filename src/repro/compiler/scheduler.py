"""List scheduler, register allocator and code generator of the SPN compiler.

This module turns a cone cover (:mod:`repro.compiler.cones`) into an
executable VLIW :class:`~repro.processor.isa.Program`.  It performs, per
cycle, exactly the job the paper assigns to its custom compiler (Sec. IV):

* **operation placement** — cones are packed onto free, aligned subtrees of
  the PE trees (several independent cones may share one tree in one cycle);
* **register-bank allocation** — every cone output is given a register in one
  of the banks its producing PE is allowed to write; the bank is chosen to
  avoid future crossbar conflicts with the values it will be read together
  with, and to balance bank occupancy ("this allocation has to happen in
  tandem with the placement of operations on the PEs");
* **crossbar conflict avoidance** — a cone only issues in a cycle where all of
  its operand banks are still free (at most one read per bank per cycle);
  when two operands of the same future cone end up in the same bank despite
  the allocator's effort, the scheduler emits a *copy* (a pass-through PE
  configuration) that relocates one of them to another bank, which is the
  "copy data within register banks" facility of the paper's instruction set;
* **hazard-aware scheduling** — a cone may not issue before the outputs of its
  producer cones have left the PE-tree pipeline (read-after-write latency);
* **data-memory streaming** — leaf/parameter input slots are packed into
  data-memory rows and loaded, one vector per cycle, into a rotating window
  of register rows shortly before their consumers need them; rows whose
  values are all consumed are recycled (constants never need a write-back).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..processor.config import ProcessorConfig
from ..processor.errors import CompilationError, ResourceError
from ..processor.isa import (
    OP_ADD,
    OP_MUL,
    OP_PASS_A,
    Instruction,
    MemOp,
    Program,
    ReadSpec,
    WriteSpec,
)
from ..spn.linearize import OP_ADD as SPN_ADD
from ..spn.linearize import OperationList
from .cones import Cone, ConeGraph, ConeOperand

__all__ = ["ScheduleOptions", "CompileStats", "Scheduler"]


@dataclass(frozen=True)
class ScheduleOptions:
    """Tunable knobs of the scheduler (defaults reproduce the paper's setup)."""

    #: Register rows (per bank) reserved as the rotating input-streaming window.
    stream_rows: int = 32
    #: Safety bound on consecutive cycles without any progress.
    max_stall_cycles: int = 256
    #: When False, at most one cone is issued per tree per cycle (ablation of
    #: subtree packing).
    pack_multiple_cones: bool = True
    #: When False, cone outputs take the first allowed bank instead of the
    #: conflict- and occupancy-aware choice (ablation of the paper's
    #: conflict-minimizing register allocation).
    conflict_aware_allocation: bool = True
    #: Candidate cones examined per cycle before giving up (keeps compile time
    #: linear; the deferred cones keep their priority).
    scan_limit: int = 96


@dataclass
class CompileStats:
    """Summary of one compilation, reported next to the benchmark results."""

    n_operations: int
    n_cones: int
    n_instructions: int
    n_loads: int
    n_stores: int
    n_copies: int
    avg_ops_per_cone: float
    max_live_registers: int
    dmem_rows_used: int

    def __str__(self) -> str:  # pragma: no cover - human readable helper
        return (
            f"ops={self.n_operations} cones={self.n_cones} "
            f"instructions={self.n_instructions} loads={self.n_loads} "
            f"copies={self.n_copies} ops/cone={self.avg_ops_per_cone:.2f} "
            f"max_live={self.max_live_registers} dmem_rows={self.dmem_rows_used}"
        )


@dataclass
class _LoadedRow:
    """Bookkeeping for one input row currently resident in the register file."""

    reg: int
    ready_cycle: int


class Scheduler:
    """Schedules a :class:`ConeGraph` onto a :class:`ProcessorConfig`."""

    def __init__(
        self,
        cone_graph: ConeGraph,
        config: ProcessorConfig,
        options: Optional[ScheduleOptions] = None,
    ) -> None:
        self._graph = cone_graph
        self._ops = cone_graph.ops
        self._config = config
        self._options = options or ScheduleOptions()
        if self._options.stream_rows >= config.bank_depth:
            raise ResourceError(
                "stream_rows must leave at least one register row for intermediates"
            )
        self._stream_base = config.bank_depth - self._options.stream_rows

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(self) -> Tuple[Program, CompileStats]:
        ops = self._ops
        if ops.n_operations == 0:
            program = Program(
                instructions=[],
                dmem_image=[],
                result_location=None,
                result_slot=ops.root_slot,
                n_operations=0,
            )
            stats = CompileStats(0, 0, 0, 0, 0, 0, 0.0, 0, 0)
            return program, stats

        self._prepare()
        instructions: List[Instruction] = []
        cycle = 0
        stall_cycles = 0
        max_cycles = 32 * self._graph.n_cones + 8 * len(self._input_rows) + 2048
        while self._n_scheduled < self._graph.n_cones:
            if cycle > max_cycles:
                raise CompilationError(
                    f"scheduler exceeded {max_cycles} cycles; "
                    f"{self._graph.n_cones - self._n_scheduled} cones left.\n"
                    + self._blocked_report(cycle)
                )
            instruction = self._schedule_cycle(cycle)
            instructions.append(instruction)
            # Only PE activity counts as progress: an endless stream of loads
            # with no cone ever issuing is a scheduling failure, not progress.
            if instruction.pe_ops:
                stall_cycles = 0
            else:
                stall_cycles += 1
                if stall_cycles > self._options.max_stall_cycles:
                    raise CompilationError(
                        f"no cone issued for {stall_cycles} cycles at cycle {cycle}; "
                        "the SPN likely does not fit the machine configuration.\n"
                        + self._blocked_report(cycle)
                    )
            cycle += 1

        root_slot = ops.root_slot
        program = Program(
            instructions=instructions,
            dmem_image=self._dmem_image,
            result_location=self._current_cell(root_slot),
            result_slot=root_slot,
            n_operations=ops.n_operations,
        )
        stats = CompileStats(
            n_operations=ops.n_operations,
            n_cones=self._graph.n_cones,
            n_instructions=len(instructions),
            n_loads=program.n_loads,
            n_stores=program.n_stores,
            n_copies=self._n_copies,
            avg_ops_per_cone=self._graph.average_ops_per_cone(),
            max_live_registers=self._max_live,
            dmem_rows_used=len(self._input_rows),
        )
        return program, stats

    # ------------------------------------------------------------------ #
    # Preparation
    # ------------------------------------------------------------------ #
    def _prepare(self) -> None:
        graph, config = self._graph, self._config

        # Reference counts: how many operand references each slot still has,
        # and which slots are read together (the crossbar conflict graph the
        # bank allocator tries to keep colorable).
        self._remaining_refs: Dict[int, int] = {}
        self._conflicts: Dict[int, Set[int]] = {}
        for cone in graph.cones:
            slots = cone.external_slots()
            for slot in slots:
                self._remaining_refs[slot] = self._remaining_refs.get(slot, 0) + 1
            unique = sorted(set(slots))
            for i, a in enumerate(unique):
                for b in unique[i + 1 :]:
                    self._conflicts.setdefault(a, set()).add(b)
                    self._conflicts.setdefault(b, set()).add(a)

        # Cone dependencies and scheduling priorities.
        self._preds_left: List[int] = [0] * graph.n_cones
        self._consumers: List[List[int]] = [[] for _ in range(graph.n_cones)]
        for cone in graph.cones:
            preds = graph.predecessors(cone)
            self._preds_left[cone.index] = len(preds)
            for p in preds:
                self._consumers[p].append(cone.index)
        self._priority = graph.critical_path_priorities()

        # Candidate heap of cones whose producer cones have all been issued.
        self._candidates: List[Tuple[int, int]] = []
        for cone in graph.cones:
            if self._preds_left[cone.index] == 0:
                heapq.heappush(self._candidates, (-self._priority[cone.index], cone.index))

        # Value tracking: where each produced or relocated slot lives.
        self._value_location: Dict[int, Tuple[int, int]] = {}
        self._value_ready: Dict[int, int] = {}
        self._relocated: Dict[int, Tuple[int, int]] = {}
        self._relocate_ready: Dict[int, int] = {}
        self._copy_requests: Set[int] = set()
        self._n_copies = 0
        self._scheduled: List[bool] = [False] * graph.n_cones
        self._n_scheduled = 0

        # Register file state: free intermediate registers per bank.
        self._free_regs: List[List[int]] = [
            list(range(self._stream_base - 1, -1, -1)) for _ in range(config.n_banks)
        ]
        self._live_registers = 0
        self._max_live = 0
        # Write-port reservations at commit cycles.
        self._write_ports: Set[Tuple[int, int]] = set()

        # Input streaming structures.
        self._build_input_rows()
        self._loaded_rows: Dict[int, _LoadedRow] = {}
        self._free_stream_regs: List[int] = list(
            range(config.bank_depth - 1, self._stream_base - 1, -1)
        )
        self._wanted_rows: Set[int] = set()
        self._critical_rows: Set[int] = set()

    def _build_input_rows(self) -> None:
        """Pack referenced input slots into data-memory rows.

        Slots are laid out in the order their consumer cones can first be
        scheduled (earliest dependence level first, critical-path cones
        breaking ties), so rows are consumed roughly in the order they are
        loaded, and then repaired so that two inputs read by the same cone do
        not share a lane — a lane maps directly to a register bank, so sharing
        one would be a guaranteed crossbar conflict.
        """
        ops, config = self._ops, self._config
        asap = self._graph.asap_levels()
        first_use: Dict[int, Tuple[int, int, int]] = {}
        for cone in self._graph.cones:
            key = (asap[cone.index], -self._priority[cone.index], cone.index)
            for slot in cone.external_slots():
                if slot < ops.n_inputs and (slot not in first_use or key < first_use[slot]):
                    first_use[slot] = key
        ordered = sorted(first_use, key=lambda s: (first_use[s], s))
        rows: List[List[Optional[int]]] = []
        self._row_of_slot: Dict[int, Tuple[int, int]] = {}
        for i, slot in enumerate(ordered):
            row_index, lane = divmod(i, config.n_banks)
            if lane == 0:
                rows.append([None] * config.n_banks)
            rows[row_index][lane] = slot
            self._row_of_slot[slot] = (row_index, lane)
        self._repair_input_lanes(rows)
        if len(rows) > config.dmem_rows:
            raise ResourceError(
                f"the SPN needs {len(rows)} data-memory rows for its inputs, but the "
                f"machine only has {config.dmem_rows}"
            )
        self._input_rows = rows
        self._dmem_image = [list(row) for row in rows]
        self._row_refs: List[int] = [0] * len(rows)
        for slot, count in self._remaining_refs.items():
            if slot < ops.n_inputs:
                row_index, _ = self._row_of_slot[slot]
                self._row_refs[row_index] += count
        self._next_row_cursor = 0

    def _repair_input_lanes(self, rows: List[List[Optional[int]]]) -> None:
        """Swap lanes so co-read input slots do not collide on a bank."""
        for cone in self._graph.cones:
            input_slots = sorted(
                {s for s in cone.external_slots() if s < self._ops.n_inputs}
            )
            used_lanes: Dict[int, int] = {}
            for slot in input_slots:
                row_index, lane = self._row_of_slot[slot]
                if lane not in used_lanes:
                    used_lanes[lane] = slot
                    continue
                # Find a free lane (not used by this cone) to swap into.
                target_lane = next(
                    (l for l in range(self._config.n_banks) if l not in used_lanes), None
                )
                if target_lane is None:
                    break  # more co-read inputs than banks; the copy path handles it
                other = rows[row_index][target_lane]
                rows[row_index][lane], rows[row_index][target_lane] = other, slot
                self._row_of_slot[slot] = (row_index, target_lane)
                if other is not None:
                    self._row_of_slot[other] = (row_index, lane)
                used_lanes[target_lane] = slot

    # ------------------------------------------------------------------ #
    # Per-cycle scheduling
    # ------------------------------------------------------------------ #
    def _schedule_cycle(self, cycle: int) -> Instruction:
        config = self._config
        instruction = Instruction(comment=f"cycle {cycle}")
        # Per-cycle resource state.
        read_cells: Dict[int, Tuple[int, int]] = {}  # bank -> cell being read
        leaf_free: List[List[bool]] = [
            [True] * config.leaf_pes_per_tree for _ in range(config.n_trees)
        ]
        trees_used: Set[int] = set()

        # Issue the memory transaction first so loads start as early as possible.
        mem_op = self._plan_memory(cycle)
        if mem_op is not None:
            instruction.mem = mem_op

        # Relocation copies requested by blocked cones go first: they are tiny
        # and unblock higher-priority work.
        for slot in sorted(self._copy_requests):
            self._try_relocate(slot, cycle, instruction, read_cells, leaf_free)

        deferred: List[Tuple[int, int]] = []
        blocked_rows: Set[int] = set()
        critical_rows: Set[int] = set()
        n_placed = 0
        free_leaf_slots = config.n_trees * config.leaf_pes_per_tree
        examined = 0
        while (
            self._candidates
            and free_leaf_slots > 0
            and len(read_cells) < config.n_banks
            and examined < self._options.scan_limit
        ):
            priority, cone_index = heapq.heappop(self._candidates)
            examined += 1
            cone = self._graph.cones[cone_index]
            cone_rows: Set[int] = set()
            placed = self._try_place(
                cone, cycle, instruction, read_cells, leaf_free, trees_used, cone_rows
            )
            blocked_rows |= cone_rows
            if placed:
                free_leaf_slots -= 2 ** (cone.depth - 1)
                n_placed += 1
            else:
                deferred.append((priority, cone_index))
                if not critical_rows and cone_rows:
                    # Highest-priority cone that is blocked on unloaded input
                    # rows: these rows are protected from eviction so the cone
                    # is guaranteed to make progress eventually.
                    critical_rows = set(cone_rows)
        for item in deferred:
            heapq.heappush(self._candidates, item)

        self._wanted_rows = blocked_rows
        if n_placed > 0:
            self._critical_rows = critical_rows
        else:
            # Nothing issued: keep protecting what we already protect so the
            # oldest blocked cone's rows cannot be thrashed out of the window.
            self._critical_rows |= critical_rows
        return instruction

    def _try_place(
        self,
        cone: Cone,
        cycle: int,
        instruction: Instruction,
        read_cells: Dict[int, Tuple[int, int]],
        leaf_free: List[List[bool]],
        trees_used: Set[int],
        blocked_rows: Set[int],
    ) -> bool:
        config = self._config
        ops = self._ops

        # 1. All operand data must be readable this cycle.
        operand_cells: Dict[int, Tuple[int, int]] = {}
        for slot in set(cone.external_slots()):
            cell = self._slot_cell(slot, cycle, blocked_rows)
            if cell is None:
                return False
            operand_cells[slot] = cell

        # 2. Crossbar: each operand bank must carry a single cell, both within
        #    this cone and against reads already planned this cycle.
        cone_banks: Dict[int, Tuple[int, int]] = {}
        for slot, cell in operand_cells.items():
            clash = cone_banks.get(cell[0])
            if clash is not None and clash != cell:
                # Two operands of this cone live in the same bank: request a
                # relocation copy for one of them and give up for now.
                self._copy_requests.add(slot)
                return False
            cone_banks[cell[0]] = cell
        for bank, cell in cone_banks.items():
            current = read_cells.get(bank)
            if current is not None and current != cell:
                return False

        # 3. Find a free, aligned subtree block on some tree where every
        #    output of the cone can be written: each written member needs a
        #    bank inside its PE's window with a free register and a free write
        #    port at its commit cycle.
        depth = cone.depth
        block_size = 2 ** (depth - 1)
        placement = None
        for tree in range(config.n_trees):
            if not self._options.pack_multiple_cones and tree in trees_used:
                continue
            free = leaf_free[tree]
            for block_start in range(0, config.leaf_pes_per_tree, block_size):
                if not all(free[block_start : block_start + block_size]):
                    continue
                layout = self._layout(cone, tree, block_start)
                allocations = self._allocate_outputs(cone, tree, layout[2], cycle)
                if allocations is None:
                    continue
                placement = (tree, block_start, layout, allocations)
                break
            if placement is not None:
                break
        if placement is None:
            return False
        tree, block_start, (pe_ops, port_slots, _), allocations = placement

        # ---- Commit the placement -------------------------------------- #
        for offset in range(block_size):
            leaf_free[tree][block_start + offset] = False
        trees_used.add(tree)
        read_cells.update(cone_banks)

        instruction.pe_ops.update(pe_ops)
        for port, slot in port_slots:
            bank, reg = operand_cells[slot]
            instruction.reads.append(
                ReadSpec(port=(tree, port), bank=bank, reg=reg, slot=slot)
            )
        for op_index, pe, bank, reg, commit in allocations:
            dest_slot = ops.dest_slot(op_index)
            instruction.writes.append(
                WriteSpec(pe=pe, bank=bank, reg=reg, slot=dest_slot)
            )
            self._write_ports.add((commit, bank))
            self._value_location[dest_slot] = (bank, reg)
            self._value_ready[dest_slot] = commit
            self._live_registers += 1

        self._scheduled[cone.index] = True
        self._n_scheduled += 1
        self._max_live = max(self._max_live, self._live_registers)

        # Release operand references.
        for slot in cone.external_slots():
            self._release_reference(slot)
        # Wake up consumer cones.
        for consumer in self._consumers[cone.index]:
            self._preds_left[consumer] -= 1
            if self._preds_left[consumer] == 0:
                heapq.heappush(
                    self._candidates, (-self._priority[consumer], consumer)
                )
        return True

    # ------------------------------------------------------------------ #
    # Placement helpers
    # ------------------------------------------------------------------ #
    def _allocate_outputs(
        self,
        cone: Cone,
        tree: int,
        member_position: Dict[int, Tuple[int, int]],
        cycle: int,
    ) -> Optional[List[Tuple[int, Tuple[int, int, int], int, int, int]]]:
        """Pick a (bank, register) for every value the cone writes back.

        Returns ``[(op_index, pe, bank, reg, commit_cycle), ...]`` or ``None``
        when some output cannot be placed, in which case any tentatively
        reserved registers are returned to their free lists.
        """
        config = self._config
        ops = self._ops
        allocations: List[Tuple[int, Tuple[int, int, int], int, int, int]] = []
        local_ports: Set[Tuple[int, int]] = set()
        for op_index in cone.outputs:
            level, pos = member_position[op_index]
            allowed = config.allowed_write_banks(tree, level, pos)
            commit = cycle + config.result_latency(level + 1)
            dest_slot = ops.dest_slot(op_index)
            candidates = [
                bank
                for bank in allowed
                if self._free_regs[bank]
                and (commit, bank) not in self._write_ports
                and (commit, bank) not in local_ports
            ]
            if not candidates:
                for _, _, bank, reg, _ in allocations:
                    self._free_regs[bank].append(reg)
                return None
            if self._options.conflict_aware_allocation:
                conflict_banks = {
                    self._current_cell(other)[0]
                    for other in self._conflicts.get(dest_slot, ())
                    if self._current_cell(other) is not None
                }
                preferred = [b for b in candidates if b not in conflict_banks]
                pool = preferred or candidates
                bank = max(pool, key=lambda b: len(self._free_regs[b]))
            else:
                bank = candidates[0]
            reg = self._free_regs[bank].pop()
            local_ports.add((commit, bank))
            allocations.append((op_index, (tree, level, pos), bank, reg, commit))
        return allocations

    def _current_cell(self, slot: int) -> Optional[Tuple[int, int]]:
        """Register-file cell currently assigned to ``slot`` (ignoring timing)."""
        if slot in self._relocated:
            return self._relocated[slot]
        if slot < self._ops.n_inputs:
            row_index, lane = self._row_of_slot.get(slot, (None, None))
            if row_index is None:
                return None
            loaded = self._loaded_rows.get(row_index)
            if loaded is None:
                return None
            return lane, loaded.reg
        return self._value_location.get(slot)

    def _slot_cell(
        self, slot: int, cycle: int, blocked_rows: Set[int]
    ) -> Optional[Tuple[int, int]]:
        """Cell holding ``slot`` if it is readable at ``cycle``, else ``None``."""
        if slot in self._relocated:
            if self._relocate_ready[slot] > cycle:
                return None
            return self._relocated[slot]
        ops = self._ops
        if slot < ops.n_inputs:
            row_index, lane = self._row_of_slot[slot]
            loaded = self._loaded_rows.get(row_index)
            if loaded is None or loaded.ready_cycle > cycle:
                blocked_rows.add(row_index)
                return None
            return lane, loaded.reg
        if self._value_ready.get(slot, 1 << 60) > cycle:
            return None
        return self._value_location.get(slot)

    def _release_reference(self, slot: int) -> None:
        ops = self._ops
        self._remaining_refs[slot] -= 1
        if self._remaining_refs[slot] > 0:
            return
        if slot == ops.root_slot:
            return
        if slot in self._relocated:
            bank, reg = self._relocated[slot]
            self._free_regs[bank].append(reg)
            self._live_registers -= 1
            return
        if slot < ops.n_inputs:
            row_index, _ = self._row_of_slot[slot]
            self._row_refs[row_index] -= 1
            return
        location = self._value_location.get(slot)
        if location is not None:
            bank, reg = location
            self._free_regs[bank].append(reg)
            self._live_registers -= 1

    def _blocked_report(self, cycle: int) -> str:
        """Explain why the highest-priority candidate cones cannot issue.

        Included in scheduler error messages so that configuration problems
        (register pressure, missing rows, permanent conflicts) are actionable.
        """
        lines = [f"blocked-candidate report at cycle {cycle}:"]
        snapshot = heapq.nsmallest(5, self._candidates)
        for priority, cone_index in snapshot:
            cone = self._graph.cones[cone_index]
            reasons = []
            for slot in sorted(set(cone.external_slots())):
                cell = self._slot_cell(slot, cycle, set())
                if cell is None:
                    if slot < self._ops.n_inputs:
                        row_index, _ = self._row_of_slot[slot]
                        loaded = row_index in self._loaded_rows
                        reasons.append(
                            f"input slot {slot} (row {row_index}, "
                            f"{'loading' if loaded else 'not loaded'})"
                        )
                    else:
                        reasons.append(f"value slot {slot} not ready")
            free_regs = sum(len(regs) for regs in self._free_regs)
            lines.append(
                f"  cone {cone_index} (priority {-priority}, depth {cone.depth}): "
                + (", ".join(reasons) if reasons else "operands ready")
                + f"; free intermediate registers: {free_regs}"
            )
        if not snapshot:
            lines.append("  (no candidate cones; the dependence graph may be cyclic)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Relocation copies (crossbar conflict resolution)
    # ------------------------------------------------------------------ #
    def _try_relocate(
        self,
        slot: int,
        cycle: int,
        instruction: Instruction,
        read_cells: Dict[int, Tuple[int, int]],
        leaf_free: List[List[bool]],
    ) -> bool:
        """Copy ``slot`` into a conflict-free bank via a pass-through PE."""
        config = self._config
        if self._remaining_refs.get(slot, 0) <= 0:
            self._copy_requests.discard(slot)
            return False
        source = self._slot_cell(slot, cycle, set())
        if source is None:
            return False
        current = read_cells.get(source[0])
        if current is not None and current != source:
            return False
        conflict_banks = {
            self._current_cell(other)[0]
            for other in self._conflicts.get(slot, ())
            if self._current_cell(other) is not None
        }
        conflict_banks.add(source[0])
        commit = cycle + config.result_latency(1)
        for tree in range(config.n_trees):
            for pos in range(config.leaf_pes_per_tree):
                if not leaf_free[tree][pos]:
                    continue
                if (tree, 0, pos) in instruction.pe_ops:
                    continue
                allowed = config.allowed_write_banks(tree, 0, pos)
                candidates = [
                    bank
                    for bank in allowed
                    if bank not in conflict_banks
                    and self._free_regs[bank]
                    and (commit, bank) not in self._write_ports
                ]
                if not candidates:
                    continue
                bank = max(candidates, key=lambda b: len(self._free_regs[b]))
                reg = self._free_regs[bank].pop()
                leaf_free[tree][pos] = False
                read_cells[source[0]] = source
                self._write_ports.add((commit, bank))
                instruction.pe_ops[(tree, 0, pos)] = OP_PASS_A
                instruction.reads.append(
                    ReadSpec(port=(tree, 2 * pos), bank=source[0], reg=source[1], slot=slot)
                )
                instruction.writes.append(
                    WriteSpec(pe=(tree, 0, pos), bank=bank, reg=reg, slot=slot)
                )
                # Free the old home of the value and record the new one.
                self._free_old_home(slot)
                self._relocated[slot] = (bank, reg)
                self._relocate_ready[slot] = commit
                self._live_registers += 1
                self._max_live = max(self._max_live, self._live_registers)
                self._copy_requests.discard(slot)
                self._n_copies += 1
                return True
        return False

    def _free_old_home(self, slot: int) -> None:
        """Release the storage a slot occupied before it was relocated."""
        ops = self._ops
        if slot in self._relocated:
            bank, reg = self._relocated[slot]
            self._free_regs[bank].append(reg)
            self._live_registers -= 1
            return
        if slot < ops.n_inputs:
            # Future references will read the relocated copy, so the streaming
            # row no longer needs to stay resident for this slot.
            row_index, _ = self._row_of_slot[slot]
            self._row_refs[row_index] -= self._remaining_refs.get(slot, 0)
            return
        location = self._value_location.pop(slot, None)
        if location is not None:
            bank, reg = location
            self._free_regs[bank].append(reg)
            self._live_registers -= 1

    # ------------------------------------------------------------------ #
    # Input streaming
    # ------------------------------------------------------------------ #
    def _plan_memory(self, cycle: int) -> Optional[MemOp]:
        """Decide the (at most one) vector load issued this cycle."""
        row_index = self._next_row_to_load()
        if row_index is None:
            return None
        reg = self._acquire_stream_reg(row_index, cycle)
        if reg is None:
            return None
        self._loaded_rows[row_index] = _LoadedRow(
            reg=reg, ready_cycle=cycle + self._config.load_latency
        )
        slots = tuple(self._input_rows[row_index])
        return MemOp(kind="load", row=row_index, reg=reg, slots=slots)

    def _next_row_to_load(self) -> Optional[int]:
        """Pick the next unloaded input row, preferring rows blocking ready cones."""
        for row_index in sorted(self._critical_rows) + sorted(self._wanted_rows):
            if row_index not in self._loaded_rows and self._row_refs[row_index] > 0:
                return row_index
        # Otherwise prefetch rows in first-use order.
        while self._next_row_cursor < len(self._input_rows):
            row_index = self._next_row_cursor
            if row_index in self._loaded_rows or self._row_refs[row_index] == 0:
                self._next_row_cursor += 1
                continue
            return row_index
        # All rows past the cursor handled; look for evicted rows that became
        # needed again (reload case).
        for row_index, refs in enumerate(self._row_refs):
            if refs > 0 and row_index not in self._loaded_rows:
                return row_index
        return None

    def _acquire_stream_reg(self, for_row: int, cycle: int) -> Optional[int]:
        """Find a register row for a new load, evicting a dead row if needed."""
        if self._free_stream_regs:
            return self._free_stream_regs.pop()
        # Recently loaded rows keep a grace period so a row cannot be thrown
        # out again before the cone that asked for it had a chance to issue.
        grace = self._config.load_latency + 4

        def evictable(row_index: int) -> bool:
            loaded = self._loaded_rows[row_index]
            return loaded.ready_cycle + grace <= cycle

        # First choice: resident rows with no outstanding references.
        for row_index, loaded in list(self._loaded_rows.items()):
            if self._row_refs[row_index] == 0 and evictable(row_index):
                del self._loaded_rows[row_index]
                return loaded.reg
        # As a last resort (only when the blocked row is genuinely needed now),
        # evict a resident row; constants can always be reloaded from the data
        # memory later.  Rows needed by the highest-priority blocked cone are
        # protected so that cone is guaranteed to issue eventually — it needs
        # at most one row per input port, which is always fewer than the
        # streaming window, so an evictable row eventually exists.
        if for_row not in self._wanted_rows and for_row not in self._critical_rows:
            return None
        protected = self._critical_rows | {for_row}
        candidates = [
            row_index
            for row_index in self._loaded_rows
            if row_index not in protected and evictable(row_index)
        ]
        if not candidates:
            return None
        # Prefer a row nobody is currently waiting for; among those, the one
        # that has been resident the longest.
        not_wanted = [r for r in candidates if r not in self._wanted_rows]
        pool = not_wanted or candidates
        victim = min(pool, key=lambda r: self._loaded_rows[r].ready_cycle)
        reg = self._loaded_rows[victim].reg
        del self._loaded_rows[victim]
        # The victim may be needed again later; it will simply be reloaded.
        self._next_row_cursor = min(self._next_row_cursor, victim)
        return reg

    # ------------------------------------------------------------------ #
    # Cone embedding (PE placement and crossbar reads)
    # ------------------------------------------------------------------ #
    def _layout(
        self,
        cone: Cone,
        tree: int,
        block_start: int,
    ) -> Tuple[
        Dict[Tuple[int, int, int], str],
        List[Tuple[int, int]],
        Dict[int, Tuple[int, int]],
    ]:
        """Map a cone onto the subtree anchored at ``block_start`` of ``tree``.

        Returns the PE opcode assignment, the crossbar port assignments
        (``(port, operand slot)`` pairs) and, for every member operation, the
        (level, position) of the PE that computes it.  External operands of
        operations above level 0 are routed up through pass-through PEs along
        the left spine of the corresponding subtree, as the datapath requires.
        """
        ops = self._ops
        pe_ops: Dict[Tuple[int, int, int], str] = {}
        port_slots: List[Tuple[int, int]] = []
        member_position: Dict[int, Tuple[int, int]] = {}

        def deliver(operand: ConeOperand, level: int, pos: int) -> None:
            if operand.kind == "external":
                leaf_pos = pos * (2 ** level)
                for lvl in range(level, 0, -1):
                    chain_pos = pos * (2 ** (level - lvl))
                    pe_ops[(tree, lvl, chain_pos)] = OP_PASS_A
                pe_ops.setdefault((tree, 0, leaf_pos), OP_PASS_A)
                port_slots.append((2 * leaf_pos, operand.slot))
                return
            op_index = operand.op_index
            opcode = OP_ADD if ops.operations[op_index].op == SPN_ADD else OP_MUL
            pe_ops[(tree, level, pos)] = opcode
            member_position[op_index] = (level, pos)
            left, right = cone.operands[op_index]
            if level == 0:
                for port_offset, child in enumerate((left, right)):
                    if child.kind != "external":
                        raise CompilationError(
                            f"cone {cone.index}: operation {op_index} placed at a leaf "
                            "PE but has an internal operand"
                        )
                    port_slots.append((2 * pos + port_offset, child.slot))
                return
            deliver(left, level - 1, 2 * pos)
            deliver(right, level - 1, 2 * pos + 1)

        root_height = cone.height
        root_pos = block_start >> root_height
        deliver(ConeOperand.internal(cone.root_op), root_height, root_pos)
        return pe_ops, port_slots, member_position
