"""Top-level compiler driver: SPN (or operation list) in, VLIW program out.

The driver chains the front end (lowering an SPN to a binary operation list),
the cone extraction and the scheduler, and offers a verification helper that
runs the compiled program on the cycle-accurate simulator in strict mode and
compares the result against the reference evaluator — the standard check used
throughout the test-suite and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..processor.config import ProcessorConfig, ptree_config
from ..processor.errors import VerificationError
from ..processor.fastsim import FastProgram, fast_program
from ..processor.isa import Program
from ..processor.simulator import (
    MODE_FAST,
    MODE_STRICT,
    SimulationResult,
    Simulator,
    cross_check_modes,
)
from ..spn.graph import SPN
from ..spn.linearize import OperationList, linearize
from .cones import ConeGraph, extract_cones
from .scheduler import CompileStats, ScheduleOptions, Scheduler

__all__ = ["CompiledKernel", "compile_operation_list", "compile_spn", "verify_program"]


@dataclass
class CompiledKernel:
    """Everything produced by one compilation, ready to simulate."""

    program: Program
    stats: CompileStats
    cone_graph: ConeGraph
    config: ProcessorConfig
    ops: OperationList
    #: Memoized fast form of ``program`` (built on first fast-mode run).  The
    #: kernel owns its program, so the memo is safe as long as ``program`` is
    #: not mutated by hand — mutated copies go through ``Simulator`` directly,
    #: whose content-keyed cache can never serve a stale tape.
    _fast_form: Optional[FastProgram] = field(
        default=None, init=False, repr=False, compare=False
    )

    def fast_form(self) -> FastProgram:
        """The precompiled fast form of this kernel's program (memoized)."""
        if self._fast_form is None:
            self._fast_form = fast_program(self.program, self.config)
        return self._fast_form

    def run(
        self,
        evidence: Optional[Mapping[int, int]] = None,
        strict: bool = True,
        mode: Optional[str] = None,
        check: bool = False,
    ) -> SimulationResult:
        """Execute the kernel for ``evidence`` on the cycle-accurate simulator.

        ``mode`` picks the simulator path explicitly (``"strict"`` interprets
        and verifies, ``"fast"`` runs the vectorized tape); omitted, it
        follows ``strict``.  Fast-mode runs reuse the kernel's memoized
        precompiled tape, so repeated evidence evaluations cost only the
        array gathers.  ``check=True`` runs *both* modes and raises
        :class:`~repro.processor.errors.VerificationError` unless cycle
        counts, outputs and counters match exactly.
        """
        input_vector = self.ops.input_vector(evidence)
        effective_mode = mode or (MODE_STRICT if strict else MODE_FAST)
        needs_expected = check or (strict and effective_mode == MODE_STRICT)
        expected = self.ops.execute_values(input_vector) if needs_expected else None
        if check:
            return cross_check_modes(
                self.program,
                input_vector,
                self.config,
                expected,
                precompiled=self.fast_form(),
            )
        simulator = Simulator(self.config, strict=strict, mode=effective_mode)
        precompiled = self.fast_form() if simulator.mode == MODE_FAST else None
        return simulator.run(self.program, input_vector, expected, precompiled)


def compile_operation_list(
    ops: OperationList,
    config: Optional[ProcessorConfig] = None,
    options: Optional[ScheduleOptions] = None,
) -> CompiledKernel:
    """Compile a lowered operation list for the given machine configuration."""
    config = config or ptree_config()
    cone_graph = extract_cones(ops, max_depth=config.n_levels)
    program, stats = Scheduler(cone_graph, config, options).run()
    return CompiledKernel(
        program=program, stats=stats, cone_graph=cone_graph, config=config, ops=ops
    )


def compile_spn(
    spn: SPN,
    config: Optional[ProcessorConfig] = None,
    options: Optional[ScheduleOptions] = None,
    decompose: str = "balanced",
) -> CompiledKernel:
    """Lower ``spn`` to binary operations and compile it (the full flow)."""
    return compile_operation_list(linearize(spn, decompose=decompose), config, options)


def verify_program(
    kernel: CompiledKernel,
    evidence_samples: Sequence[Optional[Mapping[int, int]]] = (None,),
    rtol: float = 1e-9,
) -> bool:
    """Run the kernel on the simulator and compare against the reference evaluator.

    Every sample is executed in strict mode (so every transported value is
    checked, not only the final result).  Raises
    :class:`~repro.processor.errors.VerificationError` on mismatch and returns
    ``True`` otherwise.
    """
    for evidence in evidence_samples:
        reference = kernel.ops.execute(evidence)
        result = kernel.run(evidence, strict=True)
        if not np.isclose(result.value, reference, rtol=rtol, atol=1e-12):
            raise VerificationError(
                f"compiled program returned {result.value!r}, reference evaluation "
                f"gives {reference!r}"
            )
    return True
