"""Cone extraction: covering the operation DAG with PE-tree-shaped subtrees.

The datapath executes, per tree and per cycle, a *cone*: a small binary tree
of operations whose intermediate results travel between PE levels without
touching the register file ("local reuse of data, avoiding frequent
writebacks to the register file", Sec. IV).  The compiler therefore first
covers the binary operation DAG with cones and only then schedules cones onto
the machine.

Two properties of the target datapath shape the covering:

* PEs at *every* level can write their output back to (a restricted window
  of) the register file, so a cone may produce several outputs: besides its
  root, any absorbed operation whose value is also needed by other cones is
  written out from the PE level where it is computed.  This is what lets the
  tree advance several levels of a dependence chain per issue even when the
  intermediate values have fan-out.
* Within one cone every value must flow strictly upwards through the tree, so
  an operation cannot be absorbed if one of its operands is itself a member
  of the cone reached through a different branch (a "diamond") — that operand
  would have to be read from the register file in the same cycle it is being
  produced.

Cone height is chosen per root by a density heuristic: a cone of height ``h``
blocks an aligned group of ``2**h`` leaf PEs, so the extractor picks the
height with the best operations-per-blocked-leaf ratio (deeper cones win ties
because they also shorten dependence chains and save register-file traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..spn.linearize import OperationList

__all__ = ["ConeOperand", "Cone", "ConeGraph", "extract_cones"]


@dataclass(frozen=True)
class ConeOperand:
    """One operand of an operation inside a cone.

    ``internal`` operands refer to another operation *of the same cone* (by
    operation index); ``external`` operands refer to an operation-list slot
    that must be read from the register file (an input slot or the output of
    another cone).
    """

    kind: str  # "internal" | "external"
    op_index: int = -1
    slot: int = -1

    @staticmethod
    def internal(op_index: int) -> "ConeOperand":
        return ConeOperand(kind="internal", op_index=op_index)

    @staticmethod
    def external(slot: int) -> "ConeOperand":
        return ConeOperand(kind="external", slot=slot)


@dataclass
class Cone:
    """A cone of operations rooted at ``root_op``.

    Attributes
    ----------
    index:
        Cone id within its :class:`ConeGraph`.
    root_op:
        Operation-list index of the root operation.
    members:
        Operation indices covered by this cone (including the root).
    operands:
        For every member operation, its two operands as :class:`ConeOperand`.
    depth_from_root:
        Distance of every member from the root along cone edges; together
        with the cone height it determines the PE level a member executes on.
    outputs:
        Members whose results are written back to the register file: the root
        plus every member whose value is also consumed outside this cone.
    """

    index: int
    root_op: int
    members: List[int] = field(default_factory=list)
    operands: Dict[int, Tuple[ConeOperand, ConeOperand]] = field(default_factory=dict)
    depth_from_root: Dict[int, int] = field(default_factory=dict)
    outputs: List[int] = field(default_factory=list)

    @property
    def n_ops(self) -> int:
        return len(self.members)

    @property
    def height(self) -> int:
        """Longest root-to-member path (a single operation has height 0)."""
        return max(self.depth_from_root.values())

    @property
    def depth(self) -> int:
        """Number of PE levels the cone occupies (height + 1)."""
        return self.height + 1

    def embed_level(self, op_index: int) -> int:
        """PE level a member executes on when the root sits at the cone height."""
        return self.height - self.depth_from_root[op_index]

    def external_slots(self) -> List[int]:
        """Slots read from the register file, one entry per operand reference."""
        slots = []
        for op_index in self.members:
            for operand in self.operands[op_index]:
                if operand.kind == "external":
                    slots.append(operand.slot)
        return slots


@dataclass
class ConeGraph:
    """The cone cover of an operation list plus its dependence structure."""

    ops: OperationList
    cones: List[Cone]
    #: Cone producing each operation-result slot that is written to the
    #: register file.
    producer: Dict[int, int]

    @property
    def n_cones(self) -> int:
        return len(self.cones)

    def predecessors(self, cone: Cone) -> List[int]:
        """Indices of cones whose outputs this cone reads."""
        preds = set()
        for slot in cone.external_slots():
            producer = self.producer.get(slot)
            if producer is not None and producer != cone.index:
                preds.add(producer)
        return sorted(preds)

    def average_ops_per_cone(self) -> float:
        return self.ops.n_operations / len(self.cones) if self.cones else 0.0

    def asap_levels(self) -> List[int]:
        """Earliest dependence level of every cone (sources are level 0).

        Cones in the same level are mutually independent.  The levels are a
        cheap proxy for the order in which the scheduler will issue cones and
        are used to lay out the input stream in the data memory.
        """
        levels = [0] * len(self.cones)
        # Creation order is reverse-topological (consumers before producers),
        # so iterating in reverse visits producers before consumers.
        for cone in reversed(self.cones):
            preds = self.predecessors(cone)
            levels[cone.index] = 1 + max((levels[p] for p in preds), default=-1)
        return levels

    def critical_path_priorities(self) -> List[int]:
        """Priority of each cone: length of the longest cone chain it heads.

        Used by the list scheduler: cones on long dependence chains are
        scheduled first so the chain latency is overlapped with independent
        work.
        """
        consumers: Dict[int, List[int]] = {c.index: [] for c in self.cones}
        for cone in self.cones:
            for pred in self.predecessors(cone):
                consumers[pred].append(cone.index)
        priority = [0] * len(self.cones)
        # Cones are created in reverse topological order of their roots, so
        # iterating in creation order visits consumers before producers.
        for cone in self.cones:
            out = consumers[cone.index]
            priority[cone.index] = 1 + max((priority[c] for c in out), default=0)
        return priority


class _Extractor:
    """Implements the greedy covering described in the module docstring."""

    def __init__(
        self,
        ops: OperationList,
        max_depth: int,
        min_density: float,
        slack_threshold: int,
    ) -> None:
        self._ops = ops
        self._max_height = max_depth - 1
        self._min_density = min_density
        self._slack_threshold = slack_threshold
        self._fanout = ops.fanout()
        self._covered = [False] * ops.n_operations
        self._cones: List[Cone] = []
        self._producer: Dict[int, int] = {}
        self._consumers: List[List[int]] = [[] for _ in range(ops.n_operations)]
        for op in ops.operations:
            for arg in (op.arg0, op.arg1):
                if arg >= ops.n_inputs:
                    self._consumers[arg - ops.n_inputs].append(op.index)
        self._slack = self._compute_slack()

    def _compute_slack(self) -> List[int]:
        """Scheduling slack of every operation (0 = on the critical path).

        Operations with little slack determine the overall latency, so the
        extractor covers them with the deepest possible cones even when those
        cones are sparse; for everything else leaf-PE density wins.
        """
        ops = self._ops
        levels = ops.levels()
        if not levels:
            return []
        critical = max(levels)
        # Longest chain starting at each operation (in operations, inclusive).
        consumers: List[List[int]] = [[] for _ in range(ops.n_operations)]
        for op in ops.operations:
            for arg in (op.arg0, op.arg1):
                if arg >= ops.n_inputs:
                    consumers[arg - ops.n_inputs].append(op.index)
        down = [1] * ops.n_operations
        for op_index in range(ops.n_operations - 1, -1, -1):
            if consumers[op_index]:
                down[op_index] = 1 + max(down[c] for c in consumers[op_index])
        return [critical - (levels[i] - 1) - down[i] for i in range(ops.n_operations)]

    # -- growth ---------------------------------------------------------- #
    def _absorbable(self, op_index: int, members: set) -> bool:
        """May ``op_index`` be absorbed into a cone with the given members?

        Two rules keep the cover schedulable:

        * *convexity* — every consumer of the candidate must already be a
          member.  Otherwise a value could leave the cone, pass through
          another cone and feed back into this one, creating a cyclic
          dependence between cones.  (For single-consumer operations this is
          simply the classic fanout-free rule.)
        * *no diamonds* — none of the candidate's operands may already be a
          member, because a value produced inside the cone cannot be read
          back through the crossbar in the same cycle.
        """
        if self._covered[op_index]:
            return False
        if any(consumer not in members for consumer in self._consumers[op_index]):
            return False
        operation = self._ops.operations[op_index]
        for arg in (operation.arg0, operation.arg1):
            if arg >= self._ops.n_inputs and (arg - self._ops.n_inputs) in members:
                return False
        return True

    def _count_ops(self, op_index: int, budget: int, members: set) -> int:
        """Operations a greedy absorb of ``op_index`` with ``budget`` levels covers."""
        members = set(members)
        return self._simulate_grow(op_index, budget, members)

    def _simulate_grow(self, op_index: int, budget: int, members: set) -> int:
        members.add(op_index)
        total = 1
        if budget == 0:
            return total
        operation = self._ops.operations[op_index]
        # An operation whose two operands are the same value (x + x, x * x)
        # must read it from the register file: absorbing it under one edge
        # would leave the other edge reading a value produced in this very
        # cycle, which the datapath cannot do.
        if operation.arg0 == operation.arg1:
            return total
        for arg in (operation.arg0, operation.arg1):
            if arg < self._ops.n_inputs:
                continue
            child = arg - self._ops.n_inputs
            if self._absorbable(child, members):
                total += self._simulate_grow(child, budget - 1, members)
        return total

    def _best_height(self, op_index: int) -> int:
        """Pick the cone height for the cone rooted at ``op_index``.

        Roots with little scheduling slack take the deepest cone the covering
        rules allow — every absorbed level removes one register-file
        round-trip from the dependence chain.  Everything else is covered for
        leaf-PE density.
        """
        if self._slack[op_index] <= self._slack_threshold:
            best = 0
            for height in range(1, self._max_height + 1):
                if self._count_ops(op_index, height, set()) > self._count_ops(
                    op_index, best, set()
                ):
                    best = height
            return best
        best = 0
        best_score = 1.0  # height 0: one op on one leaf PE
        for height in range(1, self._max_height + 1):
            n_ops = self._count_ops(op_index, height, set())
            density = n_ops / float(2 ** height)
            if n_ops > 1 and density >= self._min_density and density >= best_score:
                best = height
                best_score = density
        return best

    def _grow(self, cone: Cone, op_index: int, depth: int, budget: int) -> None:
        """Absorb ``op_index`` at ``depth`` below the root, then grow downwards."""
        ops = self._ops
        self._covered[op_index] = True
        cone.members.append(op_index)
        cone.depth_from_root[op_index] = depth
        members = set(cone.members)
        operation = ops.operations[op_index]
        # Same-operand operations (x + x, x * x) keep both references external;
        # see _simulate_grow for the rationale.
        may_absorb = budget > 0 and operation.arg0 != operation.arg1
        already_external = {
            operand.slot
            for specs in cone.operands.values()
            for operand in specs
            if operand.kind == "external"
        }
        specs: List[ConeOperand] = []
        for arg in (operation.arg0, operation.arg1):
            absorbed = False
            if arg >= ops.n_inputs and may_absorb and arg not in already_external:
                # If an earlier member already reads this value from the
                # register file, producing it inside the cone would leave that
                # read dangling in the same cycle, so keep it external.
                child = arg - ops.n_inputs
                if self._absorbable(child, members):
                    self._grow(cone, child, depth + 1, budget - 1)
                    members = set(cone.members)
                    specs.append(ConeOperand.internal(child))
                    absorbed = True
            if not absorbed:
                specs.append(ConeOperand.external(arg))
        cone.operands[op_index] = (specs[0], specs[1])

    # -- driver ----------------------------------------------------------- #
    def run(self) -> ConeGraph:
        ops = self._ops
        for op_index in range(ops.n_operations - 1, -1, -1):
            if self._covered[op_index]:
                continue
            cone = Cone(index=len(self._cones), root_op=op_index)
            height = self._best_height(op_index) if self._max_height > 0 else 0
            self._grow(cone, op_index, depth=0, budget=height)
            self._finalize(cone)
            self._cones.append(cone)
        return ConeGraph(ops=ops, cones=self._cones, producer=self._producer)

    def _finalize(self, cone: Cone) -> None:
        """Determine which members must write their value to the register file."""
        ops = self._ops
        produced = {ops.dest_slot(member) for member in cone.members}
        for slot in cone.external_slots():
            if slot in produced:
                raise ValueError(
                    f"internal error: cone {cone.index} reads slot {slot} from the "
                    "register file although it produces that value itself"
                )
        internal_uses: Dict[int, int] = {}
        for op_index in cone.members:
            for operand in cone.operands[op_index]:
                if operand.kind == "internal":
                    internal_uses[operand.op_index] = internal_uses.get(operand.op_index, 0) + 1
        for op_index in cone.members:
            slot = ops.dest_slot(op_index)
            external_uses = self._fanout[slot] - internal_uses.get(op_index, 0)
            if op_index == cone.root_op or external_uses > 0:
                cone.outputs.append(op_index)
                self._producer[slot] = cone.index


def extract_cones(
    ops: OperationList,
    max_depth: int,
    min_density: float = 1.0,
    slack_threshold: int = 2,
) -> ConeGraph:
    """Cover ``ops`` with cones of at most ``max_depth`` PE levels.

    ``max_depth`` is the number of PE levels of the target tree
    (``ProcessorConfig.n_levels``): 4 for ``Ptree`` (cones of up to 15
    operations), 1 for ``Pvect`` (single-operation cones).  ``min_density``
    is the minimum operations-per-blocked-leaf-PE ratio accepted for
    multi-level cones, and ``slack_threshold`` the scheduling slack below
    which a root is covered latency-first (see the module docstring).
    """
    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    if min_density <= 0:
        raise ValueError("min_density must be positive")
    return _Extractor(ops, max_depth, min_density, slack_threshold).run()
