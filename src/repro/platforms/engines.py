"""Built-in platform engines: CPU, GPU and the custom processor.

Each engine wraps one of the repository's performance models behind the
uniform :class:`~repro.platforms.base.PlatformEngine` interface and registers
itself under the paper's platform name, so experiments obtain it with
``get_engine("CPU")`` etc. and never hand-wire model-specific dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from ..baselines.cpu import CpuConfig, simulate_cpu
from ..baselines.gpu import GpuConfig, simulate_gpu
from ..processor.config import ProcessorConfig, ptree_config, pvect_config
from ..spn.memplan import ExecutionOptions
from .base import (
    PLATFORM_CPU,
    PLATFORM_GPU,
    PLATFORM_PTREE,
    PLATFORM_PVECT,
    PlatformEngine,
    PlatformResult,
    register_platform,
)

__all__ = ["CpuEngine", "GpuEngine", "ProcessorEngine"]


@dataclass(frozen=True)
class CpuEngine(PlatformEngine):
    """Trace-driven model of the superscalar CPU (Sec. III, ``baselines.cpu``).

    Besides the timing model, the CPU is the one platform that also
    *functionally executes* compiled tapes on the host, so the engine
    carries the recommended tape executor configuration (``execution``):
    sharded planned execution with one shard per host core by default.
    Sessions and the tape-memory benchmark obtain it through
    :meth:`execution_options` instead of hand-wiring thread counts.
    """

    config: CpuConfig = field(default_factory=CpuConfig)
    execution: ExecutionOptions = field(
        default_factory=lambda: ExecutionOptions(mode="sharded")
    )

    description = (
        "Out-of-order superscalar core executing the flat operation list as "
        "straight-line compiled code (register spills, L1 latencies, "
        "front-end fetch limits)."
    )

    @property
    def name(self) -> str:
        return PLATFORM_CPU

    def execution_options(self) -> ExecutionOptions:
        return self.execution

    def run(
        self,
        ops,
        benchmark: str = "",
        options: Optional[object] = None,
        evidence: Optional[Mapping[int, int]] = None,
    ) -> PlatformResult:
        result = simulate_cpu(ops, self.config)
        return PlatformResult(
            platform=self.name,
            benchmark=benchmark,
            ops_per_cycle=result.ops_per_cycle,
            cycles=result.cycles,
            n_operations=result.n_operations,
        )

    def table_row(self) -> Tuple[str, str, str, str]:
        # The register/cache description follows Table I of the paper; the
        # modelled core exposes the same resources through CpuConfig.
        return (
            self.name,
            f"{self.config.fp_ports} arith. units in a superscalar core",
            "168 80b registers + 32 KB L1 cache",
            "16",
        )


@dataclass(frozen=True)
class GpuEngine(PlatformEngine):
    """SIMT model of the CUDA kernel (Algorithm 3, ``baselines.gpu``)."""

    config: GpuConfig = field(default_factory=GpuConfig)

    description = (
        "Embedded-GPU SIMT timing model: dependence groups on one thread "
        "block, shared-memory bank conflicts (coloring or interleaved "
        "allocation), divergence and barrier costs."
    )

    @property
    def name(self) -> str:
        return PLATFORM_GPU

    def run(
        self,
        ops,
        benchmark: str = "",
        options: Optional[object] = None,
        evidence: Optional[Mapping[int, int]] = None,
    ) -> PlatformResult:
        result = simulate_gpu(ops, self.config)
        return PlatformResult(
            platform=self.name,
            benchmark=benchmark,
            ops_per_cycle=result.ops_per_cycle,
            cycles=result.cycles,
            n_operations=result.n_operations,
        )

    def table_row(self) -> Tuple[str, str, str, str]:
        return (
            self.name,
            "128 CUDA cores",
            "64K 32b registers + 64 KB shared mem.",
            str(self.config.n_banks),
        )


@dataclass(frozen=True)
class ProcessorEngine(PlatformEngine):
    """The custom SPN processor: full compiler plus cycle-accurate simulator.

    ``verify`` (default on) runs the simulator in strict mode, so throughput
    numbers are only ever reported for programs that transported every value
    correctly.  ``mode`` forces a simulator path explicitly (``"fast"`` for
    the vectorized tape) and ``check`` cross-checks fast against strict.
    """

    config: ProcessorConfig = field(default_factory=ptree_config)
    verify: bool = True
    mode: Optional[str] = None
    check: bool = False

    description = (
        "VLIW processor with PE trees behind a banked register file; "
        "programs come from the cone-extraction + scheduling compiler and "
        "are measured on the cycle-accurate simulator (strict or fast mode)."
    )

    @property
    def name(self) -> str:
        return self.config.name

    def run(
        self,
        ops,
        benchmark: str = "",
        options: Optional[object] = None,
        evidence: Optional[Mapping[int, int]] = None,
    ) -> PlatformResult:
        # Imported here so CPU/GPU-only users never pay for the compiler.
        from ..compiler.driver import compile_operation_list

        kernel = compile_operation_list(ops, self.config, options)
        result = kernel.run(
            evidence=evidence, strict=self.verify, mode=self.mode, check=self.check
        )
        return PlatformResult(
            platform=self.name,
            benchmark=benchmark,
            ops_per_cycle=result.ops_per_cycle,
            cycles=result.cycles,
            n_operations=result.n_operations,
        )

    def table_row(self) -> Tuple[str, str, str, str]:
        config = self.config
        dmem_kb = config.dmem_rows * config.n_banks * 4 // 1024
        return (
            f"Ours ({config.name})",
            f"{config.n_pes} PEs",
            f"{config.n_registers // 1024}K 32b registers + {dmem_kb} KB data mem.",
            str(config.n_banks),
        )


register_platform(PLATFORM_CPU, CpuEngine)
register_platform(PLATFORM_GPU, GpuEngine)
register_platform(PLATFORM_PVECT, lambda: ProcessorEngine(config=pvect_config()))
register_platform(PLATFORM_PTREE, lambda: ProcessorEngine(config=ptree_config()))
