"""The platform-engine abstraction and its registry.

Every platform of the paper's comparison — the trace-driven CPU model, the
SIMT GPU model and the custom processor in its ``Pvect``/``Ptree``
configurations — is represented by a :class:`PlatformEngine`: an immutable
object with a common ``run(ops, ...) -> PlatformResult`` interface plus the
metadata the experiments need (Table I resource rows, config knobs).

Engines are looked up by name through a module-level registry
(:func:`register_platform` / :func:`get_engine`), so every experiment driver
dispatches the same way and adding a new platform model is a one-file
registration::

    from repro.platforms import PlatformEngine, register_platform

    class TpuEngine(PlatformEngine):
        ...

    register_platform("TPU", TpuEngine)

See ``docs/platforms.md`` for the modeling assumptions behind each built-in
engine and the full registration walkthrough.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..analysis.metrics import PlatformResult
from ..spn.linearize import OperationList

__all__ = [
    "PLATFORM_CPU",
    "PLATFORM_GPU",
    "PLATFORM_PVECT",
    "PLATFORM_PTREE",
    "DEFAULT_PLATFORMS",
    "PlatformEngine",
    "PlatformResult",
    "UnknownPlatformError",
    "register_platform",
    "unregister_platform",
    "get_engine",
    "available_platforms",
]

#: Canonical names of the four platforms compared in the paper.
PLATFORM_CPU = "CPU"
PLATFORM_GPU = "GPU"
PLATFORM_PVECT = "Pvect"
PLATFORM_PTREE = "Ptree"
DEFAULT_PLATFORMS = (PLATFORM_CPU, PLATFORM_GPU, PLATFORM_PVECT, PLATFORM_PTREE)


class UnknownPlatformError(ValueError):
    """Raised when a platform name has no registered engine."""


class PlatformEngine(abc.ABC):
    """One execution platform with a uniform throughput-measurement interface.

    Concrete engines are frozen dataclasses holding their model configuration
    in a ``config`` field; :meth:`configured` and :meth:`with_config` derive
    re-parameterized copies, so sweeps and ablations never mutate shared
    state.
    """

    #: One-line modeling summary (shown by ``docs/platforms.md`` tooling).
    description: str = ""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Platform name as it appears in figures and the registry."""

    @abc.abstractmethod
    def run(
        self,
        ops: OperationList,
        benchmark: str = "",
        options: Optional[object] = None,
        evidence: Optional[Mapping[int, int]] = None,
    ) -> PlatformResult:
        """Measure ``ops`` on this platform and return its throughput.

        ``options`` carries compiler :class:`~repro.compiler.scheduler.ScheduleOptions`
        for the processor engines and is ignored by the CPU/GPU models (their
        timing does not depend on the SPN compiler).  ``evidence`` selects
        the input assignment used for the processor's strict verification;
        the timing of every model is input-independent.
        """

    @abc.abstractmethod
    def table_row(self) -> Tuple[str, str, str, str]:
        """This platform's Table I row: (name, compute units, memory, banks)."""

    # ------------------------------------------------------------------ #
    def execution_options(self):
        """Tape :class:`~repro.spn.memplan.ExecutionOptions` for this platform.

        Platforms that *functionally execute* compiled tapes on the host
        (the CPU engine) return the executor configuration a session
        should use to exploit them — shard-pool size above all; pure
        timing models return ``None``.  The tape-memory benchmark and
        sessions created per platform read this instead of hand-wiring
        thread counts.
        """
        return None

    def configured(self, **overrides: object) -> "PlatformEngine":
        """Copy of this engine with ``config`` fields replaced by ``overrides``."""
        return dataclasses.replace(
            self, config=dataclasses.replace(self.config, **overrides)
        )

    def with_config(self, config: object) -> "PlatformEngine":
        """Copy of this engine with ``config`` replaced wholesale."""
        return dataclasses.replace(self, config=config)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_FACTORIES: Dict[str, Callable[[], PlatformEngine]] = {}
_INSTANCES: Dict[str, PlatformEngine] = {}


def register_platform(
    name: str, factory: Callable[[], PlatformEngine], overwrite: bool = False
) -> None:
    """Register ``factory`` (a zero-argument engine constructor) under ``name``."""
    if name in _FACTORIES and not overwrite:
        raise ValueError(
            f"platform {name!r} is already registered; pass overwrite=True to replace it"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def unregister_platform(name: str) -> None:
    """Remove ``name`` from the registry (raises for unknown names)."""
    if name not in _FACTORIES:
        raise UnknownPlatformError(_unknown_message(name))
    del _FACTORIES[name]
    _INSTANCES.pop(name, None)


def get_engine(name: str) -> PlatformEngine:
    """Return the (cached) engine registered under ``name``."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise UnknownPlatformError(_unknown_message(name))
    engine = _INSTANCES.get(name)
    if engine is None:
        engine = factory()
        _INSTANCES[name] = engine
    return engine


def available_platforms() -> List[str]:
    """Registered platform names, deterministically sorted.

    The order is independent of registration order (which varies with
    import order once third-party backends self-register), so iteration
    output — figures, sweep grids, cache keys built from the list — is
    stable across processes and runs.
    """
    return sorted(_FACTORIES)


def _unknown_message(name: str) -> str:
    known = ", ".join(_FACTORIES) or "none"
    return f"unknown platform {name!r}; registered platforms: {known}"
