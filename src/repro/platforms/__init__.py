"""Unified platform-engine registry (see ``docs/platforms.md``).

One import gives every experiment the same dispatch surface::

    from repro.platforms import get_engine

    result = get_engine("Ptree").run(ops, benchmark="Audio")
    print(result.ops_per_cycle)

Importing this package registers the four built-in engines of the paper's
comparison (CPU, GPU, Pvect, Ptree); new backends self-register through
:func:`register_platform`.
"""

from .base import (
    DEFAULT_PLATFORMS,
    PLATFORM_CPU,
    PLATFORM_GPU,
    PLATFORM_PTREE,
    PLATFORM_PVECT,
    PlatformEngine,
    PlatformResult,
    UnknownPlatformError,
    available_platforms,
    get_engine,
    register_platform,
    unregister_platform,
)
from .engines import CpuEngine, GpuEngine, ProcessorEngine

__all__ = [
    "DEFAULT_PLATFORMS",
    "PLATFORM_CPU",
    "PLATFORM_GPU",
    "PLATFORM_PTREE",
    "PLATFORM_PVECT",
    "PlatformEngine",
    "PlatformResult",
    "UnknownPlatformError",
    "available_platforms",
    "get_engine",
    "register_platform",
    "unregister_platform",
    "CpuEngine",
    "GpuEngine",
    "ProcessorEngine",
]
