"""GPU (SIMT) execution model of the CUDA SPN kernel (Sec. III of the paper).

The paper implements SPN inference as a CUDA kernel (Algorithm 3): the
operation DAG is decomposed into dependence groups, all operations of a group
run concurrently on the threads of one block, and ``__syncthreads()``
separates consecutive groups.  Operands live in shared memory, whose 32 banks
are allocated with a graph-coloring pass to reduce bank conflicts.

No GPU is available in this environment, so the kernel is reproduced in two
forms:

* a **functional emulation** (:func:`execute_gpu_kernel`) that follows the
  exact group/wave/warp schedule and is checked against the reference
  evaluator, and
* a **timing model** (:func:`simulate_gpu`) that charges, per warp
  instruction, the costs the paper identifies as the GPU's bottlenecks —
  instruction issue, shared-memory transactions including bank conflicts,
  sum/product divergence, exposed read-after-write latency between groups and
  the ``__syncthreads()`` barrier — and reports effective operations/cycle.

The constants default to estimates for the Jetson TX2 (Pascal) used in the
paper and are exposed in :class:`GpuConfig` so the thread-count sweep of
Fig. 2(c) and the suite comparison of Fig. 4 can be regenerated.  Bank
conflicts are charged through the accounting helpers of
:mod:`repro.baselines.gpu_banks` (one shared definition for the allocator
and the timing model).  Experiments reach this model as the ``"GPU"`` engine
of the platform registry (:class:`repro.platforms.GpuEngine`, see
``docs/platforms.md``); the thread-count sweep of Fig. 2(c) is expressed as
re-parameterized copies of that engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..spn.linearize import OP_ADD, OperationList
from .gpu_banks import (
    graph_coloring_allocation,
    interleaved_allocation,
    step_transactions,
    warp_access_steps,
)

__all__ = ["GpuConfig", "GpuResult", "simulate_gpu", "execute_gpu_kernel", "thread_sweep"]


@dataclass(frozen=True)
class GpuConfig:
    """Resource and timing parameters of the modelled embedded GPU.

    Defaults approximate the Nvidia Jetson TX2 configuration of Table I:
    128 CUDA cores fed by a 32-bank shared memory.
    """

    n_threads: int = 256
    warp_size: int = 32
    n_banks: int = 32
    #: Warp-instructions the whole GPU can issue per cycle.
    issue_width: int = 2
    #: Shared-memory warp-transactions serviced per cycle (one 32-bank access).
    smem_ports: int = 1
    #: Non-arithmetic instructions per SPN operation: loads of ``O[i]``,
    #: ``B[i]`` and ``C[i]``, shared-memory address computation and the
    #: sum/product selection, in addition to the arithmetic itself.
    overhead_instructions: int = 8
    #: Cost of a __syncthreads() barrier between dependence groups.
    sync_cost: int = 35
    #: Shared-memory read-after-write latency exposed between dependence
    #: groups, and (scaled by occupancy) inside waves with too few warps to
    #: hide it.
    raw_latency: int = 30
    #: Number of resident warps needed to fully hide the shared-memory latency.
    latency_hiding_warps: int = 4
    #: Sustainable instructions per cycle for a single active thread
    #: (dual-issue in-order pipeline).
    single_thread_ipc: float = 2.0
    #: Bank allocation strategy: "coloring" (the paper's) or "interleaved".
    bank_allocation: str = "coloring"

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.warp_size < 1 or self.n_banks < 1:
            raise ValueError("warp_size and n_banks must be >= 1")
        if self.issue_width < 1 or self.smem_ports < 1:
            raise ValueError("issue_width and smem_ports must be >= 1")
        if self.latency_hiding_warps < 1:
            raise ValueError("latency_hiding_warps must be >= 1")
        if self.bank_allocation not in ("coloring", "interleaved"):
            raise ValueError("bank_allocation must be 'coloring' or 'interleaved'")


@dataclass
class GpuResult:
    """Outcome of a GPU model run."""

    cycles: int
    n_operations: int
    n_groups: int
    n_transactions: int
    n_conflict_transactions: int
    n_divergent_warps: int
    config: GpuConfig = field(repr=False, default_factory=GpuConfig)

    @property
    def ops_per_cycle(self) -> float:
        """Effective SPN operations per cycle (the paper's throughput metric)."""
        return self.n_operations / self.cycles if self.cycles else 0.0


def _allocate_banks(ops: OperationList, config: GpuConfig) -> List[int]:
    if config.bank_allocation == "coloring":
        return graph_coloring_allocation(
            ops, config.n_threads, config.n_banks, config.warp_size
        )
    return interleaved_allocation(ops, config.n_banks)


def _warp_chunks(active: Sequence[int], warp_size: int) -> List[Sequence[int]]:
    return [active[i : i + warp_size] for i in range(0, len(active), warp_size)]


def simulate_gpu(ops: OperationList, config: Optional[GpuConfig] = None) -> GpuResult:
    """Estimate the cycle count of the CUDA kernel for one SPN evaluation."""
    config = config or GpuConfig()
    if ops.n_operations == 0:
        return GpuResult(0, 0, 0, 0, 0, 0, config)

    bank_of = _allocate_banks(ops, config)
    groups = ops.groups()

    # A single thread executes the whole list serially: throughput is bound by
    # instruction issue of one thread plus the dependence chains that cross
    # group boundaries (loads can overlap within a group, not across it).
    if config.n_threads == 1:
        instructions = ops.n_operations * (config.overhead_instructions + 1)
        issue_cycles = instructions / config.single_thread_ipc
        latency_cycles = len(groups) * config.raw_latency * 0.2
        cycles = int(math.ceil(issue_cycles + latency_cycles))
        return GpuResult(cycles, ops.n_operations, len(groups), 0, 0, 0, config)

    total_cycles = 0
    total_transactions = 0
    conflict_transactions = 0
    divergent_warps = 0

    # Input copy phase of Algorithm 3 (each thread copies a strided slice of
    # IN into shared memory): two instructions and one shared-memory write
    # per element, spread over the block.
    copy_iterations = math.ceil(ops.n_inputs / config.n_threads)
    total_cycles += copy_iterations * 2 + config.sync_cost

    for group in groups:
        group_cycles = 0.0
        group_transactions = 0
        n_waves = math.ceil(len(group) / config.n_threads)
        for wave in range(n_waves):
            active = group[wave * config.n_threads : (wave + 1) * config.n_threads]
            warps = _warp_chunks(active, config.warp_size)
            wave_instructions = 0
            wave_transactions = 0
            for warp_ops in warps:
                kinds = {ops.operations[j].op for j in warp_ops}
                passes = len(kinds)
                if passes > 1:
                    divergent_warps += 1
                wave_instructions += config.overhead_instructions + passes
                # Three access steps per warp instruction (both operand reads
                # and the result write), each serialized by bank conflicts —
                # the same accounting the allocator optimizes against.
                for slots in warp_access_steps(ops, warp_ops):
                    transactions = step_transactions(slots, bank_of)
                    wave_transactions += transactions
                    conflict_transactions += transactions - 1
            issue_cycles = wave_instructions / config.issue_width
            smem_cycles = wave_transactions / config.smem_ports
            # With fewer resident warps than needed to hide the shared-memory
            # latency, part of that latency is exposed in every wave.
            occupancy_gap = max(0, config.latency_hiding_warps - len(warps))
            exposed = config.raw_latency * occupancy_gap / config.latency_hiding_warps
            group_cycles += max(issue_cycles, smem_cycles) + exposed
            group_transactions += wave_transactions
        # The first wave of a group consumes values written at the end of the
        # previous group, so at least one shared-memory round-trip is exposed
        # regardless of how little work the group contains.
        group_cycles = max(group_cycles, config.raw_latency)
        total_cycles += int(math.ceil(group_cycles)) + config.sync_cost
        total_transactions += group_transactions

    return GpuResult(
        cycles=total_cycles,
        n_operations=ops.n_operations,
        n_groups=len(groups),
        n_transactions=total_transactions,
        n_conflict_transactions=conflict_transactions,
        n_divergent_warps=divergent_warps,
        config=config,
    )


def execute_gpu_kernel(
    ops: OperationList,
    input_vector: Sequence[float],
    config: Optional[GpuConfig] = None,
) -> float:
    """Functionally emulate Algorithm 3 and return the root value.

    The emulation follows the exact schedule of the timing model (groups,
    waves, warps) and writes results into a shared-memory image indexed by
    slot, so it verifies that the group decomposition never reads a value
    before the group that produces it has executed.
    """
    config = config or GpuConfig()
    shared = np.full(ops.n_slots, np.nan, dtype=np.float64)
    shared[: ops.n_inputs] = np.asarray(input_vector, dtype=np.float64)
    for group in ops.groups():
        # Stage all reads before any write of this group, mirroring the
        # barrier semantics: within a group no operation may depend on another.
        staged = []
        for j in group:
            op = ops.operations[j]
            a, b = shared[op.arg0], shared[op.arg1]
            if math.isnan(a) or math.isnan(b):
                raise RuntimeError(
                    f"operation {j} reads a value not yet produced; "
                    "group decomposition is inconsistent"
                )
            staged.append((j, a + b if op.op == OP_ADD else a * b))
        for j, value in staged:
            shared[ops.dest_slot(j)] = value
    return float(shared[ops.root_slot])


def thread_sweep(
    ops: OperationList,
    thread_counts: Sequence[int] = (1, 32, 64, 128, 256),
    config: Optional[GpuConfig] = None,
) -> Dict[int, GpuResult]:
    """Run the timing model for several block sizes (the sweep of Fig. 2c)."""
    base = config or GpuConfig()
    results: Dict[int, GpuResult] = {}
    for t in thread_counts:
        results[t] = simulate_gpu(ops, replace(base, n_threads=t))
    return results
