"""CPU and GPU baseline execution models (Sec. III of the paper)."""

from .cpu import CpuConfig, CpuResult, build_microops, execute_baseline, simulate_cpu
from .gpu import GpuConfig, GpuResult, execute_gpu_kernel, simulate_gpu, thread_sweep
from .gpu_banks import (
    conflict_graph,
    count_warp_conflicts,
    graph_coloring_allocation,
    interleaved_allocation,
    step_transactions,
    warp_access_steps,
)

__all__ = [
    "CpuConfig",
    "CpuResult",
    "build_microops",
    "execute_baseline",
    "simulate_cpu",
    "GpuConfig",
    "GpuResult",
    "execute_gpu_kernel",
    "simulate_gpu",
    "thread_sweep",
    "conflict_graph",
    "count_warp_conflicts",
    "graph_coloring_allocation",
    "interleaved_allocation",
    "step_transactions",
    "warp_access_steps",
]
