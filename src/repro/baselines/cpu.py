"""CPU execution model for SPN operation lists (Sec. III of the paper).

The paper measures an Intel i5-7200U executing the SPN as a flat list of
compiled C operations (Algorithm 1) and reports a peak of ~0.55 effective
operations/cycle.  Wall-clock measurements inside this container would say
nothing about that machine, so this module provides a trace-driven model of
a superscalar out-of-order core with the resources of Table I:

* 2 floating-point arithmetic units;
* a limited out-of-order scheduling window;
* a compiler-visible register budget — values whose producer and consumer are
  further apart than the effective register window must round-trip through
  the L1 cache (explicit load/store micro-ops); the 168-entry physical
  register file of Table I does not help here because the straight-line
  compiled code can only name the 16 architectural registers;
* 2 load ports and 1 store port, L1-hit latency for loads;
* a front-end fetch bandwidth limit: the fully unrolled operation list
  compiles to straight-line code far larger than the 32 KB L1 instruction
  cache, so sustained instruction fetch comes from L2 and becomes a primary
  bottleneck (this is the well-known behaviour of compiled arithmetic
  circuits on CPUs).

The model first expands the operation list into a micro-op trace
(loads / arithmetic / stores in program order) and then issues it cycle by
cycle under the port, latency, window and fetch-bandwidth constraints.  The
absolute constants are approximations of a Kaby Lake-class core; the quantity
of interest is the resulting operations/cycle regime (~0.5-0.7) and its
insensitivity to the SPN, which matches the paper's measurement.

Experiments do not call :func:`simulate_cpu` directly: the model is exposed
as the ``"CPU"`` engine of the platform registry
(:class:`repro.platforms.CpuEngine`, see ``docs/platforms.md``), which every
driver reaches through :func:`repro.platforms.get_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..spn.compiled import cached_tape, cross_check, resolve_engine
from ..spn.evaluate import row_evidence
from ..spn.linearize import OperationList

__all__ = [
    "CpuConfig",
    "CpuResult",
    "build_microops",
    "simulate_cpu",
    "execute_baseline",
    "MicroOp",
]

# Micro-op kinds.
_LOAD = "load"
_ARITH = "arith"
_STORE = "store"
_INT = "int"  # integer/control overhead of the Algorithm 2 loop form


@dataclass(frozen=True)
class CpuConfig:
    """Resource and timing parameters of the modelled CPU core.

    Defaults approximate the Intel i5-7200U of the paper (Table I): a
    superscalar core with two FP units backed by a 32 KB L1 data cache.
    """

    issue_width: int = 4
    fp_ports: int = 2
    load_ports: int = 2
    store_ports: int = 1
    window_size: int = 64
    fp_latency: int = 4
    l1_latency: int = 4
    store_latency: int = 1
    #: Producer-to-consumer distance (in operation-list slots) beyond which a
    #: value is assumed to have left the compiler-allocated registers and must
    #: be reloaded from the L1 cache.  Compiled straight-line code can only
    #: name the 16 architectural registers, a few of which hold constants and
    #: addresses.
    register_window: int = 12
    #: Sustained instruction-fetch bandwidth in bytes per cycle.  Straight-line
    #: SPN code greatly exceeds the 32 KB L1 instruction cache, so fetch is
    #: limited by the L1I miss path rather than the 16 B/cycle decoder feed.
    #: The default is calibrated so that the modelled core reproduces the
    #: ~0.55 operations/cycle the paper measures on the i5-7200U.
    frontend_bytes_per_cycle: float = 4.5
    #: Average encoded size of one micro-op (scalar SSE with a memory operand).
    bytes_per_microop: float = 4.0
    #: When True, model the Algorithm 2 (for-loop over index vectors) form:
    #: every operation additionally fetches its opcode and two operand indices
    #: and executes loop/branch overhead instructions.  The paper notes this
    #: form is consistently slower than the flat operation list.
    indexed_loop: bool = False

    def __post_init__(self) -> None:
        if min(self.issue_width, self.fp_ports, self.load_ports, self.store_ports) < 1:
            raise ValueError("all port counts must be >= 1")
        if self.window_size < 1 or self.register_window < 1:
            raise ValueError("window_size and register_window must be >= 1")
        if min(self.fp_latency, self.l1_latency, self.store_latency) < 1:
            raise ValueError("latencies must be >= 1")
        if self.frontend_bytes_per_cycle <= 0 or self.bytes_per_microop <= 0:
            raise ValueError("front-end parameters must be positive")


@dataclass(frozen=True)
class MicroOp:
    """One micro-operation of the expanded trace."""

    index: int
    kind: str
    #: Indices (into the micro-op trace) of the producers this micro-op waits on.
    deps: tuple
    #: Operation-list index this micro-op belongs to (for accounting only).
    op_index: int


@dataclass
class CpuResult:
    """Outcome of a CPU model run."""

    cycles: int
    n_operations: int
    n_loads: int
    n_stores: int
    n_overhead: int = 0
    config: CpuConfig = field(repr=False, default_factory=CpuConfig)

    @property
    def n_microops(self) -> int:
        return self.n_operations + self.n_loads + self.n_stores + self.n_overhead

    @property
    def ops_per_cycle(self) -> float:
        """Effective SPN operations per cycle (the paper's throughput metric)."""
        return self.n_operations / self.cycles if self.cycles else 0.0

    @property
    def ipc(self) -> float:
        """Micro-ops per cycle (for model diagnostics)."""
        return self.n_microops / self.cycles if self.cycles else 0.0


def execute_baseline(
    ops: OperationList, data: np.ndarray, engine: str = "python", check: bool = False
) -> np.ndarray:
    """Functional execution of the program the CPU model times.

    The timing model above only counts cycles; this is the matching value
    computation for an evidence batch (shape ``(n_rows, n_vars)``, following
    the :data:`repro.spn.evaluate.MARGINALIZED` convention).  The
    ``"python"`` engine interprets the flat operation list row by row —
    exactly the straight-line program of Algorithm 1 that the modelled CPU
    executes — while ``"vectorized"`` routes the whole batch through the
    compiled tape of :mod:`repro.spn.compiled`.  With ``check=True`` the
    vectorized result is cross-checked against the reference interpretation
    on the first few rows.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D evidence array, got shape {data.shape}")
    if resolve_engine(engine) == "vectorized":
        result = cached_tape(ops).execute_batch(data)
        if check:
            cross_check(
                result,
                data,
                lambda head: execute_baseline(ops, head, engine="python"),
                what="vectorized baseline execution",
            )
        return result
    out = np.empty(data.shape[0], dtype=np.float64)
    for row in range(data.shape[0]):
        out[row] = ops.execute(row_evidence(data[row]))
    return out


def build_microops(ops: OperationList, config: Optional[CpuConfig] = None) -> List[MicroOp]:
    """Expand an operation list into the micro-op trace the core executes.

    Every SPN operation becomes one arithmetic micro-op plus a load micro-op
    for each operand that is not register-resident (leaf inputs and values
    produced more than ``register_window`` slots earlier) and a store
    micro-op when the result itself will not stay register-resident until its
    last consumer.
    """
    config = config or CpuConfig()
    trace: List[MicroOp] = []
    # For every slot: micro-op index of the arithmetic op that produced it
    # (None for inputs), used for dependence edges.
    producer_uop: Dict[int, int] = {}
    # Fan-out information to decide which results must be stored.
    last_consumer: Dict[int, int] = {}
    for op in ops.operations:
        last_consumer[op.arg0] = op.index
        last_consumer[op.arg1] = op.index

    def emit(kind: str, deps: tuple, op_index: int) -> int:
        uop = MicroOp(index=len(trace), kind=kind, deps=deps, op_index=op_index)
        trace.append(uop)
        return uop.index

    n_inputs = ops.n_inputs
    for op in ops.operations:
        if config.indexed_loop:
            # Algorithm 2 fetches O[i], B[i], C[i] and evaluates the loop
            # branch and the sum/product selection for every operation.
            emit(_LOAD, (), op.index)
            emit(_LOAD, (), op.index)
            emit(_LOAD, (), op.index)
            emit(_INT, (), op.index)
        dep_uops: List[int] = []
        for arg in (op.arg0, op.arg1):
            if arg < n_inputs:
                # Leaf inputs live in memory; each first use needs a load.  The
                # compiler would keep hot inputs in registers, which the
                # register_window rule approximates for recently loaded slots.
                dep_uops.append(emit(_LOAD, (), op.index))
            else:
                producer_op_index = arg - n_inputs
                distance = op.index - producer_op_index
                if distance > config.register_window:
                    # Value was spilled; reload it (the producer-side store was
                    # accounted for when the value was produced).
                    dep_uops.append(emit(_LOAD, (), op.index))
                else:
                    dep_uops.append(producer_uop[arg])
        arith_index = emit(_ARITH, tuple(dep_uops), op.index)
        dest = ops.dest_slot(op.index)
        producer_uop[dest] = arith_index
        consumer = last_consumer.get(dest)
        if consumer is not None and consumer - op.index > config.register_window:
            emit(_STORE, (arith_index,), op.index)
    return trace


def simulate_cpu(ops: OperationList, config: Optional[CpuConfig] = None) -> CpuResult:
    """Run the out-of-order issue model and return cycle counts.

    The model issues micro-ops cycle by cycle: only the first ``window_size``
    not-yet-issued micro-ops (in program order) are candidates, at most
    ``issue_width`` micro-ops issue per cycle subject to per-port limits, and
    a micro-op may issue only when all of its producers have completed.
    """
    config = config or CpuConfig()
    trace = build_microops(ops, config)
    n = len(trace)
    if n == 0:
        return CpuResult(cycles=0, n_operations=0, n_loads=0, n_stores=0, config=config)

    latency = {
        _LOAD: config.l1_latency,
        _ARITH: config.fp_latency,
        _STORE: config.store_latency,
        _INT: 1,
    }
    completion = [0] * n
    issued = [False] * n
    head = 0  # first not-yet-issued micro-op
    n_issued = 0
    cycle = 0
    # Hard safety bound: a core issuing one micro-op every 'window' cycles.
    max_cycles = n * (max(latency.values()) + 1) + config.window_size
    while n_issued < n and cycle <= max_cycles:
        cycle += 1
        slots_left = config.issue_width
        bytes_left = config.frontend_bytes_per_cycle
        port_left = {
            _ARITH: config.fp_ports,
            _LOAD: config.load_ports,
            _STORE: config.store_ports,
            _INT: 2,
        }
        window_end = min(n, head + config.window_size)
        for i in range(head, window_end):
            if slots_left == 0 or bytes_left < config.bytes_per_microop:
                break
            if issued[i]:
                continue
            uop = trace[i]
            if port_left[uop.kind] == 0:
                continue
            if any(completion[d] > cycle for d in uop.deps):
                continue
            issued[i] = True
            completion[i] = cycle + latency[uop.kind]
            slots_left -= 1
            bytes_left -= config.bytes_per_microop
            port_left[uop.kind] -= 1
            n_issued += 1
        while head < n and issued[head]:
            head += 1

    # Account for the drain of the last in-flight micro-ops.
    total_cycles = max(completion) if completion else 0
    n_loads = sum(1 for u in trace if u.kind == _LOAD)
    n_stores = sum(1 for u in trace if u.kind == _STORE)
    n_overhead = sum(1 for u in trace if u.kind == _INT)
    return CpuResult(
        cycles=total_cycles,
        n_operations=ops.n_operations,
        n_loads=n_loads,
        n_stores=n_stores,
        n_overhead=n_overhead,
        config=config,
    )
