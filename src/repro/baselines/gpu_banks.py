"""Shared-memory bank allocation for the GPU kernel (Sec. III.2 of the paper).

When the threads of a warp read their operands from shared memory, accesses
that map to the same bank are serialized ("bank conflicts").  The paper
minimizes them with a graph-coloring based allocation: two values conflict
when threads of the same warp access them in the same kernel step, and the
allocator tries to give conflicting values different banks (colors).

This module builds that conflict graph from the thread assignment of the
CUDA kernel and colors it greedily in largest-degree-first order, which is
the standard heuristic for this problem.  The naive alternative — interleaved
placement by slot index, which is what the plain ``A[i + j*t]`` layout of
Algorithm 3 produces — is kept as a baseline for ablation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..spn.linearize import OperationList

__all__ = [
    "interleaved_allocation",
    "conflict_graph",
    "color_banks",
    "graph_coloring_allocation",
    "count_warp_conflicts",
    "warp_access_steps",
    "step_transactions",
]


def interleaved_allocation(ops: OperationList, n_banks: int) -> List[int]:
    """Slot-index-modulo-banks placement (the layout of Algorithm 3)."""
    if n_banks < 1:
        raise ValueError("n_banks must be >= 1")
    return [slot % n_banks for slot in range(ops.n_slots)]


def warp_access_steps(ops: OperationList, warp_ops: Sequence[int]) -> List[List[int]]:
    """The three shared-memory access steps of one warp instruction.

    A warp executing operations ``warp_ops`` reads all first operands
    together, then all second operands together, then writes all
    destinations together; each step is serialized by bank conflicts
    independently.  This is the single definition of that access pattern,
    shared by the conflict-graph builder, the conflict counter and the GPU
    timing model (:func:`repro.baselines.gpu.simulate_gpu`).
    """
    return [
        [ops.operations[j].arg0 for j in warp_ops],
        [ops.operations[j].arg1 for j in warp_ops],
        [ops.dest_slot(j) for j in warp_ops],
    ]


def step_transactions(slots: Sequence[int], bank_of: Sequence[int]) -> int:
    """Shared-memory transactions one access step costs under ``bank_of``.

    Accesses mapping to the same bank serialize, so a step costs as many
    transactions as its most-loaded bank; a conflict-free step costs one.
    """
    counts: Dict[int, int] = defaultdict(int)
    for slot in slots:
        counts[bank_of[slot]] += 1
    return max(counts.values())


def _warp_accesses(
    ops: OperationList, n_threads: int, warp_size: int
) -> Iterable[List[int]]:
    """Yield the groups of slots accessed together by one warp in one step.

    Operation ``j`` of a dependence group runs on thread ``j % n_threads``
    during wave ``j // n_threads`` (the schedule of Algorithm 3).  Each
    (group, wave, warp) contributes its three :func:`warp_access_steps`.
    """
    for group in ops.groups():
        n_waves = (len(group) + n_threads - 1) // n_threads
        for wave in range(n_waves):
            active = group[wave * n_threads : (wave + 1) * n_threads]
            for warp_start in range(0, len(active), warp_size):
                warp_ops = active[warp_start : warp_start + warp_size]
                if not warp_ops:
                    continue
                yield from warp_access_steps(ops, warp_ops)


def conflict_graph(
    ops: OperationList, n_threads: int, warp_size: int = 32
) -> Dict[int, Set[int]]:
    """Build the slot conflict graph used by the coloring allocator.

    Two slots are connected when some warp accesses both in the same step, so
    giving them different banks removes that serialization.
    """
    graph: Dict[int, Set[int]] = defaultdict(set)
    for access in _warp_accesses(ops, n_threads, warp_size):
        unique = sorted(set(access))
        for i, a in enumerate(unique):
            graph.setdefault(a, set())
            for b in unique[i + 1 :]:
                graph[a].add(b)
                graph[b].add(a)
    return dict(graph)


def color_banks(
    graph: Dict[int, Set[int]], n_slots: int, n_banks: int
) -> List[int]:
    """Greedy graph coloring with ``n_banks`` colors, largest degree first.

    When all ``n_banks`` colors are already used by neighbours (the graph is
    not ``n_banks``-colorable), the least-used color among the neighbours is
    chosen, which spreads the remaining conflicts evenly.
    """
    if n_banks < 1:
        raise ValueError("n_banks must be >= 1")
    assignment = [-1] * n_slots
    order = sorted(graph, key=lambda s: len(graph[s]), reverse=True)
    usage = [0] * n_banks
    for slot in order:
        neighbour_colors = defaultdict(int)
        for other in graph[slot]:
            if assignment[other] >= 0:
                neighbour_colors[assignment[other]] += 1
        free = [c for c in range(n_banks) if c not in neighbour_colors]
        if free:
            # Among the free colors pick the globally least used one to keep
            # the banks balanced.
            color = min(free, key=lambda c: usage[c])
        else:
            color = min(range(n_banks), key=lambda c: (neighbour_colors[c], usage[c]))
        assignment[slot] = color
        usage[color] += 1
    # Slots never touched by any warp (for example the final result before it
    # is copied out) are placed round-robin.
    next_bank = 0
    for slot in range(n_slots):
        if assignment[slot] < 0:
            assignment[slot] = next_bank % n_banks
            next_bank += 1
    return assignment


def graph_coloring_allocation(
    ops: OperationList, n_threads: int, n_banks: int, warp_size: int = 32
) -> List[int]:
    """Full pipeline: conflict graph construction followed by greedy coloring."""
    graph = conflict_graph(ops, n_threads, warp_size)
    return color_banks(graph, ops.n_slots, n_banks)


def count_warp_conflicts(
    ops: OperationList,
    bank_of: Sequence[int],
    n_threads: int,
    n_banks: int,
    warp_size: int = 32,
) -> Tuple[int, int]:
    """Count shared-memory transactions for a given bank allocation.

    Returns ``(n_transactions, n_accesses)``: every warp access step costs as
    many transactions as the most-loaded bank within that step, so a
    conflict-free step costs one transaction.  ``n_accesses`` is the number of
    access steps (the lower bound on transactions).
    """
    n_transactions = 0
    n_accesses = 0
    for access in _warp_accesses(ops, n_threads, warp_size):
        n_transactions += step_transactions(access, bank_of)
        n_accesses += 1
    return n_transactions, n_accesses
