"""Client APIs for the inference server: sync, ``asyncio`` and routing.

Three layers, each a thin veneer over :meth:`InferenceServer.submit`:

* :class:`InferenceClient` — synchronous per-query calls.  The verbs cover
  all ten typed kinds (``likelihood`` / ``log_likelihood`` / ``marginal``
  / ``conditional`` / ``mpe`` plus the analysis verbs ``sample`` /
  ``expectation`` / ``entropy`` / ``mutual_information`` / ``classify``);
  scalar in, scalar out, with the batching happening server-side.
  ``submit`` also accepts a typed :class:`repro.api.Query` object or its
  serialized payload directly.
* :class:`AsyncInferenceClient` — the same surface as coroutines, for
  ``asyncio`` applications.  Thousands of concurrent ``await`` s naturally
  fill the server's micro-batches (see ``examples/sensor_health_monitoring.py``).
* :class:`ModelRouter` — multi-model routing keyed by suite registry name:
  maps each model name to the server hosting it, so a deployment can shard
  models across servers while clients keep a single entry point.

Kinds are :class:`repro.api.QueryKind` values (``str``-enum members — the
historical raw strings still work, but unknown kinds fail at construction).

Both clients speak the resilience vocabulary of
:mod:`repro.serving.resilience`: a ``retry`` policy (jittered exponential
backoff over the typed retryable errors, bounded by a shared
:class:`~repro.serving.resilience.RetryBudget`), a per-model circuit
``breaker`` (:class:`~repro.serving.resilience.BreakerPolicy`), and a
per-call ``deadline_s`` that rides the request into the server (rows past
their deadline are dropped before execution) and bounds every client-side
wait.  All three are opt-in; an unconfigured client behaves exactly as
before.  Retries count ``serving_retries_total`` and breaker transitions
set the ``serving_breaker_state`` gauge, both on the server's metrics
registry.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ..api.queries import (
    Classify,
    Conditional,
    Entropy,
    Expectation,
    Marginal,
    MutualInformation,
    Query,
    QueryKind,
    Sample,
)
from ..observability import metrics_enabled
from .queue import BatchingPolicy
from .resilience import (
    BREAKER_STATES,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    RetryBudget,
    RetryPolicy,
    is_retryable,
)
from .server import (
    KIND_LIKELIHOOD,
    KIND_LOG_LIKELIHOOD,
    KIND_MPE,
    InferenceServer,
    UnknownModelError,
)

__all__ = ["AsyncInferenceClient", "InferenceClient", "ModelRouter"]

Evidence = Union[Query, Mapping[int, int], Sequence, np.ndarray]

#: Extra seconds a deadline-bounded result wait allows past the deadline:
#: the worker's own typed DeadlineExceededError normally arrives within
#: this grace, so the client backstop (which can only say "timed out")
#: stays the exception, not the rule.
_RESULT_GRACE_S = 5.0


def _deadline_kwargs(remaining: Optional[float]) -> Dict[str, float]:
    """``deadline_s=remaining`` as kwargs, omitted entirely when unset.

    Omission (rather than an explicit ``deadline_s=None``) keeps the
    clients compatible with ``submit`` wrappers and test doubles written
    against the pre-deadline signature.
    """
    return {} if remaining is None else {"deadline_s": remaining}


class InferenceClient:
    """Synchronous client bound to one server (and optionally one model).

    ``retry`` (a :class:`~repro.serving.resilience.RetryPolicy`) makes the
    blocking verbs transparently retry typed-retryable failures — load
    shedding, backpressure timeouts, worker crashes, transient executor
    faults, open breakers — with seeded jittered backoff.  ``retry_budget``
    bounds the extra traffic retrying may generate (defaults to a fresh
    :class:`~repro.serving.resilience.RetryBudget` when ``retry`` is set);
    an exhausted budget re-raises the original error.  ``breaker`` (a
    :class:`~repro.serving.resilience.BreakerPolicy`) maintains one
    circuit breaker per model: after ``failure_threshold`` consecutive
    failures the model's calls fail fast with
    :class:`~repro.serving.resilience.CircuitOpenError` until a cooldown
    probe succeeds.  :meth:`submit` stays the raw primitive — no retry,
    no breaker — for callers that manage futures themselves.
    """

    def __init__(
        self,
        server: InferenceServer,
        model: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
        breaker: Optional[BreakerPolicy] = None,
    ):
        self._server = server
        self._model = model
        self._retry = retry
        if retry_budget is None and retry is not None:
            retry_budget = RetryBudget()
        self._budget = retry_budget
        self._breaker_policy = breaker
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()

    def _resolve(self, model: Optional[str]) -> str:
        name = model or self._model
        if name is None:
            raise ValueError("no model given and the client has no default model")
        return name

    # Resilience core ---------------------------------------------------- #
    def _breaker_for(self, name: str) -> Optional[CircuitBreaker]:
        """The (lazily created) circuit breaker guarding ``name``."""
        if self._breaker_policy is None:
            return None
        with self._breakers_lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                gauge = self._server.metrics.registry.gauge(
                    "serving_breaker_state", model=name
                )
                breaker = CircuitBreaker(
                    failure_threshold=self._breaker_policy.failure_threshold,
                    reset_timeout_s=self._breaker_policy.reset_timeout_s,
                    on_state_change=lambda state: gauge.set(BREAKER_STATES[state]),
                )
                self._breakers[name] = breaker
        return breaker

    def _count_retry(self) -> None:
        if metrics_enabled():
            self._server.metrics.registry.counter("serving_retries_total").inc()

    def _should_retry(
        self, exc: BaseException, attempt: int, deadline_at: Optional[float]
    ) -> bool:
        """Whether attempt ``attempt`` may be followed by another."""
        if self._retry is None or attempt >= self._retry.max_attempts:
            return False
        if not is_retryable(exc):
            return False
        if deadline_at is not None and time.monotonic() >= deadline_at:
            return False
        if self._budget is not None and not self._budget.allow_retry():
            return False
        return True

    def _attempt(
        self,
        submit_fn: Callable[[Optional[float]], Future],
        breaker: Optional[CircuitBreaker],
        deadline_at: Optional[float],
        deadline_s: Optional[float],
    ):
        """One submit-and-wait attempt, reported to the breaker."""
        if breaker is not None:
            breaker.admit()
        try:
            remaining = None
            if deadline_at is not None:
                remaining = max(0.0, deadline_at - time.monotonic())
                if remaining <= 0.0:
                    raise DeadlineExceededError(
                        f"client deadline ({deadline_s}s) expired before the attempt"
                    )
            future = submit_fn(remaining)
            wait = None if remaining is None else remaining + _RESULT_GRACE_S
            try:
                result = future.result(timeout=wait)
            except DeadlineExceededError:
                raise  # the server's own typed deadline failure
            except FuturesTimeoutError as exc:
                future.cancel()
                raise DeadlineExceededError(
                    f"no result within the client deadline ({deadline_s}s)"
                ) from exc
        except BaseException as exc:
            if breaker is not None and not isinstance(exc, CircuitOpenError):
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def _call(
        self,
        name: str,
        submit_fn: Callable[[Optional[float]], Future],
        deadline_s: Optional[float],
    ):
        """Run one logical request through breaker, retries and budget.

        ``submit_fn(remaining_deadline_s)`` performs one admission; it is
        handed the deadline budget left at each attempt (``None`` when the
        call has no deadline) so the server-side deadline always matches
        what the caller has left, not what they started with.
        """
        breaker = self._breaker_for(name)
        deadline_at = (
            None if deadline_s is None else time.monotonic() + float(deadline_s)
        )
        delays = None if self._retry is None else self._retry.delays()
        if self._budget is not None:
            self._budget.record_request()
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._attempt(submit_fn, breaker, deadline_at, deadline_s)
            except BaseException as exc:
                if not self._should_retry(exc, attempt, deadline_at):
                    raise
                self._count_retry()
                delay = delays.next_delay()
                if deadline_at is not None:
                    delay = min(delay, max(0.0, deadline_at - time.monotonic()))
                if delay > 0.0:
                    time.sleep(delay)

    def _request(self, evidence, kind, model, timeout, deadline_s):
        """Resolve the model and run one resilient blocking request."""
        name = self._resolve(model)
        return self._call(
            name,
            lambda remaining: self._server.submit(
                name, evidence, kind=kind, timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            deadline_s,
        )

    def live_version(self, model: Optional[str] = None) -> Optional[str]:
        """The version of the (default) model currently taking traffic."""
        return self._server.live_version(self._resolve(model))

    def server_stats(self) -> Dict[str, object]:
        """The server's ``stats`` control payload (JSON-serializable).

        Hosted models with live versions, instantaneous queue depth, the
        :class:`~repro.serving.metrics.ServingMetrics` snapshot and the
        server's full metrics-registry snapshot — see
        :meth:`repro.serving.server.InferenceServer.stats`.
        """
        return self._server.control("stats")

    def submit(
        self,
        evidence: Evidence,
        kind: Union[str, QueryKind, None] = None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Enqueue a query and return its future (the non-blocking primitive).

        ``evidence`` may be a typed :class:`repro.api.Query` (or its
        serialized payload), which carries its own kind — an explicitly
        passed ``kind`` that disagrees with it is rejected at admission
        (the named verbs rely on this: ``likelihood(LogLikelihood(...))``
        raises instead of silently serving log-domain values).  For plain
        evidence, ``kind=None`` defaults to ``log_likelihood``.
        ``timeout`` bounds the backpressure wait against a full admission
        queue (:class:`~repro.serving.queue.QueueFullError` on expiry) —
        the load-shedding knob under overload; ``deadline_s`` gives the
        request a server-side deadline.  This primitive never retries and
        never consults the breaker — the blocking verbs do.
        """
        return self._server.submit(
            self._resolve(model),
            evidence,
            kind=kind,
            timeout=timeout,
            deadline_s=deadline_s,
        )

    def query(
        self,
        evidence: Evidence,
        kind: Union[str, QueryKind, None] = None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        """Submit and wait.  Single-row queries unwrap to a scalar result."""
        result = self._request(evidence, kind, model, timeout, deadline_s)
        return _unwrap(evidence, result)

    # Convenience verbs -------------------------------------------------- #
    def likelihood(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return self.query(
            evidence,
            kind=KIND_LIKELIHOOD,
            model=model,
            timeout=timeout,
            deadline_s=deadline_s,
        )

    def log_likelihood(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return self.query(
            evidence,
            kind=KIND_LOG_LIKELIHOOD,
            model=model,
            timeout=timeout,
            deadline_s=deadline_s,
        )

    def marginal(
        self,
        evidence: Evidence,
        log: bool = False,
        normalize: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        """(Log-)marginal probability of the evidence, optionally / Z."""
        result = self._request(
            Marginal(evidence, log=log, normalize=normalize),
            None,
            model,
            timeout,
            deadline_s,
        )
        return _unwrap(evidence, result)

    def conditional(
        self,
        query: Evidence,
        evidence: Evidence,
        log: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        """Batched conditional P(query | evidence), served in the log domain.

        Unwraps to a scalar only when *both* assignments are scalar-formed
        (a mapping or a single row) — a 2-D batch on either side keeps the
        vector shape.
        """
        result = self._request(
            Conditional(evidence=evidence, query=query, log=log),
            None,
            model,
            timeout,
            deadline_s,
        )
        return result[0] if _is_scalar(query) and _is_scalar(evidence) else result

    def mpe(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return self.query(
            evidence, kind=KIND_MPE, model=model, timeout=timeout, deadline_s=deadline_s
        )

    def sample(
        self,
        evidence: Evidence,
        n_samples: int = 1,
        seed: int = 0,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        """Seeded conditional samples; a scalar query unwraps to
        ``(n_samples, n_vars)``."""
        result = self._request(
            Sample(evidence, n_samples=n_samples, seed=seed),
            None,
            model,
            timeout,
            deadline_s,
        )
        return _unwrap(evidence, result)

    def expectation(
        self,
        evidence: Evidence,
        variables=None,
        moment: int = 1,
        center: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        """Conditional moments per variable under the evidence."""
        result = self._request(
            Expectation(evidence, variables=variables, moment=moment, center=center),
            None,
            model,
            timeout,
            deadline_s,
        )
        return _unwrap(evidence, result)

    def entropy(
        self,
        evidence: Evidence,
        variables=None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        """Per-variable conditional entropy (nats) under the evidence."""
        result = self._request(
            Entropy(evidence, variables=variables), None, model, timeout, deadline_s
        )
        return _unwrap(evidence, result)

    def mutual_information(
        self,
        evidence: Optional[Evidence] = None,
        variables=None,
        normalize: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        """Pairwise (normalized) MI matrix; ``evidence=None`` = unconditional."""
        result = self._request(
            MutualInformation(evidence, variables=variables, normalize=normalize),
            None,
            model,
            timeout,
            deadline_s,
        )
        return result[0] if evidence is None or _is_scalar(evidence) else result

    def classify(
        self,
        evidence: Evidence,
        target: int,
        log: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        """Posterior over the target's states; scalar in, ``(n_states,)`` out."""
        result = self._request(
            Classify(evidence, target=target, log=log),
            None,
            model,
            timeout,
            deadline_s,
        )
        return _unwrap(evidence, result)


class AsyncInferenceClient:
    """``asyncio`` client: the same surface as :class:`InferenceClient`, awaited.

    Admission (which may block on backpressure) runs in the default
    executor, and the server-side :class:`~concurrent.futures.Future` is
    bridged with :func:`asyncio.wrap_future`, so the event loop is never
    blocked — concurrent tasks pile their rows into shared micro-batches.

    ``retry`` / ``retry_budget`` / ``breaker`` mirror
    :class:`InferenceClient` (the breakers and budget are shared with the
    underlying sync client, so mixed sync/async use of one deployment sees
    one consistent breaker state per model); retry backoff awaits
    ``asyncio.sleep`` and a task cancellation always propagates untouched.
    """

    def __init__(
        self,
        server: InferenceServer,
        model: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
        breaker: Optional[BreakerPolicy] = None,
    ):
        self._sync = InferenceClient(
            server, model, retry=retry, retry_budget=retry_budget, breaker=breaker
        )

    async def _submit(self, submit_fn, unwrap, model=None, deadline_s=None):
        """One resilient async request.

        ``submit_fn(remaining_deadline_s)`` performs one admission (in the
        executor — it may block on backpressure).  The wait for the
        result is bounded by the remaining deadline plus the same grace
        the sync client uses; retryable failures back off with
        ``asyncio.sleep`` under the shared policy, budget and per-model
        breaker.
        """
        sync = self._sync
        name = sync._resolve(model)
        breaker = sync._breaker_for(name)
        deadline_at = (
            None if deadline_s is None else time.monotonic() + float(deadline_s)
        )
        delays = None if sync._retry is None else sync._retry.delays()
        if sync._budget is not None:
            sync._budget.record_request()
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            attempt += 1
            try:
                if breaker is not None:
                    breaker.admit()
                try:
                    remaining = None
                    if deadline_at is not None:
                        remaining = max(0.0, deadline_at - time.monotonic())
                        if remaining <= 0.0:
                            raise DeadlineExceededError(
                                f"client deadline ({deadline_s}s) expired before "
                                f"the attempt"
                            )
                    future = await loop.run_in_executor(None, submit_fn, remaining)
                    bridged = asyncio.wrap_future(future)
                    if remaining is None:
                        result = await bridged
                    else:
                        try:
                            result = await asyncio.wait_for(
                                bridged, timeout=remaining + _RESULT_GRACE_S
                            )
                        except asyncio.TimeoutError as exc:
                            raise DeadlineExceededError(
                                f"no result within the client deadline "
                                f"({deadline_s}s)"
                            ) from exc
                except asyncio.CancelledError:
                    raise  # task cancellation is not a service failure
                except BaseException as exc:
                    if breaker is not None and not isinstance(exc, CircuitOpenError):
                        breaker.record_failure()
                    raise
                if breaker is not None:
                    breaker.record_success()
                return unwrap(result)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                if not sync._should_retry(exc, attempt, deadline_at):
                    raise
                sync._count_retry()
                delay = delays.next_delay()
                if deadline_at is not None:
                    delay = min(delay, max(0.0, deadline_at - time.monotonic()))
                if delay > 0.0:
                    await asyncio.sleep(delay)

    async def server_stats(self) -> Dict[str, object]:
        """Awaitable :meth:`InferenceClient.server_stats` (runs in the executor)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._sync.server_stats)

    async def query(
        self,
        evidence: Evidence,
        kind: Union[str, QueryKind, None] = None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self._submit(
            lambda remaining: self._sync.submit(
                evidence, kind=kind, model=model, timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            lambda result: _unwrap(evidence, result),
            model=model,
            deadline_s=deadline_s,
        )

    async def likelihood(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self.query(
            evidence,
            kind=KIND_LIKELIHOOD,
            model=model,
            timeout=timeout,
            deadline_s=deadline_s,
        )

    async def log_likelihood(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self.query(
            evidence,
            kind=KIND_LOG_LIKELIHOOD,
            model=model,
            timeout=timeout,
            deadline_s=deadline_s,
        )

    async def marginal(
        self,
        evidence: Evidence,
        log: bool = False,
        normalize: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self._submit(
            lambda remaining: self._sync.submit(
                Marginal(evidence, log=log, normalize=normalize),
                model=model,
                timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            lambda result: _unwrap(evidence, result),
            model=model,
            deadline_s=deadline_s,
        )

    async def conditional(
        self,
        query: Evidence,
        evidence: Evidence,
        log: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        scalar = _is_scalar(query) and _is_scalar(evidence)
        return await self._submit(
            lambda remaining: self._sync.submit(
                Conditional(evidence=evidence, query=query, log=log),
                model=model,
                timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            lambda result: result[0] if scalar else result,
            model=model,
            deadline_s=deadline_s,
        )

    async def mpe(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self.query(
            evidence, kind=KIND_MPE, model=model, timeout=timeout, deadline_s=deadline_s
        )

    async def sample(
        self,
        evidence: Evidence,
        n_samples: int = 1,
        seed: int = 0,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self._submit(
            lambda remaining: self._sync.submit(
                Sample(evidence, n_samples=n_samples, seed=seed),
                model=model,
                timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            lambda result: _unwrap(evidence, result),
            model=model,
            deadline_s=deadline_s,
        )

    async def expectation(
        self,
        evidence: Evidence,
        variables=None,
        moment: int = 1,
        center: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self._submit(
            lambda remaining: self._sync.submit(
                Expectation(
                    evidence, variables=variables, moment=moment, center=center
                ),
                model=model,
                timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            lambda result: _unwrap(evidence, result),
            model=model,
            deadline_s=deadline_s,
        )

    async def entropy(
        self,
        evidence: Evidence,
        variables=None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self._submit(
            lambda remaining: self._sync.submit(
                Entropy(evidence, variables=variables),
                model=model,
                timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            lambda result: _unwrap(evidence, result),
            model=model,
            deadline_s=deadline_s,
        )

    async def mutual_information(
        self,
        evidence: Optional[Evidence] = None,
        variables=None,
        normalize: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        scalar = evidence is None or _is_scalar(evidence)
        return await self._submit(
            lambda remaining: self._sync.submit(
                MutualInformation(
                    evidence, variables=variables, normalize=normalize
                ),
                model=model,
                timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            lambda result: result[0] if scalar else result,
            model=model,
            deadline_s=deadline_s,
        )

    async def classify(
        self,
        evidence: Evidence,
        target: int,
        log: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        return await self._submit(
            lambda remaining: self._sync.submit(
                Classify(evidence, target=target, log=log),
                model=model,
                timeout=timeout,
                **_deadline_kwargs(remaining),
            ),
            lambda result: _unwrap(evidence, result),
            model=model,
            deadline_s=deadline_s,
        )


class ModelRouter:
    """Routes queries to the server hosting each model.

    ``routes`` maps model names to servers; queries for unlisted models fall
    back to ``default`` (when given).  :meth:`for_suite` is the one-call
    deployment of suite benchmarks onto a single shared server.
    """

    def __init__(
        self,
        routes: Optional[Mapping[str, InferenceServer]] = None,
        default: Optional[InferenceServer] = None,
    ):
        self._routes: Dict[str, InferenceServer] = dict(routes or {})
        self._default = default

    @classmethod
    def for_suite(
        cls,
        names: Optional[Iterable[str]] = None,
        policy: Optional[BatchingPolicy] = None,
        **server_kwargs,
    ) -> "ModelRouter":
        """Host suite benchmarks on one started server and route to it.

        ``names`` defaults to every registered suite benchmark.  The caller
        owns shutdown: ``router.servers()[0].stop()`` (or iterate
        :meth:`servers`).
        """
        from ..suite.registry import benchmark_names

        names = list(names) if names is not None else benchmark_names()
        server = InferenceServer(models=names, policy=policy, **server_kwargs).start()
        return cls(routes={name: server for name in names}, default=server)

    def add_route(self, model: str, server: InferenceServer) -> None:
        self._routes[model] = server

    def route(self, model: str) -> InferenceServer:
        """The server hosting ``model`` (raises :class:`UnknownModelError`)."""
        server = self._routes.get(model, self._default)
        if server is None:
            known = ", ".join(sorted(self._routes)) or "none"
            raise UnknownModelError(f"no route for model {model!r}; routed models: {known}")
        return server

    def models(self) -> list:
        """Explicitly routed model names, sorted."""
        return sorted(self._routes)

    def servers(self) -> list:
        """The distinct servers behind this router."""
        seen: list = []
        for server in [*self._routes.values(), self._default]:
            if server is not None and not any(server is s for s in seen):
                seen.append(server)
        return seen

    def client(self, model: str) -> InferenceClient:
        return InferenceClient(self.route(model), model)

    def async_client(self, model: str) -> AsyncInferenceClient:
        return AsyncInferenceClient(self.route(model), model)

    def query(
        self,
        model: str,
        evidence: Evidence,
        kind: Union[str, QueryKind, None] = None,
        timeout: Optional[float] = None,
    ):
        return self.client(model).query(evidence, kind=kind, timeout=timeout)

    def publish(self, model: str, version: str, candidate, validate: bool = True):
        """Publish a new version of ``model`` on the server hosting it.

        Routes to the same server queries for ``model`` go to, then defers
        to :meth:`repro.serving.server.InferenceServer.publish` — shadow
        validation, atomic hot-swap and the in-flight drain guarantee are
        the server's.  Returns its
        :class:`~repro.lifecycle.registry.PublishReport`.
        """
        return self.route(model).publish(model, version, candidate, validate=validate)

    def stop(self) -> None:
        """Stop (drain) every server behind this router."""
        for server in self.servers():
            server.stop()


def _is_scalar(evidence: Evidence) -> bool:
    """True when an assignment is scalar-formed: a mapping or a single row."""
    if isinstance(evidence, Query):
        return False
    if isinstance(evidence, Mapping):
        return "kind" not in evidence  # payloads are batch-first
    return np.asarray(evidence).ndim == 1


def _unwrap(evidence: Evidence, result):
    """Collapse a one-row result to its scalar when the query was scalar.

    A mapping or a single evidence row is a scalar query; a typed
    :class:`~repro.api.queries.Query` object, a serialized payload or a
    2-D batch keeps its vector shape (the typed path is batch-first).
    """
    return result[0] if _is_scalar(evidence) else result
