"""Client APIs for the inference server: sync, ``asyncio`` and routing.

Three layers, each a thin veneer over :meth:`InferenceServer.submit`:

* :class:`InferenceClient` — synchronous per-query calls.  The verbs cover
  all ten typed kinds (``likelihood`` / ``log_likelihood`` / ``marginal``
  / ``conditional`` / ``mpe`` plus the analysis verbs ``sample`` /
  ``expectation`` / ``entropy`` / ``mutual_information`` / ``classify``);
  scalar in, scalar out, with the batching happening server-side.
  ``submit`` also accepts a typed :class:`repro.api.Query` object or its
  serialized payload directly.
* :class:`AsyncInferenceClient` — the same surface as coroutines, for
  ``asyncio`` applications.  Thousands of concurrent ``await`` s naturally
  fill the server's micro-batches (see ``examples/sensor_health_monitoring.py``).
* :class:`ModelRouter` — multi-model routing keyed by suite registry name:
  maps each model name to the server hosting it, so a deployment can shard
  models across servers while clients keep a single entry point.

Kinds are :class:`repro.api.QueryKind` values (``str``-enum members — the
historical raw strings still work, but unknown kinds fail at construction).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ..api.queries import (
    Classify,
    Conditional,
    Entropy,
    Expectation,
    Marginal,
    MutualInformation,
    Query,
    QueryKind,
    Sample,
)
from .queue import BatchingPolicy
from .server import (
    KIND_LIKELIHOOD,
    KIND_LOG_LIKELIHOOD,
    KIND_MPE,
    InferenceServer,
    UnknownModelError,
)

__all__ = ["AsyncInferenceClient", "InferenceClient", "ModelRouter"]

Evidence = Union[Query, Mapping[int, int], Sequence, np.ndarray]


class InferenceClient:
    """Synchronous client bound to one server (and optionally one model)."""

    def __init__(self, server: InferenceServer, model: Optional[str] = None):
        self._server = server
        self._model = model

    def _resolve(self, model: Optional[str]) -> str:
        name = model or self._model
        if name is None:
            raise ValueError("no model given and the client has no default model")
        return name

    def live_version(self, model: Optional[str] = None) -> Optional[str]:
        """The version of the (default) model currently taking traffic."""
        return self._server.live_version(self._resolve(model))

    def server_stats(self) -> Dict[str, object]:
        """The server's ``stats`` control payload (JSON-serializable).

        Hosted models with live versions, instantaneous queue depth, the
        :class:`~repro.serving.metrics.ServingMetrics` snapshot and the
        server's full metrics-registry snapshot — see
        :meth:`repro.serving.server.InferenceServer.stats`.
        """
        return self._server.control("stats")

    def submit(
        self,
        evidence: Evidence,
        kind: Union[str, QueryKind, None] = None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Future:
        """Enqueue a query and return its future (the non-blocking primitive).

        ``evidence`` may be a typed :class:`repro.api.Query` (or its
        serialized payload), which carries its own kind — an explicitly
        passed ``kind`` that disagrees with it is rejected at admission
        (the named verbs rely on this: ``likelihood(LogLikelihood(...))``
        raises instead of silently serving log-domain values).  For plain
        evidence, ``kind=None`` defaults to ``log_likelihood``.
        ``timeout`` bounds the backpressure wait against a full admission
        queue (:class:`~repro.serving.queue.QueueFullError` on expiry) —
        the load-shedding knob under overload.
        """
        return self._server.submit(
            self._resolve(model), evidence, kind=kind, timeout=timeout
        )

    def query(
        self,
        evidence: Evidence,
        kind: Union[str, QueryKind, None] = None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Submit and wait.  Single-row queries unwrap to a scalar result."""
        result = self.submit(evidence, kind=kind, model=model, timeout=timeout).result()
        return _unwrap(evidence, result)

    # Convenience verbs -------------------------------------------------- #
    def likelihood(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return self.query(evidence, kind=KIND_LIKELIHOOD, model=model, timeout=timeout)

    def log_likelihood(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return self.query(
            evidence, kind=KIND_LOG_LIKELIHOOD, model=model, timeout=timeout
        )

    def marginal(
        self,
        evidence: Evidence,
        log: bool = False,
        normalize: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """(Log-)marginal probability of the evidence, optionally / Z."""
        result = self.submit(
            Marginal(evidence, log=log, normalize=normalize),
            model=model,
            timeout=timeout,
        ).result()
        return _unwrap(evidence, result)

    def conditional(
        self,
        query: Evidence,
        evidence: Evidence,
        log: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Batched conditional P(query | evidence), served in the log domain.

        Unwraps to a scalar only when *both* assignments are scalar-formed
        (a mapping or a single row) — a 2-D batch on either side keeps the
        vector shape.
        """
        result = self.submit(
            Conditional(evidence=evidence, query=query, log=log),
            model=model,
            timeout=timeout,
        ).result()
        return result[0] if _is_scalar(query) and _is_scalar(evidence) else result

    def mpe(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return self.query(evidence, kind=KIND_MPE, model=model, timeout=timeout)

    def sample(
        self,
        evidence: Evidence,
        n_samples: int = 1,
        seed: int = 0,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Seeded conditional samples; a scalar query unwraps to
        ``(n_samples, n_vars)``."""
        result = self.submit(
            Sample(evidence, n_samples=n_samples, seed=seed),
            model=model,
            timeout=timeout,
        ).result()
        return _unwrap(evidence, result)

    def expectation(
        self,
        evidence: Evidence,
        variables=None,
        moment: int = 1,
        center: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Conditional moments per variable under the evidence."""
        result = self.submit(
            Expectation(evidence, variables=variables, moment=moment, center=center),
            model=model,
            timeout=timeout,
        ).result()
        return _unwrap(evidence, result)

    def entropy(
        self,
        evidence: Evidence,
        variables=None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Per-variable conditional entropy (nats) under the evidence."""
        result = self.submit(
            Entropy(evidence, variables=variables), model=model, timeout=timeout
        ).result()
        return _unwrap(evidence, result)

    def mutual_information(
        self,
        evidence: Optional[Evidence] = None,
        variables=None,
        normalize: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Pairwise (normalized) MI matrix; ``evidence=None`` = unconditional."""
        result = self.submit(
            MutualInformation(evidence, variables=variables, normalize=normalize),
            model=model,
            timeout=timeout,
        ).result()
        return result[0] if evidence is None or _is_scalar(evidence) else result

    def classify(
        self,
        evidence: Evidence,
        target: int,
        log: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Posterior over the target's states; scalar in, ``(n_states,)`` out."""
        result = self.submit(
            Classify(evidence, target=target, log=log), model=model, timeout=timeout
        ).result()
        return _unwrap(evidence, result)


class AsyncInferenceClient:
    """``asyncio`` client: the same surface as :class:`InferenceClient`, awaited.

    Admission (which may block on backpressure) runs in the default
    executor, and the server-side :class:`~concurrent.futures.Future` is
    bridged with :func:`asyncio.wrap_future`, so the event loop is never
    blocked — concurrent tasks pile their rows into shared micro-batches.
    """

    def __init__(self, server: InferenceServer, model: Optional[str] = None):
        self._sync = InferenceClient(server, model)

    async def _submit(self, submit_fn, unwrap):
        loop = asyncio.get_running_loop()
        future = await loop.run_in_executor(None, submit_fn)
        return unwrap(await asyncio.wrap_future(future))

    async def server_stats(self) -> Dict[str, object]:
        """Awaitable :meth:`InferenceClient.server_stats` (runs in the executor)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._sync.server_stats)

    async def query(
        self,
        evidence: Evidence,
        kind: Union[str, QueryKind, None] = None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self._submit(
            lambda: self._sync.submit(evidence, kind=kind, model=model, timeout=timeout),
            lambda result: _unwrap(evidence, result),
        )

    async def likelihood(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self.query(
            evidence, kind=KIND_LIKELIHOOD, model=model, timeout=timeout
        )

    async def log_likelihood(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self.query(
            evidence, kind=KIND_LOG_LIKELIHOOD, model=model, timeout=timeout
        )

    async def marginal(
        self,
        evidence: Evidence,
        log: bool = False,
        normalize: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self._submit(
            lambda: self._sync.submit(
                Marginal(evidence, log=log, normalize=normalize),
                model=model,
                timeout=timeout,
            ),
            lambda result: _unwrap(evidence, result),
        )

    async def conditional(
        self,
        query: Evidence,
        evidence: Evidence,
        log: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        scalar = _is_scalar(query) and _is_scalar(evidence)
        return await self._submit(
            lambda: self._sync.submit(
                Conditional(evidence=evidence, query=query, log=log),
                model=model,
                timeout=timeout,
            ),
            lambda result: result[0] if scalar else result,
        )

    async def mpe(
        self,
        evidence: Evidence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self.query(evidence, kind=KIND_MPE, model=model, timeout=timeout)

    async def sample(
        self,
        evidence: Evidence,
        n_samples: int = 1,
        seed: int = 0,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self._submit(
            lambda: self._sync.submit(
                Sample(evidence, n_samples=n_samples, seed=seed),
                model=model,
                timeout=timeout,
            ),
            lambda result: _unwrap(evidence, result),
        )

    async def expectation(
        self,
        evidence: Evidence,
        variables=None,
        moment: int = 1,
        center: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self._submit(
            lambda: self._sync.submit(
                Expectation(
                    evidence, variables=variables, moment=moment, center=center
                ),
                model=model,
                timeout=timeout,
            ),
            lambda result: _unwrap(evidence, result),
        )

    async def entropy(
        self,
        evidence: Evidence,
        variables=None,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self._submit(
            lambda: self._sync.submit(
                Entropy(evidence, variables=variables), model=model, timeout=timeout
            ),
            lambda result: _unwrap(evidence, result),
        )

    async def mutual_information(
        self,
        evidence: Optional[Evidence] = None,
        variables=None,
        normalize: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        scalar = evidence is None or _is_scalar(evidence)
        return await self._submit(
            lambda: self._sync.submit(
                MutualInformation(
                    evidence, variables=variables, normalize=normalize
                ),
                model=model,
                timeout=timeout,
            ),
            lambda result: result[0] if scalar else result,
        )

    async def classify(
        self,
        evidence: Evidence,
        target: int,
        log: bool = False,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        return await self._submit(
            lambda: self._sync.submit(
                Classify(evidence, target=target, log=log),
                model=model,
                timeout=timeout,
            ),
            lambda result: _unwrap(evidence, result),
        )


class ModelRouter:
    """Routes queries to the server hosting each model.

    ``routes`` maps model names to servers; queries for unlisted models fall
    back to ``default`` (when given).  :meth:`for_suite` is the one-call
    deployment of suite benchmarks onto a single shared server.
    """

    def __init__(
        self,
        routes: Optional[Mapping[str, InferenceServer]] = None,
        default: Optional[InferenceServer] = None,
    ):
        self._routes: Dict[str, InferenceServer] = dict(routes or {})
        self._default = default

    @classmethod
    def for_suite(
        cls,
        names: Optional[Iterable[str]] = None,
        policy: Optional[BatchingPolicy] = None,
        **server_kwargs,
    ) -> "ModelRouter":
        """Host suite benchmarks on one started server and route to it.

        ``names`` defaults to every registered suite benchmark.  The caller
        owns shutdown: ``router.servers()[0].stop()`` (or iterate
        :meth:`servers`).
        """
        from ..suite.registry import benchmark_names

        names = list(names) if names is not None else benchmark_names()
        server = InferenceServer(models=names, policy=policy, **server_kwargs).start()
        return cls(routes={name: server for name in names}, default=server)

    def add_route(self, model: str, server: InferenceServer) -> None:
        self._routes[model] = server

    def route(self, model: str) -> InferenceServer:
        """The server hosting ``model`` (raises :class:`UnknownModelError`)."""
        server = self._routes.get(model, self._default)
        if server is None:
            known = ", ".join(sorted(self._routes)) or "none"
            raise UnknownModelError(f"no route for model {model!r}; routed models: {known}")
        return server

    def models(self) -> list:
        """Explicitly routed model names, sorted."""
        return sorted(self._routes)

    def servers(self) -> list:
        """The distinct servers behind this router."""
        seen: list = []
        for server in [*self._routes.values(), self._default]:
            if server is not None and not any(server is s for s in seen):
                seen.append(server)
        return seen

    def client(self, model: str) -> InferenceClient:
        return InferenceClient(self.route(model), model)

    def async_client(self, model: str) -> AsyncInferenceClient:
        return AsyncInferenceClient(self.route(model), model)

    def query(
        self,
        model: str,
        evidence: Evidence,
        kind: Union[str, QueryKind, None] = None,
        timeout: Optional[float] = None,
    ):
        return self.client(model).query(evidence, kind=kind, timeout=timeout)

    def publish(self, model: str, version: str, candidate, validate: bool = True):
        """Publish a new version of ``model`` on the server hosting it.

        Routes to the same server queries for ``model`` go to, then defers
        to :meth:`repro.serving.server.InferenceServer.publish` — shadow
        validation, atomic hot-swap and the in-flight drain guarantee are
        the server's.  Returns its
        :class:`~repro.lifecycle.registry.PublishReport`.
        """
        return self.route(model).publish(model, version, candidate, validate=validate)

    def stop(self) -> None:
        """Stop (drain) every server behind this router."""
        for server in self.servers():
            server.stop()


def _is_scalar(evidence: Evidence) -> bool:
    """True when an assignment is scalar-formed: a mapping or a single row."""
    if isinstance(evidence, Query):
        return False
    if isinstance(evidence, Mapping):
        return "kind" not in evidence  # payloads are batch-first
    return np.asarray(evidence).ndim == 1


def _unwrap(evidence: Evidence, result):
    """Collapse a one-row result to its scalar when the query was scalar.

    A mapping or a single evidence row is a scalar query; a typed
    :class:`~repro.api.queries.Query` object, a serialized payload or a
    2-D batch keeps its vector shape (the typed path is batch-first).
    """
    return result[0] if _is_scalar(evidence) else result
