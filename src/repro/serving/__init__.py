"""Request-level inference serving with dynamic micro-batching.

The engines in this repository (the compiled NumPy tape above all) are
batch-oriented: evaluating 64 evidence rows costs barely more than
evaluating one.  This package turns that batch advantage into a *service*:
an :class:`InferenceServer` accepts individual likelihood / log-likelihood /
MPE queries, coalesces them into micro-batches under a max-batch-size /
max-wait policy (:class:`BatchingPolicy`), executes each batch through the
same engine entry points a direct caller would use — responses are
bit-identical to offline :func:`repro.spn.evaluate.evaluate_batch` calls —
and reports latency/throughput/occupancy telemetry (:class:`ServingMetrics`).

Quick tour::

    from repro.serving import InferenceClient, InferenceServer

    with InferenceServer(models=["Audio"]) as server:
        client = InferenceClient(server, model="Audio")
        score = client.log_likelihood({3: 1, 7: 0})

See ``docs/serving.md`` for the batching policy and its trade-off knobs,
``examples/sensor_health_monitoring.py`` for a streaming deployment, and
``benchmarks/test_bench_serving.py`` for the measured batching speedup
(the ``serving`` section of ``BENCH_sweeps.json``).
"""

from .client import AsyncInferenceClient, InferenceClient, ModelRouter
from .metrics import ServingMetrics
from .queue import (
    BatchingPolicy,
    MicroBatchQueue,
    QueueClosedError,
    QueueFullError,
    WorkItem,
)
from .server import (
    KIND_LIKELIHOOD,
    KIND_LOG_LIKELIHOOD,
    KIND_MPE,
    QUERY_KINDS,
    InferenceServer,
    ServedModel,
    ServerClosedError,
    UnknownModelError,
)

__all__ = [
    "AsyncInferenceClient",
    "InferenceClient",
    "ModelRouter",
    "ServingMetrics",
    "BatchingPolicy",
    "MicroBatchQueue",
    "QueueClosedError",
    "QueueFullError",
    "WorkItem",
    "KIND_LIKELIHOOD",
    "KIND_LOG_LIKELIHOOD",
    "KIND_MPE",
    "QUERY_KINDS",
    "InferenceServer",
    "ServedModel",
    "ServerClosedError",
    "UnknownModelError",
]
