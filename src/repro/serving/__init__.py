"""Request-level inference serving with dynamic micro-batching.

The engines in this repository (the compiled NumPy tape above all) are
batch-oriented: evaluating 64 evidence rows costs barely more than
evaluating one.  This package turns that batch advantage into a *service*:
an :class:`InferenceServer` accepts individual **typed queries** — all five
kinds of :mod:`repro.api` (likelihood, log-likelihood, marginal,
conditional, MPE), as objects or serialized payloads — coalesces them into
micro-batches under a max-batch-size / max-wait policy
(:class:`BatchingPolicy`), executes each group through the same
:meth:`repro.api.InferenceSession.run` a direct caller would use —
responses are bit-identical to offline session execution — and reports
latency/throughput/occupancy telemetry (:class:`ServingMetrics`, built on
the :mod:`repro.observability` metrics registry and exposed over the
serving API as the ``stats`` control request / ``client.server_stats()``).
With tracing enabled (:func:`repro.observability.configure`) every served
request leaves a span tree — admission, queue wait, batch assembly, tape
passes, response scatter — under one trace id, even when its rows scatter
across micro-batches; see ``docs/observability.md``.

Model hosting is **versioned** (:mod:`repro.lifecycle`): every hosted name
maps to a registry of installed versions with one live pointer.
``server.publish(name, version, artifact)`` shadow-validates a candidate
against the incumbent on the golden-evidence replay, then hot-swaps the
live pointer atomically — requests already admitted drain on the version
that admitted them — and ``server.rollback(name)`` re-points at an older
version without revalidation.  See ``docs/lifecycle.md``.

Quick tour::

    from repro.api import Conditional
    from repro.serving import InferenceClient, InferenceServer

    with InferenceServer(models=["Audio"]) as server:
        client = InferenceClient(server, model="Audio")
        score = client.log_likelihood({3: 1, 7: 0})
        prob = client.conditional({5: 1}, {3: 1})      # P(X5=1 | X3=1)
        batch = client.submit(Conditional(query=q_rows, evidence=e_rows))

Query kinds are the shared :class:`repro.api.QueryKind` enum (``str``
members, so the historical ``"likelihood"``-style strings keep working;
unknown kinds fail at admission).  See ``docs/queries.md`` for the query
taxonomy, ``docs/serving.md`` for the batching policy and its trade-off
knobs, ``examples/sensor_health_monitoring.py`` for a streaming deployment,
and ``benchmarks/test_bench_serving.py`` for the measured batching speedup
(the ``serving`` section of ``BENCH_sweeps.json``).

The serving tier is chaos-hardened (:mod:`repro.serving.resilience`,
``docs/robustness.md``): per-request **deadlines** (``deadline_s`` on
submit and every client verb — expired rows never reach the engine),
**load shedding** (``max_in_flight`` admission control, typed
:class:`SheddingError`), client-side **retries** with jittered backoff,
a retry budget and per-model **circuit breakers**
(:class:`RetryPolicy` / :class:`RetryBudget` / :class:`BreakerPolicy`),
and **self-healing workers** (crashed worker threads rescue their batch
and are restarted by a supervisor).  The deterministic fault-injection
plane that exercises all of it lives in :mod:`repro.faults`
(``python -m repro.faults soak``).
"""

from ..api.queries import QueryKind
from ..lifecycle.registry import PublishReport, ShadowValidationError
from .client import AsyncInferenceClient, InferenceClient, ModelRouter
from .metrics import ServingMetrics
from .queue import (
    BatchingPolicy,
    MicroBatchQueue,
    QueueClosedError,
    QueueFullError,
    WorkItem,
)
from .resilience import (
    BREAKER_STATES,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    ExecutorFaultError,
    RetryBudget,
    RetryPolicy,
    SheddingError,
    WorkerCrashError,
    is_retryable,
)
from .server import (
    KIND_CONDITIONAL,
    KIND_LIKELIHOOD,
    KIND_LOG_LIKELIHOOD,
    KIND_MARGINAL,
    KIND_MPE,
    QUERY_KINDS,
    InferenceServer,
    ServedModel,
    ServerClosedError,
    UnknownModelError,
)

__all__ = [
    "AsyncInferenceClient",
    "InferenceClient",
    "ModelRouter",
    "ServingMetrics",
    "BatchingPolicy",
    "MicroBatchQueue",
    "QueueClosedError",
    "QueueFullError",
    "WorkItem",
    "QueryKind",
    "KIND_LIKELIHOOD",
    "KIND_LOG_LIKELIHOOD",
    "KIND_MARGINAL",
    "KIND_CONDITIONAL",
    "KIND_MPE",
    "QUERY_KINDS",
    "InferenceServer",
    "ServedModel",
    "ServerClosedError",
    "UnknownModelError",
    "PublishReport",
    "ShadowValidationError",
    "BREAKER_STATES",
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ExecutorFaultError",
    "RetryBudget",
    "RetryPolicy",
    "SheddingError",
    "WorkerCrashError",
    "is_retryable",
]
