"""Admission queue with dynamic micro-batching (the serving layer's core).

A serving system receives *individual* queries but every engine in this
repository is fastest on *batches* (the compiled tape evaluates a whole
evidence batch with ``O(depth)`` NumPy calls regardless of the row count).
:class:`MicroBatchQueue` bridges the two: producers enqueue row-level
:class:`WorkItem`\\ s and a worker calling :meth:`MicroBatchQueue.get_batch`
receives them coalesced into micro-batches under a
max-batch-size / max-wait policy:

* a batch closes as soon as it holds :attr:`BatchingPolicy.max_batch_size`
  items (the throughput bound — one engine call per batch), or
* :attr:`BatchingPolicy.max_wait_s` after the batch's first item was taken
  (the latency bound — a lone request is never stalled longer than the wait
  window waiting for company).

Admission applies **backpressure**: the queue holds at most
:attr:`BatchingPolicy.max_queue_depth` items and :meth:`MicroBatchQueue.put`
blocks (or raises :class:`QueueFullError` when given a timeout) until space
frees up, so a burst of producers cannot grow memory without bound — they
are slowed down to the rate the workers drain.

Shutdown is graceful by construction: :meth:`MicroBatchQueue.close` stops
admission but lets consumers drain every already-admitted item;
:meth:`get_batch` returns ``None`` only once the queue is both closed and
empty.  :meth:`MicroBatchQueue.requeue` is the crash-rescue path: items a
dying worker hands back re-enter at the *front* of the queue, bypassing
the depth bound and the closed check — they were admitted once already,
so re-admission neither raises backpressure nor violates drain semantics.

The consumer side carries one fault site (``queue.stall``,
:mod:`repro.faults`): with a plan installed, a consumer may be delayed
before collecting its batch, which is how the chaos soak drives queue
depth up and trips admission backpressure on demand.  The site costs one
module-attribute read when no plan is installed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..faults.hooks import active_plan as _active_fault_plan

__all__ = [
    "BatchingPolicy",
    "MicroBatchQueue",
    "QueueClosedError",
    "QueueFullError",
    "WorkItem",
]


class QueueFullError(RuntimeError):
    """Raised when admission times out against a full queue (backpressure)."""


class QueueClosedError(RuntimeError):
    """Raised when putting into a queue that has been closed."""


@dataclass(frozen=True)
class BatchingPolicy:
    """The three knobs of the dynamic-batching trade-off.

    ``max_batch_size`` bounds work per engine call (larger batches amortize
    the per-call overhead further but delay every request in the batch until
    the batch executes); ``max_wait_s`` bounds how long a request may wait
    for co-batched company (the latency floor under light load);
    ``max_queue_depth`` bounds admitted-but-unserved items (the backpressure
    threshold).  See ``docs/serving.md`` for how to choose them.
    """

    max_batch_size: int = 64
    max_wait_s: float = 0.002
    max_queue_depth: int = 4096

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")


@dataclass
class WorkItem:
    """One query row awaiting execution.

    ``kind`` is the row's *group key* (:meth:`repro.api.Query.group_key`:
    the query kind plus every execution flag) — workers coalesce only rows
    with equal keys, so co-batching can never change a result.  ``row`` is
    the row payload (an evidence row; a stacked ``(query, evidence)`` row
    pair for conditionals).  ``request`` is the aggregate the row belongs
    to (see :class:`repro.serving.server._PendingRequest`); ``index`` is
    the row's position within that request, so multi-row requests
    reassemble their result vector no matter how the rows were scattered
    across micro-batches.  ``served`` is the
    :class:`~repro.serving.server.ServedModel` *pinned at admission*:
    workers execute the row on exactly this version's session and tape,
    so rows in flight across a hot-swap drain on the version that
    admitted them.

    ``trace`` is the admission-time
    :class:`~repro.observability.TraceContext` (or ``None`` when tracing
    is off).  Worker threads do not inherit the submitter's contextvars,
    so the context rides the item explicitly — it is what stitches a
    request's queue-wait and execute spans to the same trace id as its
    admission span, even when the request's rows scatter across
    micro-batches.  ``admitted_at`` (``time.perf_counter``) marks when the
    row entered the queue; workers subtract it from the dequeue instant to
    measure queue wait.

    ``deadline_at`` is the request's absolute deadline on the serving
    clock (``None`` = no deadline): workers drop the row — failing the
    request with :class:`~repro.serving.resilience.DeadlineExceededError`
    — when the deadline has passed before the row reaches execution.
    ``attempts`` counts crash rescues: each time a dying worker hands the
    item back via :meth:`MicroBatchQueue.requeue` it increments, and past
    the server's rescue limit the request fails with
    :class:`~repro.serving.resilience.WorkerCrashError` instead.
    """

    model: str
    kind: object
    row: object
    index: int
    request: object
    served: object = None
    trace: object = None
    admitted_at: float = 0.0
    deadline_at: Optional[float] = None
    attempts: int = 0


class MicroBatchQueue:
    """Thread-safe admission queue that hands out micro-batches.

    One condition variable guards a deque; producers block when the queue is
    at ``max_queue_depth`` and consumers block when it is empty.  Batches
    are formed on the consumer side (:meth:`get_batch`), which keeps the
    admission path a cheap append.
    """

    def __init__(
        self,
        policy: Optional[BatchingPolicy] = None,
        depth_gauge: Optional[object] = None,
    ) -> None:
        self.policy = policy or BatchingPolicy()
        #: Optional observability gauge tracking the instantaneous queue
        #: depth (a :class:`repro.observability.Gauge`); updated under the
        #: queue lock on every append/pop so the reading is exact.
        self._depth_gauge = depth_gauge
        self._items: Deque[WorkItem] = deque()
        # Two conditions on one lock (the queue.Queue pattern): producers
        # wait on not_full, consumers on not_empty, and each side issues a
        # targeted notify instead of waking every waiter per item.
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def put(self, item: WorkItem, timeout: Optional[float] = None) -> None:
        """Admit one item, blocking while the queue is full.

        With ``timeout`` set, waiting for space gives up after that many
        seconds and raises :class:`QueueFullError` (``timeout=0`` is a
        non-blocking try).  Raises :class:`QueueClosedError` once the queue
        has been closed.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._not_full:
            while True:
                if self._closed:
                    raise QueueClosedError("queue is closed to new work")
                if len(self._items) < self.policy.max_queue_depth:
                    break
                if deadline is None:
                    self._not_full.wait()
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._not_full.wait(remaining):
                        raise QueueFullError(
                            f"queue full ({self.policy.max_queue_depth} items) "
                            f"after waiting {timeout}s"
                        )
            self._items.append(item)
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._items))
            self._not_empty.notify()

    def put_many(self, items: List[WorkItem], timeout: Optional[float] = None) -> None:
        """Admit several items, applying backpressure item by item.

        A request larger than ``max_queue_depth`` is admitted incrementally
        as consumers drain the queue — it never deadlocks as long as workers
        are running, and never bypasses the depth bound.  ``timeout`` is one
        deadline for the whole call, not per item.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        for item in items:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.perf_counter())
            )
            self.put(item, timeout=remaining)

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def get_batch(self, timeout: Optional[float] = None) -> Optional[List[WorkItem]]:
        """Return the next micro-batch, or ``None`` when closed and drained.

        Blocks until at least one item is available (or ``timeout`` expires,
        returning an empty list).  Once a first item is taken, keeps
        collecting until the batch holds ``max_batch_size`` items or
        ``max_wait_s`` has elapsed since collection began — whichever comes
        first.  A closed queue flushes immediately: remaining items are
        handed out without waiting for the window.
        """
        plan = _active_fault_plan()
        if plan is not None:
            # ``queue.stall``: delay this consumer before it collects, so
            # queue depth builds and deadlines expire in-queue on demand.
            plan.maybe_delay("queue.stall")
        policy = self.policy
        with self._not_empty:
            deadline = None if timeout is None else time.perf_counter() + timeout
            while not self._items:
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        return []
            batch = [self._pop()]
            window_ends = time.perf_counter() + policy.max_wait_s
            while len(batch) < policy.max_batch_size:
                if self._items:
                    batch.append(self._pop())
                    continue
                if self._closed:
                    break
                remaining = window_ends - time.perf_counter()
                if remaining <= 0:
                    break
                self._not_empty.wait(remaining)
            return batch

    def requeue(self, items: List[WorkItem]) -> None:
        """Re-admit rescued items at the front of the queue (crash recovery).

        Used by a worker that is dying mid-batch: its un-delivered items
        go back first-in-line so rescued requests do not also pay a full
        re-queue wait.  The depth bound and the closed check are bypassed
        deliberately — every item here was admitted (and counted against
        backpressure) once already, and rescue must succeed during a
        drain, when the queue is closed but still serving admitted work.
        """
        if not items:
            return
        with self._lock:
            for item in reversed(items):
                self._items.appendleft(item)
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._items))
            self._not_empty.notify_all()

    def _pop(self) -> WorkItem:
        """Pop one item and wake one blocked producer (caller holds the lock).

        Notifying on every pop — not once the batch is complete — matters:
        a producer blocked on a full queue must be admitted as soon as space
        frees, not after the consumer's batch window has run its course.
        """
        item = self._items.popleft()
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._items))
        self._not_full.notify()
        return item

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop admission; already-admitted items remain drainable."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()
