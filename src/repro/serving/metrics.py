"""Serving telemetry: latency quantiles, throughput and batch occupancy.

The three quantities that matter when tuning a :class:`BatchingPolicy`
(``docs/serving.md``):

* **request latency** — submit-to-result wall time per request, summarized
  as p50/p99 (the tail is what the max-wait knob trades against);
* **throughput** — completed rows per second over the observation window;
* **batch occupancy** — executed batch size relative to
  ``max_batch_size``; low occupancy under heavy load means the wait window
  is too short (batches close half-empty), occupancy pinned at 1.0 with a
  deep queue means the batch size cap is the bottleneck.

:class:`ServingMetrics` is thread-safe (one lock, updated by workers and by
request completion) and bounded: latency samples live in a fixed-size
rolling window, so a long-running server's telemetry memory never grows.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

__all__ = ["ServingMetrics"]

#: Rolling-window size for latency samples; quantiles describe the most
#: recent window rather than all of history (and memory stays bounded).
LATENCY_WINDOW = 100_000


class ServingMetrics:
    """Thread-safe counters for one server's traffic."""

    def __init__(self, latency_window: int = LATENCY_WINDOW) -> None:
        self._lock = threading.Lock()
        self._latencies_s: Deque[float] = deque(maxlen=latency_window)
        self._n_requests = 0
        self._n_rows = 0
        self._n_batches = 0
        self._batch_rows = 0
        self._batch_capacity = 0
        self._started_at: Optional[float] = None
        self._last_activity: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Recording (called by the server)
    # ------------------------------------------------------------------ #
    def record_batch(self, n_rows: int, capacity: int) -> None:
        """Record one executed batch group of ``n_rows`` rows (cap ``capacity``).

        The recorded unit is one engine call — a ``(model, kind)`` group of
        a micro-batch — which is what batch occupancy is meant to measure:
        how well each engine invocation is amortized.
        """
        now = time.perf_counter()
        with self._lock:
            if self._started_at is None:
                self._started_at = now
            self._last_activity = now
            self._n_batches += 1
            self._batch_rows += n_rows
            self._batch_capacity += capacity
            self._n_rows += n_rows

    def record_request(self, latency_s: float) -> None:
        """Record one completed request's submit-to-result latency."""
        with self._lock:
            self._n_requests += 1
            self._latencies_s.append(latency_s)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def n_requests(self) -> int:
        with self._lock:
            return self._n_requests

    @property
    def n_batches(self) -> int:
        with self._lock:
            return self._n_batches

    def latency_quantile(self, q: float) -> float:
        """Latency quantile in seconds over the rolling window (NaN if empty)."""
        with self._lock:
            samples = list(self._latencies_s)
        if not samples:
            return float("nan")
        return float(np.quantile(np.asarray(samples), q))

    def snapshot(self) -> Dict[str, float]:
        """One consistent reading of every counter, as a flat JSON-ready dict.

        ``throughput_rps`` is completed rows per second between the first
        and the last recorded batch (0.0 until two distinct instants have
        been observed); ``mean_batch_occupancy`` is the mean of
        ``batch_size / max_batch_size`` over all executed batches.
        """
        with self._lock:
            samples = np.asarray(self._latencies_s) if self._latencies_s else None
            elapsed = (
                self._last_activity - self._started_at
                if self._started_at is not None and self._last_activity is not None
                else 0.0
            )
            snap: Dict[str, float] = {
                "requests": float(self._n_requests),
                "rows": float(self._n_rows),
                "batches": float(self._n_batches),
                "throughput_rps": self._n_rows / elapsed if elapsed > 0 else 0.0,
                "mean_batch_size": (
                    self._batch_rows / self._n_batches if self._n_batches else 0.0
                ),
                "mean_batch_occupancy": (
                    self._batch_rows / self._batch_capacity if self._batch_capacity else 0.0
                ),
            }
        if samples is not None:
            p50, p99 = np.quantile(samples, [0.5, 0.99])
            snap["latency_p50_ms"] = float(p50) * 1e3
            snap["latency_p99_ms"] = float(p99) * 1e3
        else:
            snap["latency_p50_ms"] = float("nan")
            snap["latency_p99_ms"] = float("nan")
        return snap
