"""Serving telemetry: latency quantiles, throughput and batch occupancy.

The three quantities that matter when tuning a :class:`BatchingPolicy`
(``docs/serving.md``):

* **request latency** — submit-to-result wall time per request, summarized
  as p50/p99 (the tail is what the max-wait knob trades against);
* **throughput** — completed rows per second over the observation window;
* **batch occupancy** — executed batch size relative to
  ``max_batch_size``; low occupancy under heavy load means the wait window
  is too short (batches close half-empty), occupancy pinned at 1.0 with a
  deep queue means the batch size cap is the bottleneck.

:class:`ServingMetrics` is built on the observability substrate
(:class:`repro.observability.MetricsRegistry`): every counter is a real
registry instrument and latency is a fixed-bucket histogram with a bounded
rolling sample window, so a server's telemetry is thread-safe, memory
bounded, and renderable in both snapshot-dict and Prometheus text form.
Each server owns a **private** registry (two servers in one process never
merge their counts); per-``(model, kind)`` request counters additionally
go to the process-wide :data:`repro.observability.REGISTRY` at the
server's admission path.  Recording respects the process-wide metrics
switch (:func:`repro.observability.metrics_enabled` — on by default).

:meth:`ServingMetrics.snapshot` is JSON-clean by contract: every value
round-trips through ``json.dumps`` — empty-window latency quantiles are
``None``, never NaN (NaN serializes as the invalid-JSON token ``NaN`` and
breaks strict parsers on the other side of a stats endpoint).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..observability import MetricsRegistry, metrics_enabled

__all__ = ["ServingMetrics"]

#: Rolling-window size for latency samples; quantiles describe the most
#: recent window rather than all of history (and memory stays bounded).
LATENCY_WINDOW = 100_000


class ServingMetrics:
    """Thread-safe counters for one server's traffic (private registry)."""

    def __init__(self, latency_window: int = LATENCY_WINDOW) -> None:
        #: This server's private instrument registry.  Gauges the serving
        #: layer maintains (queue depth, batch wait) register here too, so
        #: ``registry.snapshot()`` / ``render_prometheus()`` expose the
        #: whole serving picture in one read.
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter("serving_requests_total")
        self._rows = self.registry.counter("serving_rows_total")
        self._batches = self.registry.counter("serving_batches_total")
        self._batch_rows = self.registry.counter("serving_batch_rows_total")
        self._batch_capacity = self.registry.counter("serving_batch_capacity_total")
        self._latency = self.registry.histogram(
            "serving_request_latency_seconds", window=latency_window
        )
        # Window bounds for the throughput rate; instruments carry their own
        # locks, so these two floats ride on the GIL (single writes only).
        self._started_at: Optional[float] = None
        self._last_activity: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Recording (called by the server)
    # ------------------------------------------------------------------ #
    def record_batch(self, n_rows: int, capacity: int) -> None:
        """Record one executed batch group of ``n_rows`` rows (cap ``capacity``).

        The recorded unit is one engine call — a ``(model, kind)`` group of
        a micro-batch — which is what batch occupancy is meant to measure:
        how well each engine invocation is amortized.
        """
        if not metrics_enabled():
            return
        now = time.perf_counter()
        if self._started_at is None:
            self._started_at = now
        self._last_activity = now
        self._batches.inc()
        self._batch_rows.inc(n_rows)
        self._batch_capacity.inc(capacity)
        self._rows.inc(n_rows)

    def record_request(self, latency_s: float) -> None:
        """Record one completed request's submit-to-result latency."""
        if not metrics_enabled():
            return
        self._requests.inc()
        self._latency.observe(latency_s)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def n_requests(self) -> int:
        return int(self._requests.value)

    @property
    def n_batches(self) -> int:
        return int(self._batches.value)

    def latency_quantile(self, q: float) -> float:
        """Latency quantile in seconds over the rolling window (NaN if empty).

        The NaN-on-empty convention is kept here for numeric callers
        (``float`` arithmetic propagates it harmlessly); the JSON-facing
        :meth:`snapshot` reports ``None`` instead.
        """
        value = self._latency.quantile(q)
        return float("nan") if value is None else float(value)

    def snapshot(self) -> Dict[str, Optional[float]]:
        """One consistent reading of every counter, as a flat JSON-ready dict.

        ``throughput_rps`` is completed rows per second between the first
        and the last recorded batch (0.0 until two distinct instants have
        been observed); ``mean_batch_occupancy`` is the mean of
        ``batch_size / max_batch_size`` over all executed batches.  The
        latency quantiles are ``None`` until a request has completed —
        every value round-trips through ``json.dumps``.
        """
        n_rows = self._rows.value
        n_batches = self._batches.value
        batch_rows = self._batch_rows.value
        batch_capacity = self._batch_capacity.value
        elapsed = (
            self._last_activity - self._started_at
            if self._started_at is not None and self._last_activity is not None
            else 0.0
        )
        p50 = self._latency.quantile(0.5)
        p99 = self._latency.quantile(0.99)
        return {
            "requests": float(self._requests.value),
            "rows": float(n_rows),
            "batches": float(n_batches),
            "throughput_rps": n_rows / elapsed if elapsed > 0 else 0.0,
            "mean_batch_size": batch_rows / n_batches if n_batches else 0.0,
            "mean_batch_occupancy": (
                batch_rows / batch_capacity if batch_capacity else 0.0
            ),
            "latency_p50_ms": p50 * 1e3 if p50 is not None else None,
            "latency_p99_ms": p99 * 1e3 if p99 is not None else None,
        }

    def render_prometheus(self) -> str:
        """This server's instruments in Prometheus text exposition form."""
        return self.registry.render_prometheus()
