"""Resilience policies for the serving tier: typed failures, retries,
retry budgets and circuit breakers.

The serving failure vocabulary is **typed** so a caller can react per
failure mode instead of string-matching messages (the full failure-mode
table lives in ``docs/robustness.md``):

* :class:`DeadlineExceededError` — the request's own deadline expired
  (while waiting for admission, or in the queue before execution).  Not
  retryable: the caller already gave up on the answer.
* :class:`SheddingError` — the admission controller refused the request
  because ``max_in_flight`` requests are already in the system.  Distinct
  from :class:`~repro.serving.queue.QueueFullError` (a *timed-out wait*
  against the bounded queue): shedding is an immediate, cheap rejection
  made *before* any row is encoded or enqueued.  Retryable after backoff.
* :class:`WorkerCrashError` — a request's rows were re-enqueued by
  crashing workers more often than the rescue limit allows.  Retryable.
* :class:`CircuitOpenError` — the client-side circuit breaker for the
  target model is open; the request was never sent.  Retryable (the
  breaker's cooldown decides when a probe goes through).
* :class:`RetryBudgetExceededError` is **not** raised: an exhausted
  budget re-raises the *original* failure — the budget only decides
  whether another attempt is allowed.

:class:`RetryPolicy` is jittered exponential backoff with an explicit
seed (serving is a replay-deterministic hot path: the jitter sequence of
a client is a pure function of its policy seed).  :class:`RetryBudget` is
a token bucket shared by all requests of a client: each fresh request
earns ``ratio`` tokens, each retry spends one, so retries are bounded to
roughly ``ratio`` of traffic and a hard outage cannot trigger a retry
storm.  :class:`CircuitBreaker` is the standard three-state machine
(closed → open after ``failure_threshold`` consecutive failures → half
open after ``reset_timeout_s``, where a single probe decides).  All three
are thread-safe; the clients in :mod:`repro.serving.client` wire them
together (one breaker per model) and record ``serving_retries_total`` /
``serving_breaker_state`` on the server's metrics registry.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

__all__ = [
    "BREAKER_STATES",
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ExecutorFaultError",
    "RETRYABLE_ERRORS",
    "RetryBudget",
    "RetryPolicy",
    "SheddingError",
    "WorkerCrashError",
    "is_retryable",
]


class DeadlineExceededError(TimeoutError):
    """The request's deadline expired before (or instead of) its answer."""


class SheddingError(RuntimeError):
    """Admission refused outright: the server is at max in-flight requests."""


class WorkerCrashError(RuntimeError):
    """The request's rows were rescued from crashing workers too many times."""


class CircuitOpenError(RuntimeError):
    """The client's circuit breaker for this model is open (request not sent)."""


class ExecutorFaultError(RuntimeError):
    """An engine call failed transiently; the request may be retried.

    Deployments raise (a subclass of) this to mark an executor failure
    retryable; the injected equivalent
    (:class:`repro.faults.InjectedExecutorFault`) is recognized by
    :func:`is_retryable` without inheriting from it, so injected chaos
    stays typed as injected.
    """


def _injected_fault_types() -> tuple:
    # Imported lazily: the serving layer must not pay a faults import at
    # module load for a type only used in the retryable check.
    from ..faults.plan import InjectedExecutorFault

    return (InjectedExecutorFault,)


#: Failure types a client may transparently retry: transient by
#: construction (shed/backpressure/crash/transient executor), never the
#: deadline (the caller gave up) and never validation errors.
RETRYABLE_ERRORS: Tuple[type, ...] = (
    SheddingError,
    WorkerCrashError,
    CircuitOpenError,
    ExecutorFaultError,
)


def is_retryable(exc: BaseException) -> bool:
    """Whether a client retry can possibly help with ``exc``."""
    from .queue import QueueFullError

    if isinstance(exc, RETRYABLE_ERRORS) or isinstance(exc, QueueFullError):
        return True
    return isinstance(exc, _injected_fault_types())


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with a bounded attempt count.

    Attempt ``k`` (1-based) sleeps ``min(max_delay_s, base_delay_s *
    multiplier**(k-1))`` scaled by a seeded jitter factor drawn from
    ``[1 - jitter, 1]``.  ``max_attempts`` counts *total* attempts, so
    ``max_attempts=1`` disables retrying while keeping the typed-error
    and breaker behaviour.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.005
    max_delay_s: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> "_DelaySequence":
        """A fresh seeded backoff sequence (one per logical request)."""
        return _DelaySequence(self)


class _DelaySequence:
    """The per-request backoff iterator (seeded, deterministic)."""

    def __init__(self, policy: RetryPolicy) -> None:
        self._policy = policy
        self._rng = random.Random(policy.seed)
        self._attempt = 0

    def next_delay(self) -> float:
        """The sleep before the next retry (0.0 on a zero-delay policy)."""
        self._attempt += 1
        policy = self._policy
        raw = min(
            policy.max_delay_s,
            policy.base_delay_s * policy.multiplier ** (self._attempt - 1),
        )
        scale = 1.0 - policy.jitter * self._rng.random()
        return raw * scale


class RetryBudget:
    """A token bucket bounding retries to a fraction of request traffic.

    Every fresh request deposits ``ratio`` tokens (capped at
    ``max_tokens``); every retry withdraws one.  An empty bucket denies
    the retry — the caller then re-raises the *original* error — so a
    full outage costs at most ``ratio`` extra traffic instead of
    ``max_attempts`` times the load.  ``min_tokens`` is the starting
    balance, letting a cold client retry its very first failures.
    """

    def __init__(
        self, ratio: float = 0.2, min_tokens: float = 10.0, max_tokens: float = 100.0
    ) -> None:
        if ratio < 0:
            raise ValueError(f"ratio must be >= 0, got {ratio}")
        if max_tokens < min_tokens:
            raise ValueError("max_tokens must be >= min_tokens")
        self.ratio = float(ratio)
        self.max_tokens = float(max_tokens)
        self._lock = threading.Lock()
        self._tokens = float(min_tokens)

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def record_request(self) -> None:
        """Deposit for one fresh (non-retry) request."""
        with self._lock:
            self._tokens = min(self.max_tokens, self._tokens + self.ratio)

    def allow_retry(self) -> bool:
        """Withdraw one token; ``False`` (deny) when the bucket is empty."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


#: Breaker state names → the numeric value recorded on the
#: ``serving_breaker_state`` gauge (dashboards alert on > 0).
BREAKER_STATES = {"closed": 0, "half_open": 1, "open": 2}


@dataclass(frozen=True)
class BreakerPolicy:
    """Configuration the clients build one :class:`CircuitBreaker` per model
    from (the breaker itself is stateful; the policy is shareable)."""

    failure_threshold: int = 5
    reset_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout_s < 0:
            raise ValueError(f"reset_timeout_s must be >= 0, got {self.reset_timeout_s}")


class CircuitBreaker:
    """Three-state circuit breaker over one model's request stream.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open** — :meth:`admit` raises :class:`CircuitOpenError` without
      touching the server; after ``reset_timeout_s`` the next admit
      transitions to half-open.
    * **half-open** — exactly one probe request is admitted at a time;
      its success closes the breaker, its failure re-opens it (and the
      cooldown restarts).

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    ``on_state_change(state_name)`` fires outside the breaker lock on
    every transition — the clients use it to keep the
    ``serving_breaker_state`` gauge current.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_state_change: Optional[Callable[[str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ValueError(f"reset_timeout_s must be >= 0, got {reset_timeout_s}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._on_state_change = on_state_change
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, state: str) -> Optional[str]:
        """Set the state (caller holds the lock); returns it when changed."""
        if state == self._state:
            return None
        self._state = state
        return state

    def _notify(self, changed: Optional[str]) -> None:
        if changed is not None and self._on_state_change is not None:
            self._on_state_change(changed)

    def admit(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when open."""
        changed = None
        with self._lock:
            if self._state == "open":
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    raise CircuitOpenError(
                        f"circuit open ({self._consecutive_failures} consecutive "
                        f"failures); retry after {self.reset_timeout_s}s cooldown"
                    )
                changed = self._transition("half_open")
                self._probe_in_flight = False
            if self._state == "half_open":
                if self._probe_in_flight:
                    raise CircuitOpenError(
                        "circuit half-open: a probe request is already in flight"
                    )
                self._probe_in_flight = True
        self._notify(changed)

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            changed = self._transition("closed")
        self._notify(changed)

    def record_failure(self) -> None:
        changed = None
        with self._lock:
            self._consecutive_failures += 1
            if self._state == "half_open":
                changed = self._transition("open")
                self._opened_at = self._clock()
            elif (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                changed = self._transition("open")
                self._opened_at = self._clock()
            self._probe_in_flight = False
        self._notify(changed)
